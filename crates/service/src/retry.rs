//! The shared retry policy: capped exponential backoff with deterministic
//! jitter, plus the transient-vs-fatal classification every client-side
//! loop in the service agrees on.
//!
//! A campaign fleet has three loops that talk to the server — the worker's
//! lease poll, the worker's record streaming, and `tats submit --wait`'s
//! record paging — and all three must ride out the same events: a server
//! restart (connection refused while the process is down, HTTP 503 while
//! the journal replays), a dropped keep-alive connection, a transient
//! socket reset. They must equally all *stop* on the same events: a
//! campaign-fingerprint mismatch, a scenario-evaluation failure, a 4xx the
//! server will answer identically forever. [`is_transient`] draws that
//! line once; [`RetryPolicy::run`] applies it with capped exponential
//! backoff so a restarting server sees a trickle of probes, not a stampede.
//!
//! Jitter is deterministic (a splitmix64 hash of the policy seed and the
//! attempt number) for the same reason every clock in this workspace is
//! scripted: retry schedules reproduce exactly in tests.

use std::time::Duration;

use crate::error::ServiceError;

/// Classifies an error as transient (worth retrying: the operation may
/// succeed verbatim against a healthy server) or fatal (retrying cannot
/// help; the request itself, or this build of the code, is wrong).
///
/// Transient: any socket-level I/O failure (refused, reset, timed out —
/// the server is restarting or the keep-alive connection died), an HTTP
/// 502/503/504 (the server is up but not ready, e.g. mid journal replay),
/// an HTTP 429 / [`ServiceError::RateLimited`] (the client is over its
/// pending-shard quota, which frees up as its shards drain), and the
/// client-side [`ServiceError::Unavailable`].
///
/// Fatal: everything else — other 4xx statuses (including the 409
/// lease-lost signal, which callers handle specially), protocol violations
/// such as a campaign-fingerprint mismatch, engine failures, and the
/// injected-crash [`ServiceError::Aborted`] hook, which must look like a
/// real crash.
pub fn is_transient(error: &ServiceError) -> bool {
    match error {
        ServiceError::Io(_) | ServiceError::Unavailable(_) | ServiceError::RateLimited { .. } => {
            true
        }
        ServiceError::Http { status, .. } => matches!(status, 429 | 502..=504),
        _ => false,
    }
}

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Delay before the first retry, ms; doubles per retry.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, ms.
    pub max_delay_ms: u64,
    /// Seed of the deterministic jitter (vary per worker so a fleet killed
    /// by the same restart does not retry in lockstep).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 10 attempts, 50 ms base, 2 s cap: a worker rides out ~10 s of
    /// server downtime (a restart plus journal replay) before giving up.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 50,
            max_delay_ms: 2_000,
            jitter_seed: 0x7A75,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, fail fast). Used by tests
    /// and anywhere the caller owns its own recovery.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Returns this policy reseeded for a named holder (e.g. the worker
    /// name), so fleet members desynchronise their retry schedules.
    pub fn seeded_for(mut self, name: &str) -> Self {
        self.jitter_seed = name.bytes().fold(self.jitter_seed, |seed, byte| {
            splitmix64(seed ^ u64::from(byte))
        });
        self
    }

    /// The delay before retry number `attempt` (0-based: the delay after
    /// the first failure is `delay_ms(0)`): `base * 2^attempt` capped at
    /// `max_delay_ms`, minus a deterministic jitter of up to 25% so
    /// concurrent clients spread out.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exponential = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms.max(1));
        let span = exponential / 4;
        if span == 0 {
            return exponential;
        }
        exponential - splitmix64(self.jitter_seed ^ u64::from(attempt)) % (span + 1)
    }

    /// Runs `op`, retrying transient failures (per [`is_transient`]) with
    /// this policy's backoff until one attempt succeeds, a fatal error
    /// occurs, or `max_attempts` attempts have failed.
    ///
    /// # Errors
    ///
    /// Returns the first fatal error, or the last transient error once the
    /// attempt budget is exhausted.
    pub fn run<T>(&self, op: impl FnMut() -> Result<T, ServiceError>) -> Result<T, ServiceError> {
        self.run_observed(|_, _| {}, op)
    }

    /// Like [`RetryPolicy::run`], but calls `observe` with every failed
    /// attempt's error and its [`is_transient`] classification before the
    /// retry/fail decision is made — the hook worker metrics use to count
    /// transient vs fatal failures without owning the loop.
    ///
    /// # Errors
    ///
    /// As [`RetryPolicy::run`].
    pub fn run_observed<T>(
        &self,
        mut observe: impl FnMut(&ServiceError, bool),
        mut op: impl FnMut() -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(error) => {
                    let transient = is_transient(&error);
                    observe(&error, transient);
                    if transient && attempt + 1 < attempts {
                        std::thread::sleep(Duration::from_millis(self.delay_ms(attempt)));
                        attempt += 1;
                    } else {
                        return Err(error);
                    }
                }
            }
        }
    }
}

/// The splitmix64 mixing function: a cheap, high-quality 64-bit hash used
/// for jitter (not for anything cryptographic).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    #[test]
    fn classification_separates_transport_from_logic() {
        assert!(is_transient(&ServiceError::Io(io::Error::other("reset"))));
        assert!(is_transient(&ServiceError::Unavailable("replaying".into())));
        for status in [429u16, 502, 503, 504] {
            assert!(is_transient(&ServiceError::Http {
                status,
                message: String::new()
            }));
        }
        assert!(is_transient(&ServiceError::RateLimited {
            message: "over quota".into(),
            retry_after_s: 1
        }));
        for status in [400u16, 404, 409, 500] {
            assert!(!is_transient(&ServiceError::Http {
                status,
                message: String::new()
            }));
        }
        assert!(!is_transient(&ServiceError::Protocol(
            "fingerprint mismatch".into()
        )));
        assert!(!is_transient(&ServiceError::Aborted("injected".into())));
        assert!(!is_transient(&ServiceError::BadRequest("spec".into())));
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 100,
            max_delay_ms: 1_000,
            jitter_seed: 7,
        };
        for attempt in 0..8 {
            let delay = policy.delay_ms(attempt);
            let nominal = (100u64 << attempt).min(1_000);
            assert!(delay <= nominal, "attempt {attempt}: {delay} > {nominal}");
            assert!(
                delay >= nominal - nominal / 4,
                "attempt {attempt}: {delay} under-runs the 25% jitter window of {nominal}"
            );
        }
        // Deterministic: the same policy produces the same schedule.
        assert_eq!(policy.delay_ms(3), policy.delay_ms(3));
        // Different seeds (different workers) produce different schedules.
        let other = RetryPolicy {
            jitter_seed: 8,
            ..policy
        };
        assert!((0..8).any(|a| policy.delay_ms(a) != other.delay_ms(a)));
        assert_ne!(
            policy.seeded_for("w1").jitter_seed,
            policy.seeded_for("w2").jitter_seed
        );
    }

    #[test]
    fn run_retries_transient_until_success() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 1,
            max_delay_ms: 2,
            jitter_seed: 0,
        };
        let mut calls = 0;
        let result: Result<u32, _> = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(ServiceError::Io(io::Error::other("refused")))
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_stops_on_fatal_and_on_exhaustion() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 2,
            jitter_seed: 0,
        };
        // Fatal: exactly one attempt.
        let mut calls = 0;
        let result: Result<(), _> = policy.run(|| {
            calls += 1;
            Err(ServiceError::BadRequest("no".into()))
        });
        assert!(matches!(result, Err(ServiceError::BadRequest(_))));
        assert_eq!(calls, 1);
        // Transient forever: the budget bounds the attempts.
        let mut calls = 0;
        let result: Result<(), _> = policy.run(|| {
            calls += 1;
            Err(ServiceError::Io(io::Error::other("refused")))
        });
        assert!(matches!(result, Err(ServiceError::Io(_))));
        assert_eq!(calls, 3);
        // max_attempts 0 still makes one attempt.
        let mut calls = 0;
        let _: Result<(), _> = RetryPolicy {
            max_attempts: 0,
            ..policy
        }
        .run(|| {
            calls += 1;
            Err(ServiceError::Io(io::Error::other("refused")))
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn run_observed_reports_each_failure_with_its_class() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 2,
            jitter_seed: 0,
        };
        let mut transient = 0u32;
        let mut fatal = 0u32;
        let mut calls = 0;
        let result: Result<u32, _> = policy.run_observed(
            |_, is_transient| {
                if is_transient {
                    transient += 1;
                } else {
                    fatal += 1;
                }
            },
            || {
                calls += 1;
                match calls {
                    1 => Err(ServiceError::Io(io::Error::other("refused"))),
                    _ => Err(ServiceError::BadRequest("no".into())),
                }
            },
        );
        // One transient failure observed and retried, then a fatal one
        // observed and propagated.
        assert!(matches!(result, Err(ServiceError::BadRequest(_))));
        assert_eq!((transient, fatal), (1, 1));
        assert_eq!(calls, 2);
    }
}
