//! The HTTP front of the campaign service: a `std::net::TcpListener`
//! accept loop that routes requests into the journaled [`Registry`].
//!
//! Connections are persistent HTTP/1.1 keep-alive by default — a worker
//! streams every record of a shard over one TCP stream instead of paying a
//! handshake per record (which measured at roughly a quarter of the whole
//! distribution overhead). Each connection is handled on its own thread
//! with a bounded request budget and an idle timeout, so a slow or
//! abandoned client never blocks the accept loop and the registry mutex is
//! the only synchronisation point. The server is clocked by a monotonic
//! `Instant` taken at bind time; all lease deadlines live in that clock.
//!
//! With [`ServiceConfig::journal`] set, every state transition is appended
//! to a JSONL journal ([`crate::journal`]) and a restart on the same file
//! replays it — synchronously, inside [`Service::bind`], so a corrupt
//! journal fails the boot instead of serving garbage. Until the replayed
//! server declares itself ready, every endpoint except the probes answers
//! `503` (transient — clients retry with [`crate::retry`]).
//!
//! # Endpoints
//!
//! | method & path | body | purpose |
//! |---|---|---|
//! | `GET /healthz` | — | liveness probe (200 as soon as the socket is bound) |
//! | `GET /readyz` | — | readiness probe (503 until journal replay is served) |
//! | `GET /metrics` | — | Prometheus text exposition (served even before ready) |
//! | `POST /jobs` | `{"spec": <campaign spec>, "shards": n, "client"?: name, "priority"?: p}` | submit a campaign, get a job id (429 + `retry-after` over the per-client quota) |
//! | `GET /jobs` | — | status of every job |
//! | `GET /jobs/{id}` | — | one job's status |
//! | `GET /jobs/{id}/records?from=k` | — | JSONL records from index `k` (header `x-next-from`) |
//! | `GET /jobs/{id}/spans?from=k` | — | JSONL span events from index `k` (header `x-next-from`) |
//! | `GET /jobs/{id}/progress` | — | done/total, records/sec, ETA, per-phase p50/p99 |
//! | `GET /jobs/{id}/summary` | — | aggregated campaign summary |
//! | `GET /workers` | — | per-worker statistics (status, last-seen age, lifetime records/sec) |
//! | `GET /logs?from=k` | — | JSONL structured log lines from ring index `k` (header `x-next-from`, served even before ready) |
//! | `GET /dashboard` | — | self-contained auto-refreshing HTML fleet dashboard (served even before ready) |
//! | `POST /lease` | `{"worker": name, "metrics"?: snapshot}` | lease the next available shard |
//! | `POST /jobs/{id}/shards/{i}/records` | JSONL lines (`x-worker` header) | stream shard records |
//! | `POST /jobs/{id}/shards/{i}/done` | — (`x-worker` header) | mark a shard complete |
//! | `POST /compact` | — | fold the journal into one snapshot event now (400 without a journal) |
//!
//! # Observability
//!
//! The server keeps a [`MetricsRegistry`] ([`tats_trace::metrics`]): one
//! latency histogram and per-status-class request counters per endpoint,
//! connection/accept-backoff counters, lease request/grant counters, the
//! journal append+flush latency, and gauges describing what boot-time
//! replay reconstructed. Workers piggyback a snapshot of their own
//! registry (lease-wait time, retry counts, engine phase spans, thermal
//! cache hits) on every `POST /lease`; `GET /metrics` merges the latest
//! snapshot per worker — labelled `worker="name"` — into one Prometheus
//! text page. `/metrics` bypasses the ready gate, so a replaying server
//! can be scraped. With [`ServiceConfig::access_log`] set, every request
//! is also appended to a JSONL access log (crash-repaired on reopen, like
//! the journal); each access-log line carries the request's `x-trace-id`
//! (empty string when the client sent none).
//!
//! # Distributed tracing
//!
//! With [`ServiceConfig::trace_log`] set, the server owns the merged span
//! stream of every traced campaign ([`tats_trace::spans`]): registry
//! transition spans (submit/lease/ingest/done), worker span batches
//! piggybacked on record posts, one synthesized root `campaign` span when
//! the last shard completes, and a request span for every request carrying
//! `x-trace-id`. Job-owned spans are deterministic — derived ids plus a
//! synthetic clock anchored at the submit instant make them pure functions
//! of journaled events, so a restart replays the identical stream (served
//! by `GET /jobs/{id}/spans`, analysed by `tats trace`).
//!
//! # Structured logging
//!
//! The server keeps the last [`LOG_RING_CAPACITY`] structured log lines
//! ([`tats_trace::log`]) in a bounded ring with monotonic indices, paged
//! by `GET /logs?from=k` exactly like `/records` and `/spans`. The ring
//! collects registry transition lines (target `registry`: submit, ingest,
//! shard/job done — stamped with the *journaled* clock, `now_ms × 1000`,
//! so a restart regenerates them byte-identically from the journal),
//! live-only lease-grant lines (target `lease`), and the server's own
//! lifecycle events (target `server`: listening, journal replayed,
//! unparsable requests — wall-clock stamped, not replayed). With
//! [`ServiceConfig::log_file`] set, every *live-emitted* line is also
//! appended to a crash-repaired JSONL file; replay-regenerated lines are
//! restored to the ring only, never re-appended to the file (the previous
//! incarnation already wrote them). [`ServiceConfig::log_filter`] (or the
//! `TATS_LOG` environment variable) picks levels per target; filtering
//! happens before a line is built, so disabled call sites cost one branch.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tats_engine::CampaignSpec;
use tats_trace::log::{log_channel, LogDrain, LogEvent, LogFilter, LogLevel, LogRing, LogSink};
use tats_trace::metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use tats_trace::spans::{self, SpanDrain, SpanEvent, SpanIdGen, SpanKind, SpanSink};
use tats_trace::{jsonl, JsonValue};

use crate::error::ServiceError;
use crate::http::{read_request, write_response, Request};
use crate::journal::{JournaledRegistry, ReplayReport};
use crate::registry::Submission;

/// Tunables of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shard-lease TTL, ms: how long a silent worker keeps a shard before it
    /// is re-leased. Every record batch a worker streams renews its lease,
    /// so the TTL only has to outlast the gap *between* records of the
    /// heaviest scenario, not the whole shard.
    pub lease_ttl_ms: u64,
    /// Journal file for crash-safe state. `None` (the default) keeps all
    /// state in memory; with a path, every transition is appended there and
    /// binding on the same path replays it (repairing a partial trailing
    /// line first).
    pub journal: Option<PathBuf>,
    /// Requests served per keep-alive connection before the server answers
    /// `connection: close` and recycles it (bounds per-connection memory
    /// and thread lifetime). `0` disables keep-alive entirely — every
    /// request gets `connection: close`, the pre-journal behaviour.
    pub keep_alive_max_requests: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it, ms.
    pub keep_alive_idle_timeout_ms: u64,
    /// Delay between binding the socket and declaring the server ready, ms.
    /// In production this stays `0` (replay happens synchronously inside
    /// [`Service::bind`], so the server is ready the moment it accepts);
    /// tests raise it to observe the `503`-until-ready window.
    pub ready_holdoff_ms: u64,
    /// JSONL access log: with a path, every served request appends one
    /// `{ts_ms, method, path, status, duration_us, bytes_in, bytes_out,
    /// keep_alive}` line there. The file is opened with the same
    /// partial-tail repair as the journal, so a crash mid-append never
    /// corrupts it. `None` (the default) logs nothing.
    pub access_log: Option<PathBuf>,
    /// JSONL span log (`tats serve --trace-log`): with a path, every span
    /// the server owns — registry transition spans, worker span batches
    /// accepted by ingest, and one request span per request that carries an
    /// `x-trace-id` header — is appended there (crash-repaired on reopen,
    /// like the journal). `tats trace <file>` analyses it. `None` (the
    /// default) keeps spans only in the per-job streams served by
    /// `GET /jobs/{id}/spans`.
    pub trace_log: Option<PathBuf>,
    /// JSONL structured-log file (`tats serve --log-file`): with a path,
    /// every live-emitted log line is appended there (crash-repaired on
    /// reopen, like the journal). Replay-regenerated registry lines are
    /// restored to the in-memory ring behind `GET /logs` but never
    /// re-appended to the file — the previous incarnation already wrote
    /// them. `None` (the default) keeps logs only in the ring.
    pub log_file: Option<PathBuf>,
    /// Level/target filter for structured logs. `None` (the default)
    /// reads the `TATS_LOG` environment variable, falling back to `info`;
    /// tests and benchmarks pass an explicit filter ([`LogFilter::off`]
    /// silences everything).
    pub log_filter: Option<LogFilter>,
    /// Auto-compaction threshold (`tats serve --compact-every-events n`):
    /// with `Some(n)`, the journal is rewritten as one snapshot event
    /// whenever it holds `n` or more events — replayed events count, so a
    /// long journal compacts right after boot. `None` (the default)
    /// compacts only on demand via `POST /compact`.
    pub compact_every_events: Option<u64>,
    /// Per-client pending-shard quota (`tats serve --client-quota n`): a
    /// `POST /jobs` from a client that already has `n` or more shards
    /// pending (not yet done, leased included) is refused with `429` and a
    /// `retry-after` hint. Quota refusals happen *before* the submit is
    /// journaled, so replay never re-litigates them. `0` (the default)
    /// disables the quota.
    pub client_quota: usize,
    /// Concurrent-connection cap (`tats serve --max-connections n`): the
    /// accept loop sheds connections beyond this with an immediate `503`
    /// (counted by `http_connections_rejected_total`) instead of spawning
    /// an unbounded handler thread per socket. `0` disables the cap.
    pub max_connections: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            lease_ttl_ms: 15_000,
            journal: None,
            keep_alive_max_requests: 1_000,
            keep_alive_idle_timeout_ms: 10_000,
            ready_holdoff_ms: 0,
            access_log: None,
            trace_log: None,
            log_file: None,
            log_filter: None,
            compact_every_events: None,
            client_quota: 0,
            max_connections: 256,
        }
    }
}

/// Every endpoint label `GET /metrics` reports. Pre-registered at bind so
/// the hot path is a `HashMap` lookup plus relaxed atomics — no lock, no
/// allocation.
const ENDPOINTS: [&str; 18] = [
    "GET /healthz",
    "GET /readyz",
    "GET /metrics",
    "GET /logs",
    "GET /dashboard",
    "POST /jobs",
    "GET /jobs",
    "GET /jobs/{id}",
    "GET /jobs/{id}/records",
    "GET /jobs/{id}/spans",
    "GET /jobs/{id}/progress",
    "GET /jobs/{id}/summary",
    "GET /workers",
    "POST /lease",
    "POST /jobs/{id}/shards/{i}/records",
    "POST /jobs/{id}/shards/{i}/done",
    "POST /compact",
    "other",
];

/// Status classes `http_requests_total` is partitioned into.
const STATUS_CLASSES: [&str; 4] = ["2xx", "4xx", "5xx", "other"];

fn status_class_index(status: u16) -> usize {
    match status / 100 {
        2 => 0,
        4 => 1,
        5 => 2,
        _ => 3,
    }
}

/// The template label a request routes to (path parameters collapsed, so
/// the label set stays bounded no matter what clients send).
fn endpoint_label(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", ["healthz"]) => "GET /healthz",
        ("GET", ["readyz"]) => "GET /readyz",
        ("GET", ["metrics"]) => "GET /metrics",
        ("GET", ["logs"]) => "GET /logs",
        ("GET", ["dashboard"]) => "GET /dashboard",
        ("POST", ["jobs"]) => "POST /jobs",
        ("GET", ["jobs"]) => "GET /jobs",
        ("GET", ["jobs", _]) => "GET /jobs/{id}",
        ("GET", ["jobs", _, "records"]) => "GET /jobs/{id}/records",
        ("GET", ["jobs", _, "spans"]) => "GET /jobs/{id}/spans",
        ("GET", ["jobs", _, "progress"]) => "GET /jobs/{id}/progress",
        ("GET", ["jobs", _, "summary"]) => "GET /jobs/{id}/summary",
        ("GET", ["workers"]) => "GET /workers",
        ("POST", ["lease"]) => "POST /lease",
        ("POST", ["jobs", _, "shards", _, "records"]) => "POST /jobs/{id}/shards/{i}/records",
        ("POST", ["jobs", _, "shards", _, "done"]) => "POST /jobs/{id}/shards/{i}/done",
        ("POST", ["compact"]) => "POST /compact",
        _ => "other",
    }
}

/// Per-endpoint handles into the server's [`MetricsRegistry`].
struct EndpointMetrics {
    latency: Arc<Histogram>,
    classes: [Arc<Counter>; 4],
}

/// The server side of the metrics registry: request latency and status
/// counts per endpoint, connection and accept-loop health, lease traffic.
struct ServerMetrics {
    registry: MetricsRegistry,
    endpoints: HashMap<&'static str, EndpointMetrics>,
    connections: Arc<Counter>,
    connections_rejected: Arc<Counter>,
    accept_backoff: Arc<Counter>,
    lease_requests: Arc<Counter>,
    leases_granted: Arc<Counter>,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        let mut endpoints = HashMap::new();
        for endpoint in ENDPOINTS {
            endpoints.insert(
                endpoint,
                EndpointMetrics {
                    latency: registry.histogram("http_request_seconds", &[("endpoint", endpoint)]),
                    classes: STATUS_CLASSES.map(|class| {
                        registry.counter(
                            "http_requests_total",
                            &[("class", class), ("endpoint", endpoint)],
                        )
                    }),
                },
            );
        }
        ServerMetrics {
            connections: registry.counter("http_connections_total", &[]),
            connections_rejected: registry.counter("http_connections_rejected_total", &[]),
            accept_backoff: registry.counter("http_accept_backoff_total", &[]),
            lease_requests: registry.counter("lease_requests_total", &[]),
            leases_granted: registry.counter("leases_granted_total", &[]),
            endpoints,
            registry,
        }
    }

    /// Records one served request under its endpoint template.
    fn request(&self, endpoint: &'static str, status: u16, elapsed: Duration) {
        if let Some(metrics) = self.endpoints.get(endpoint) {
            metrics.latency.record_duration(elapsed);
            metrics.classes[status_class_index(status)].inc();
        }
    }
}

/// The server's span-log plumbing ([`ServiceConfig::trace_log`]): one
/// lock-free sink every connection handler records through, the drain
/// that batches buffered lines into the crash-repaired file, and the id
/// generator for per-request spans.
struct TraceLog {
    sink: SpanSink,
    drain: Mutex<SpanDrain>,
    ids: Mutex<SpanIdGen>,
}

/// Lines retained by the `GET /logs` ring. Indices are monotonic, so a
/// pager that falls more than this far behind loses lines (served from
/// the oldest retained index) but never stalls.
pub const LOG_RING_CAPACITY: usize = 1_024;

/// The server's structured-log plumbing: a lock-free sink the handlers
/// and the registry feed, the drain that collects emitted lines, the
/// bounded ring behind `GET /logs`, and the optional `--log-file`.
struct ServerLogs {
    sink: LogSink,
    drain: Mutex<LogDrain>,
    ring: Mutex<LogRing>,
    file: Option<Mutex<std::fs::File>>,
}

impl ServerLogs {
    fn new(filter: LogFilter, file: Option<std::fs::File>) -> ServerLogs {
        let (sink, drain) = log_channel(filter);
        ServerLogs {
            sink,
            drain: Mutex::new(drain),
            ring: Mutex::new(LogRing::new(LOG_RING_CAPACITY)),
            file: file.map(Mutex::new),
        }
    }

    /// Moves every line emitted since the last call into the ring and, when
    /// configured, the `--log-file` (one batched write + flush). Logging is
    /// best-effort: I/O errors and poisoned locks drop lines, never requests.
    fn flush(&self) {
        let lines = match self.drain.lock() {
            Ok(mut drain) => drain.drain_lines(),
            Err(_) => return,
        };
        if lines.is_empty() {
            return;
        }
        if let Some(file) = &self.file {
            if let Ok(mut file) = file.lock() {
                use std::io::Write as _;
                let mut batch = String::new();
                for line in &lines {
                    batch.push_str(line);
                    batch.push('\n');
                }
                let _ = file.write_all(batch.as_bytes());
                let _ = file.flush();
            }
        }
        if let Ok(mut ring) = self.ring.lock() {
            ring.extend(lines);
        }
    }

    /// Restores replay-regenerated lines to the ring without touching the
    /// `--log-file` — the previous incarnation already wrote them there.
    fn restore(&self, lines: Vec<String>) {
        if let Ok(mut ring) = self.ring.lock() {
            ring.extend(lines);
        }
    }
}

/// State shared between the accept loop, the connection handlers and the
/// [`ServiceHandle`].
struct Shared {
    state: Mutex<JournaledRegistry>,
    replay: ReplayReport,
    leases_reset: usize,
    /// [`ServiceConfig::client_quota`], needed at `POST /jobs` dispatch.
    client_quota: usize,
    /// [`ServiceConfig::lease_ttl_ms`] — the `retry-after` hint on a quota
    /// refusal (one TTL bounds how long a stuck shard stays pending).
    lease_ttl_ms: u64,
    /// Live connection-handler threads, bounded by
    /// [`ServiceConfig::max_connections`].
    active_connections: std::sync::atomic::AtomicUsize,
    metrics: ServerMetrics,
    /// Latest metrics snapshot each worker piggybacked on `POST /lease`.
    /// Latest-wins (worker registries are cumulative), merged fresh at
    /// every `/metrics` scrape — accumulating them here would double-count.
    worker_metrics: Mutex<BTreeMap<String, MetricsSnapshot>>,
    /// JSONL access log ([`ServiceConfig::access_log`]).
    access_log: Option<Mutex<jsonl::JsonlWriter<std::fs::File>>>,
    /// JSONL span log ([`ServiceConfig::trace_log`]).
    trace: Option<TraceLog>,
    /// Structured-log ring, sink and optional `--log-file`.
    logs: ServerLogs,
    /// `(now_ms, total records)` samples taken on each `GET /dashboard`
    /// render — the fleet-throughput sparkline's data.
    throughput: Mutex<Vec<(u64, u64)>>,
    /// Readiness gate: until set, every endpoint except the probes is 503.
    ready: AtomicBool,
    /// Graceful-shutdown flag: the accept loop exits, in-flight responses
    /// carry `connection: close`.
    stop: AtomicBool,
    /// Crash-simulation flag ([`ServiceHandle::abort`]): handlers drop
    /// their connection without answering, like a killed process would.
    dead: AtomicBool,
}

/// A running campaign service.
///
/// Dropping the handle stops the server (see [`ServiceHandle::stop`]).
#[derive(Debug)]
pub struct ServiceHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("ready", &self.ready.load(Ordering::SeqCst))
            .field("stop", &self.stop.load(Ordering::SeqCst))
            .field("dead", &self.dead.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl ServiceHandle {
    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `host:port` string clients pass to [`crate::client`] and
    /// `tats worker --connect`.
    pub fn addr_string(&self) -> String {
        self.addr.to_string()
    }

    /// What the boot-time journal replay reconstructed.
    pub fn replay_report(&self) -> ReplayReport {
        self.shared.replay
    }

    /// Stops the accept loop gracefully and joins the server thread.
    /// In-flight connection handlers finish on their own threads; their
    /// final responses carry `connection: close`.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Simulates `kill -9` from inside the process: seals the journal (no
    /// further byte is written), refuses every further state transition and
    /// drops connections without answering, then unbinds the port. A server
    /// restarted on the same journal path sees exactly the file a really
    /// killed process would have left. In-flight clients observe an I/O
    /// error or an unanswered request — never a clean HTTP error — which is
    /// what their retry policies must ride out.
    pub fn abort(mut self) {
        // `dead` first, then seal under the state lock: a handler
        // mid-mutation finishes its apply+journal atomically; every
        // handler that finds the registry sealed also finds `dead` set and
        // drops its connection unanswered. No byte hits the journal once
        // this returns.
        self.shared.dead.store(true, Ordering::SeqCst);
        if let Ok(mut state) = self.shared.state.lock() {
            state.seal();
        }
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The campaign service entry point.
#[derive(Debug)]
pub struct Service;

impl Service {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving on a background thread. With [`ServiceConfig::journal`] set,
    /// replays the journal synchronously first — jobs, records and shard
    /// states are reconstructed before the socket accepts, and leases from
    /// the previous incarnation are reset to pending (their deadlines lived
    /// in the dead process's clock).
    ///
    /// # Errors
    ///
    /// Propagates bind failures, journal I/O failures, and
    /// [`ServiceError::Protocol`] for a journal that does not replay — a
    /// corrupt journal fails the boot instead of serving wrong state.
    pub fn bind(addr: &str, config: ServiceConfig) -> Result<ServiceHandle, ServiceError> {
        let log_filter = config
            .log_filter
            .clone()
            .unwrap_or_else(LogFilter::from_env);
        // The filter is installed before replay so the registry regenerates
        // the log lines of every journaled transition — they are pure
        // functions of journaled inputs (see `registry::build_log`), which
        // is what keeps `GET /logs` byte-stable across a kill -9/restart.
        let (mut state, replay) = match &config.journal {
            Some(path) => JournaledRegistry::open_with_filter(
                path,
                config.lease_ttl_ms,
                Arc::new(log_filter.clone()),
            )?,
            None => {
                let mut state = JournaledRegistry::new(config.lease_ttl_ms);
                state.set_log_filter(Arc::new(log_filter.clone()));
                (state, ReplayReport::default())
            }
        };
        let leases_reset = state.reset_leases()?;
        // Auto-compaction arms *after* replay and lease reset: with the
        // threshold already crossed by a long-lived journal, the first
        // journaled mutation folds it into one snapshot.
        state.set_compact_every(config.compact_every_events);
        // Replay-regenerated log lines restore `GET /logs` continuity, but
        // only through the ring: the previous incarnation already appended
        // them to any `--log-file`.
        let replayed_log_lines = state.take_log_lines();
        let metrics = ServerMetrics::new();
        // What boot-time replay reconstructed, as gauges: the post-restart
        // scrape target of the crash-recovery smoke test.
        let registry = &metrics.registry;
        registry
            .gauge("journal_replayed_events", &[])
            .set(replay.events as u64);
        registry
            .gauge("journal_replayed_jobs", &[])
            .set(replay.jobs as u64);
        registry
            .gauge("journal_replayed_records", &[])
            .set(replay.records as u64);
        registry
            .gauge("journal_repaired_bytes", &[])
            .set(replay.repaired_bytes);
        registry
            .gauge("journal_replayed_snapshots", &[])
            .set(replay.snapshots as u64);
        registry
            .gauge("journal_leases_reset", &[])
            .set(leases_reset as u64);
        state.set_append_latency(registry.histogram("journal_append_seconds", &[]));
        let access_log = match &config.access_log {
            Some(path) => {
                let (writer, _) = jsonl::append_repaired(path)?;
                Some(Mutex::new(writer))
            }
            None => None,
        };
        let trace = match &config.trace_log {
            Some(path) => {
                let (sink, drain, _) = spans::span_log(path)?;
                Some(TraceLog {
                    sink,
                    drain: Mutex::new(drain),
                    ids: Mutex::new(SpanIdGen::seeded(spans::now_us())),
                })
            }
            None => None,
        };
        // Journal replay regenerated the transition spans of every replayed
        // job (they are pure functions of journaled events); the previous
        // incarnation already wrote them to its trace log, so the replayed
        // batch is discarded here instead of appended twice. Without a
        // trace log the feed stays off entirely — no per-span copies.
        let _ = state.take_trace_lines();
        state.set_trace_buffered(trace.is_some());
        let log_output = match &config.log_file {
            Some(path) => {
                let (writer, _) = jsonl::append_repaired(path)?;
                Some(writer.into_inner())
            }
            None => None,
        };
        let logs = ServerLogs::new(log_filter, log_output);
        logs.restore(replayed_log_lines);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        logs.sink.log(
            &LogEvent::new(LogLevel::Info, "server", "listening").attr("addr", addr.to_string()),
        );
        if replay.events > 0 || leases_reset > 0 {
            logs.sink.log(
                &LogEvent::new(LogLevel::Info, "server", "journal replayed")
                    .attr("events", replay.events.to_string())
                    .attr("jobs", replay.jobs.to_string())
                    .attr("records", replay.records.to_string())
                    .attr("leases_reset", leases_reset.to_string()),
            );
        }
        logs.flush();
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            replay,
            leases_reset,
            client_quota: config.client_quota,
            lease_ttl_ms: config.lease_ttl_ms,
            active_connections: std::sync::atomic::AtomicUsize::new(0),
            metrics,
            worker_metrics: Mutex::new(BTreeMap::new()),
            access_log,
            trace,
            logs,
            throughput: Mutex::new(Vec::new()),
            ready: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        });
        if config.ready_holdoff_ms == 0 {
            shared.ready.store(true, Ordering::SeqCst);
        } else {
            // Test hook: keep the 503-until-ready window open long enough
            // to observe. The warmup thread outlives nothing — it only
            // flips an atomic.
            let warmup = Arc::clone(&shared);
            let holdoff = config.ready_holdoff_ms;
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(holdoff));
                warmup.ready.store(true, Ordering::SeqCst);
            });
        }
        let accept_shared = Arc::clone(&shared);
        let thread = std::thread::spawn(move || {
            let epoch = Instant::now();
            // Escalating backoff for persistent accept errors (EMFILE while
            // the thread-per-connection pool is saturated): never busy-spin
            // a core, but recover quickly from a blip.
            let mut backoff_ms = 0u64;
            loop {
                let Ok((stream, _)) = listener.accept() else {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    accept_shared.metrics.accept_backoff.inc();
                    backoff_ms = (backoff_ms.max(10) * 2).min(1_000);
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                    continue;
                };
                backoff_ms = 0;
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                // The connection gate: beyond the cap, shed with an
                // immediate 503 instead of spawning yet another handler
                // thread — an unbounded accept loop turns a connection
                // flood into thread exhaustion for the whole process.
                let limit = config.max_connections;
                if limit > 0
                    && accept_shared
                        .active_connections
                        .fetch_add(1, Ordering::SeqCst)
                        >= limit
                {
                    accept_shared
                        .active_connections
                        .fetch_sub(1, Ordering::SeqCst);
                    accept_shared.metrics.connections_rejected.inc();
                    // Shed on a throwaway thread: a client that never reads
                    // must not block the accept loop on the 503 write.
                    std::thread::spawn(move || shed_connection(stream));
                    continue;
                }
                let shared = Arc::clone(&accept_shared);
                let config = config.clone();
                std::thread::spawn(move || {
                    // Returned on every path, panics included: a leaked
                    // permit would permanently shrink the cap.
                    let _permit = (limit > 0).then(|| ConnectionPermit {
                        shared: Arc::clone(&shared),
                    });
                    handle_connection(stream, &shared, &config, epoch);
                });
            }
        });
        Ok(ServiceHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

/// Milliseconds since the server's epoch — the clock every lease deadline
/// lives in.
fn now_ms(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

/// Returns one connection slot to the gate when a handler thread exits —
/// by any path, panic unwinds included.
struct ConnectionPermit {
    shared: Arc<Shared>,
}

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        self.shared
            .active_connections
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// Refuses a connection beyond [`ServiceConfig::max_connections`]: one
/// `503` with a `retry-after` hint, then a write-side shutdown and a short
/// drain of whatever the client already sent, so the response is actually
/// delivered instead of being discarded by a TCP reset.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = write_response(
        &mut stream,
        503,
        "text/plain",
        &[("retry-after", "1".to_string())],
        "connection limit reached; retry shortly\n",
        false,
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Drain the request bytes in flight: closing with unread data makes
    // many stacks send RST, which can destroy the queued 503.
    use std::io::Read as _;
    let mut sink = [0u8; 1_024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn handle_connection(stream: TcpStream, shared: &Shared, config: &ServiceConfig, epoch: Instant) {
    // The read timeout doubles as the keep-alive idle timeout: a client
    // that sends nothing for this long gets its connection closed.
    let idle = Duration::from_millis(config.keep_alive_idle_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(idle));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    // Responses go out in full the moment they are written; see
    // `client::dial` for why Nagle is wrong for this traffic.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut served = 0usize;
    shared.metrics.connections.inc();
    loop {
        // Wait for the next request (or a clean close / idle timeout)
        // before parsing, so an idle keep-alive connection dies here and
        // not with a half-parsed request.
        match reader.fill_buf() {
            Ok([]) => return, // client closed cleanly
            Ok(_) => {}
            Err(_) => return, // idle timeout or reset
        }
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            Err(error) => {
                shared.logs.sink.log(
                    &LogEvent::new(LogLevel::Warn, "server", "unparsable request")
                        .attr("error", error.to_string()),
                );
                shared.logs.flush();
                let _ = write_response(
                    &mut writer,
                    400,
                    "text/plain",
                    &[],
                    &format!("{error}\n"),
                    false,
                );
                return;
            }
        };
        served += 1;
        let keep_alive = served < config.keep_alive_max_requests
            && !request.wants_close()
            && !shared.stop.load(Ordering::SeqCst);
        let clock = Instant::now();
        let endpoint = endpoint_label(&request.method, &request.segments());
        let (status, content_type, extra, body) = route(&request, shared, epoch);
        if shared.dead.load(Ordering::SeqCst) {
            // An aborted (pseudo-killed) server does not answer; the client
            // sees a dropped connection, exactly like a real crash.
            return;
        }
        shared.metrics.request(endpoint, status, clock.elapsed());
        // Registry transitions buffer the span lines they emit; drain them
        // after every state-mutating request so the trace log trails the
        // journal by at most one request. Drained even with no trace log
        // configured, so the buffer never grows unbounded.
        if request.method == "POST" {
            if let Ok(mut state) = shared.state.lock() {
                let lines = state.take_trace_lines();
                if let Some(trace) = &shared.trace {
                    for line in &lines {
                        trace.sink.record_line(line);
                    }
                }
                // Registry log lines were filter-checked when built; they
                // re-enter the server stream verbatim.
                for line in state.take_log_lines() {
                    shared.logs.sink.log_line(&line);
                }
            }
        }
        shared.logs.flush();
        if let Some(trace) = &shared.trace {
            // Any request carrying a valid x-trace-id gets a request span
            // in the trace log (not in per-job streams: request spans are
            // server-local observability, job streams are deterministic).
            if let Some(trace_id) = request.header("x-trace-id").and_then(spans::parse_id) {
                let end_us = spans::now_us();
                let start_us = end_us.saturating_sub(clock.elapsed().as_micros() as u64);
                let span_id = trace.ids.lock().map_or(1, |mut ids| ids.next_id());
                let span = SpanEvent::new(
                    trace_id,
                    span_id,
                    Some(SpanIdGen::derive(trace_id, "campaign")),
                    endpoint,
                    SpanKind::Server,
                    start_us,
                    end_us,
                )
                .attr("method", request.method.as_str())
                .attr("path", request.path.as_str())
                .attr("status", status.to_string());
                trace.sink.record(&span);
            }
            if let Ok(mut drain) = trace.drain.lock() {
                let _ = drain.flush();
            }
        }
        if let Some(log) = &shared.access_log {
            if let Ok(mut log) = log.lock() {
                let _ = log.write(&JsonValue::object(vec![
                    ("ts_ms".to_string(), JsonValue::from(now_ms(epoch) as usize)),
                    (
                        "method".to_string(),
                        JsonValue::from(request.method.as_str()),
                    ),
                    ("path".to_string(), JsonValue::from(request.path.as_str())),
                    ("status".to_string(), JsonValue::from(status as usize)),
                    (
                        "duration_us".to_string(),
                        JsonValue::from(clock.elapsed().as_micros() as usize),
                    ),
                    ("bytes_in".to_string(), JsonValue::from(request.body.len())),
                    ("bytes_out".to_string(), JsonValue::from(body.len())),
                    ("keep_alive".to_string(), JsonValue::from(keep_alive)),
                    (
                        "trace_id".to_string(),
                        JsonValue::from(request.header("x-trace-id").unwrap_or("")),
                    ),
                ]));
            }
        }
        let extra: Vec<(&str, String)> = extra
            .iter()
            .map(|(name, value)| (name.as_str(), value.clone()))
            .collect();
        if write_response(&mut writer, status, content_type, &extra, &body, keep_alive).is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// Routes one request. Returns `(status, content-type, extra headers,
/// body)`; errors become plain-text bodies with the error's status code.
fn route(
    request: &Request,
    shared: &Shared,
    epoch: Instant,
) -> (u16, &'static str, Vec<(String, String)>, String) {
    match dispatch(request, shared, epoch) {
        Ok(Reply {
            status,
            content_type,
            extra,
            body,
        }) => (status, content_type, extra, body),
        Err(error) => {
            // Quota refusals carry their wait hint as a header too, so
            // plain HTTP clients see it without parsing the body.
            let extra = match &error {
                ServiceError::RateLimited { retry_after_s, .. } => {
                    vec![("retry-after".to_string(), retry_after_s.to_string())]
                }
                _ => Vec::new(),
            };
            (
                error.status_code(),
                "text/plain",
                extra,
                format!("{error}\n"),
            )
        }
    }
}

/// A successful route result.
struct Reply {
    status: u16,
    content_type: &'static str,
    extra: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn json(value: &JsonValue) -> Reply {
        Reply {
            status: 200,
            content_type: "application/json",
            extra: Vec::new(),
            body: value.to_json(),
        }
    }
}

/// The `x-worker` header, required on shard mutations so ownership checks
/// have a name to check against.
fn worker_header(request: &Request) -> Result<&str, ServiceError> {
    request
        .header("x-worker")
        .ok_or_else(|| ServiceError::BadRequest("missing x-worker header".to_string()))
}

fn parse_body_json(request: &Request) -> Result<JsonValue, ServiceError> {
    JsonValue::parse(&request.body)
        .map_err(|e| ServiceError::BadRequest(format!("request body: {e}")))
}

fn dispatch(request: &Request, shared: &Shared, epoch: Instant) -> Result<Reply, ServiceError> {
    let segments = request.segments();
    // The probes bypass both the readiness gate and the registry lock:
    // /healthz means "the process accepts connections", /readyz means "the
    // journal is replayed and requests will be served".
    let ready = shared.ready.load(Ordering::SeqCst);
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            return Ok(Reply::json(&JsonValue::object(vec![(
                "ok".to_string(),
                JsonValue::from(true),
            )])))
        }
        ("GET", ["readyz"]) => {
            let body = JsonValue::object(vec![
                ("ready".to_string(), JsonValue::from(ready)),
                (
                    "replayed_events".to_string(),
                    JsonValue::from(shared.replay.events),
                ),
                (
                    "replayed_jobs".to_string(),
                    JsonValue::from(shared.replay.jobs),
                ),
                (
                    "replayed_records".to_string(),
                    JsonValue::from(shared.replay.records),
                ),
                (
                    "replayed_snapshots".to_string(),
                    JsonValue::from(shared.replay.snapshots),
                ),
                (
                    "repaired_bytes".to_string(),
                    JsonValue::from(shared.replay.repaired_bytes as usize),
                ),
                (
                    "leases_reset".to_string(),
                    JsonValue::from(shared.leases_reset),
                ),
            ]);
            return Ok(Reply {
                status: if ready { 200 } else { 503 },
                content_type: "application/json",
                extra: Vec::new(),
                body: body.to_json(),
            });
        }
        ("GET", ["metrics"]) => {
            // Scrapeable before the ready gate, like the probes: a server
            // replaying a large journal should be observable while it does.
            // Compactions are pulled from the journal at scrape time —
            // auto-compactions happen inside `append`, far from any
            // counter handle.
            if let Ok(state) = shared.state.lock() {
                shared
                    .metrics
                    .registry
                    .gauge("journal_compactions_total", &[])
                    .set(state.compactions());
            }
            let mut snapshot = shared.metrics.registry.snapshot();
            let workers = shared
                .worker_metrics
                .lock()
                .map_err(|_| ServiceError::Protocol("worker metrics mutex poisoned".to_string()))?;
            for (worker, worker_snapshot) in workers.iter() {
                snapshot.merge(&worker_snapshot.clone().with_label("worker", worker));
            }
            return Ok(Reply {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                extra: Vec::new(),
                body: snapshot.render_prometheus(),
            });
        }
        ("GET", ["logs"]) => {
            // Pre-ready like /metrics: a replaying server's logs are
            // exactly what an operator wants to watch.
            let from = request
                .query_param("from")
                .map(|value| {
                    value.parse::<usize>().map_err(|_| {
                        ServiceError::BadRequest(format!("bad 'from' value '{value}'"))
                    })
                })
                .transpose()?
                .unwrap_or(0);
            let (body, next) = shared
                .logs
                .ring
                .lock()
                .map_err(|_| ServiceError::Protocol("log ring mutex poisoned".to_string()))?
                .page(from);
            return Ok(Reply {
                status: 200,
                content_type: "application/jsonl",
                extra: vec![("x-next-from".to_string(), next.to_string())],
                body,
            });
        }
        ("GET", ["dashboard"]) => {
            return Ok(Reply {
                status: 200,
                content_type: "text/html; charset=utf-8",
                extra: Vec::new(),
                body: render_dashboard(shared, epoch)?,
            });
        }
        _ => {}
    }
    if !ready {
        return Err(ServiceError::Unavailable(
            "starting up (journal replay not yet served); retry shortly".to_string(),
        ));
    }
    // Parse JSON bodies (and the campaign spec) *before* taking the
    // registry lock: a large or malformed body must never stall the
    // endpoints every worker depends on (lease renewal, ingest).
    let body_json = match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"] | ["lease"]) => Some(parse_body_json(request)?),
        _ => None,
    };
    let mut state = shared.state.lock().map_err(|_| {
        ServiceError::Protocol("registry mutex poisoned (a handler panicked)".to_string())
    })?;
    let now = now_ms(epoch);
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => {
            let body = body_json.as_ref().expect("parsed above");
            let spec =
                CampaignSpec::from_json(body.field("spec").map_err(ServiceError::BadRequest)?)
                    .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            let shards = body
                .get("shards")
                .map(|value| {
                    value.as_u64().map(|n| n as usize).ok_or_else(|| {
                        ServiceError::BadRequest(
                            "'shards' must be a non-negative integer".to_string(),
                        )
                    })
                })
                .transpose()?
                .unwrap_or(1);
            let client = match body.get("client") {
                None => "default",
                Some(JsonValue::String(name)) if !name.is_empty() => name.as_str(),
                Some(_) => {
                    return Err(ServiceError::BadRequest(
                        "'client' must be a non-empty string".to_string(),
                    ))
                }
            };
            let priority = body
                .get("priority")
                .map(|value| {
                    value.as_u64().ok_or_else(|| {
                        ServiceError::BadRequest(
                            "'priority' must be a non-negative integer".to_string(),
                        )
                    })
                })
                .transpose()?
                .unwrap_or(0);
            // Admission control, *before* the submit reaches the journal:
            // a refused submit is never journaled, so quota changes across
            // restarts can never make an old journal refuse to replay.
            if shared.client_quota > 0 {
                let pending = state.registry().client_pending_shards(client);
                if pending >= shared.client_quota {
                    return Err(ServiceError::RateLimited {
                        message: format!(
                            "client '{client}' has {pending} pending shard(s), quota {}",
                            shared.client_quota
                        ),
                        retry_after_s: (shared.lease_ttl_ms / 1_000).max(1),
                    });
                }
            }
            // A submitter that wants the campaign traced sends x-trace-id;
            // the submit instant (Unix µs) anchors the job's synthetic span
            // clock, so every later transition span is a pure function of
            // journaled events (see `Registry::submit`).
            let trace_id = request
                .header("x-trace-id")
                .and_then(spans::parse_id)
                .unwrap_or(0);
            let trace_us = if trace_id == 0 { 0 } else { spans::now_us() };
            let submission = Submission::new(spec, shards)
                .for_client(client, priority)
                .traced(trace_id, trace_us);
            let status = state.submit(submission, now)?;
            Ok(Reply {
                status: 201,
                content_type: "application/json",
                extra: Vec::new(),
                body: status.to_json(),
            })
        }
        ("GET", ["jobs"]) => Ok(Reply::json(&state.registry().jobs_status(now))),
        ("GET", ["jobs", job]) => Ok(Reply::json(&state.registry().job_status(job, now)?)),
        ("GET", ["jobs", job, "records"]) => {
            let from = request
                .query_param("from")
                .map(|value| {
                    value.parse::<usize>().map_err(|_| {
                        ServiceError::BadRequest(format!("bad 'from' value '{value}'"))
                    })
                })
                .transpose()?
                .unwrap_or(0);
            let (body, next) = state.registry().records_from(job, from)?;
            Ok(Reply {
                status: 200,
                content_type: "application/jsonl",
                extra: vec![("x-next-from".to_string(), next.to_string())],
                body,
            })
        }
        ("GET", ["jobs", job, "spans"]) => {
            let from = request
                .query_param("from")
                .map(|value| {
                    value.parse::<usize>().map_err(|_| {
                        ServiceError::BadRequest(format!("bad 'from' value '{value}'"))
                    })
                })
                .transpose()?
                .unwrap_or(0);
            let (body, next) = state.registry().spans_from(job, from)?;
            Ok(Reply {
                status: 200,
                content_type: "application/jsonl",
                extra: vec![("x-next-from".to_string(), next.to_string())],
                body,
            })
        }
        ("GET", ["jobs", job, "progress"]) => {
            let mut progress = state.registry().progress(job, now)?;
            // Per-phase latency quantiles from the merged worker snapshots
            // (the histograms record microseconds), so `submit --wait` can
            // name the slowest engine phase without a /metrics scrape.
            // Lock order state → worker_metrics, as in the lease handler.
            let workers = shared
                .worker_metrics
                .lock()
                .map_err(|_| ServiceError::Protocol("worker metrics mutex poisoned".to_string()))?;
            let mut merged = MetricsSnapshot::default();
            for snapshot in workers.values() {
                merged.merge(snapshot);
            }
            drop(workers);
            let phases: Vec<JsonValue> = ["scheduling", "thermal", "floorplan", "grid"]
                .iter()
                .filter_map(|phase| {
                    let histogram =
                        merged.histogram_value("engine_phase_seconds", &[("phase", phase)])?;
                    (histogram.count() > 0).then(|| {
                        JsonValue::object(vec![
                            ("phase".to_string(), JsonValue::from(*phase)),
                            (
                                "count".to_string(),
                                JsonValue::from(histogram.count() as usize),
                            ),
                            (
                                "p50_us".to_string(),
                                JsonValue::from(histogram.quantile(0.5) as usize),
                            ),
                            (
                                "p99_us".to_string(),
                                JsonValue::from(histogram.quantile(0.99) as usize),
                            ),
                        ])
                    })
                })
                .collect();
            if let JsonValue::Object(fields) = &mut progress {
                fields.insert("phases".to_string(), JsonValue::Array(phases));
            }
            Ok(Reply::json(&progress))
        }
        ("GET", ["jobs", job, "summary"]) => Ok(Reply::json(&state.registry().summary(job, now)?)),
        ("GET", ["workers"]) => Ok(Reply::json(&state.registry().workers_status(now))),
        ("POST", ["lease"]) => {
            let body = body_json.as_ref().expect("parsed above");
            let worker = body.field_str("worker").map_err(ServiceError::BadRequest)?;
            shared.metrics.lease_requests.inc();
            // Workers piggyback their cumulative metrics snapshot on lease
            // polls. Latest-wins storage; a malformed snapshot is dropped
            // rather than failing the lease (metrics are best-effort, the
            // lease is not).
            if let Some(value) = body.get("metrics") {
                if let Ok(snapshot) = MetricsSnapshot::from_json(value) {
                    shared
                        .worker_metrics
                        .lock()
                        .map_err(|_| {
                            ServiceError::Protocol("worker metrics mutex poisoned".to_string())
                        })?
                        .insert(worker.to_string(), snapshot);
                }
            }
            let response = state.lease(worker, now)?;
            if response.get("lease").is_some() {
                shared.metrics.leases_granted.inc();
            }
            Ok(Reply::json(&response))
        }
        ("POST", ["jobs", job, "shards", index, "records"]) => {
            let worker = worker_header(request)?;
            let index = parse_shard_index(index)?;
            let report = state.ingest(job, index, worker, &request.body, now)?;
            Ok(Reply::json(&JsonValue::object(vec![
                ("accepted".to_string(), JsonValue::from(report.accepted)),
                ("duplicates".to_string(), JsonValue::from(report.duplicates)),
                ("ignored".to_string(), JsonValue::from(report.ignored)),
            ])))
        }
        ("POST", ["jobs", job, "shards", index, "done"]) => {
            let worker = worker_header(request)?;
            let index = parse_shard_index(index)?;
            Ok(Reply::json(&state.shard_done(job, index, worker, now)?))
        }
        ("POST", ["compact"]) => {
            // On-demand journal compaction: fold the whole journal into
            // one snapshot event right now (400 without a journal).
            let report = state.compact()?;
            Ok(Reply::json(&JsonValue::object(vec![
                (
                    "bytes_before".to_string(),
                    JsonValue::from(report.bytes_before as usize),
                ),
                (
                    "bytes_after".to_string(),
                    JsonValue::from(report.bytes_after as usize),
                ),
            ])))
        }
        (_, _) => Err(ServiceError::NotFound(format!(
            "{} {}",
            request.method, request.path
        ))),
    }
}

fn parse_shard_index(text: &str) -> Result<usize, ServiceError> {
    text.parse::<usize>()
        .map_err(|_| ServiceError::BadRequest(format!("bad shard index '{text}'")))
}

/// Throughput samples retained for the dashboard sparkline (one per
/// `GET /dashboard` render; at the page's 2 s auto-refresh this spans
/// about three minutes).
const SPARKLINE_SAMPLES: usize = 90;

/// Minimal HTML escaping for text interpolated into the dashboard.
fn html_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

/// An inline SVG sparkline of fleet throughput — records/sec between
/// consecutive dashboard samples. A placeholder until two samples exist.
fn sparkline_svg(samples: &[(u64, u64)]) -> String {
    use std::fmt::Write as _;
    let mut rates: Vec<f64> = Vec::new();
    for pair in samples.windows(2) {
        let ((t0, r0), (t1, r1)) = (pair[0], pair[1]);
        let dt_ms = t1.saturating_sub(t0).max(1) as f64;
        rates.push(r1.saturating_sub(r0) as f64 / dt_ms * 1_000.0);
    }
    if rates.is_empty() {
        return "<p class=\"meta\">throughput: collecting samples…</p>".to_string();
    }
    let (width, height) = (360.0_f64, 48.0_f64);
    let max = rates.iter().copied().fold(1.0_f64, f64::max);
    let step = if rates.len() > 1 {
        width / (rates.len() - 1) as f64
    } else {
        width
    };
    let mut points = String::new();
    for (index, rate) in rates.iter().enumerate() {
        let x = index as f64 * step;
        let y = height - 2.0 - (rate / max) * (height - 4.0);
        let _ = write!(points, "{}{x:.1},{y:.1}", if index > 0 { " " } else { "" });
    }
    format!(
        "<svg width=\"360\" height=\"48\" viewBox=\"0 0 360 48\" role=\"img\" aria-label=\"throughput\">\
         <polyline fill=\"none\" stroke=\"#2b7\" stroke-width=\"2\" points=\"{points}\"/></svg>\
         <p class=\"meta\">throughput: {last:.1} records/s (peak {max:.1})</p>",
        last = rates.last().copied().unwrap_or(0.0),
    )
}

/// Renders `GET /dashboard`: one self-contained HTML page — inline CSS,
/// inline SVG sparkline, `<meta http-equiv="refresh">` auto-refresh, no
/// external resources — showing jobs with progress bars, workers with
/// derived status, and the structured-log tail. A browser pointed at the
/// server sees the whole fleet with zero tooling.
fn render_dashboard(shared: &Shared, epoch: Instant) -> Result<String, ServiceError> {
    use std::fmt::Write as _;
    let now = now_ms(epoch);
    let (jobs, workers) = {
        let state = shared.state.lock().map_err(|_| {
            ServiceError::Protocol("registry mutex poisoned (a handler panicked)".to_string())
        })?;
        (
            state.registry().jobs_status(now),
            state.registry().workers_status(now),
        )
    };
    let job_rows: &[JsonValue] = match jobs.get("jobs") {
        Some(JsonValue::Array(items)) => items.as_slice(),
        _ => &[],
    };
    let worker_rows: &[JsonValue] = match workers.get("workers") {
        Some(JsonValue::Array(items)) => items.as_slice(),
        _ => &[],
    };
    let total_records: u64 = job_rows
        .iter()
        .filter_map(|job| job.get("records").and_then(JsonValue::as_u64))
        .sum();
    let samples = {
        let mut samples = shared
            .throughput
            .lock()
            .map_err(|_| ServiceError::Protocol("throughput mutex poisoned".to_string()))?;
        samples.push((now, total_records));
        let excess = samples.len().saturating_sub(SPARKLINE_SAMPLES);
        if excess > 0 {
            samples.drain(..excess);
        }
        samples.clone()
    };
    let tail: Vec<String> = shared
        .logs
        .ring
        .lock()
        .map_err(|_| ServiceError::Protocol("log ring mutex poisoned".to_string()))?
        .tail(20)
        .map(str::to_string)
        .collect();

    let mut html = String::with_capacity(4_096);
    html.push_str(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <meta http-equiv=\"refresh\" content=\"2\"><title>tats fleet</title><style>\
         body{font-family:ui-monospace,monospace;margin:1.5rem;background:#111;color:#ddd}\
         h1,h2{color:#fff;font-weight:600}h1{font-size:1.2rem}h2{font-size:1rem;margin-top:1.2rem}\
         table{border-collapse:collapse;min-width:32rem}\
         td,th{padding:.2rem .6rem;text-align:left;border-bottom:1px solid #333}\
         .meta{color:#888}.bar{background:#333;width:10rem;height:.6rem;display:inline-block}\
         .bar>span{background:#2b7;height:100%;display:block}\
         pre{background:#000;padding:.6rem;overflow-x:auto;font-size:.75rem}\
         .active{color:#2b7}.idle{color:#bb2}.stale{color:#b33}\
         </style></head><body><h1>tats fleet dashboard</h1>",
    );
    let _ = write!(
        html,
        "<p class=\"meta\">uptime {:.1}s · {} job(s) · {} record(s) · {} worker(s) · auto-refresh 2s</p>",
        now as f64 / 1_000.0,
        job_rows.len(),
        total_records,
        worker_rows.len(),
    );
    html.push_str(&sparkline_svg(&samples));
    html.push_str(
        "<h2>jobs</h2><table><tr><th>job</th><th>state</th><th>progress</th>\
         <th>records</th><th>shards</th></tr>",
    );
    for job in job_rows {
        let id = job.get("job").and_then(JsonValue::as_str).unwrap_or("?");
        let state = job.get("state").and_then(JsonValue::as_str).unwrap_or("?");
        let records = job.get("records").and_then(JsonValue::as_u64).unwrap_or(0);
        let scenarios = job
            .get("scenarios")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            .max(1);
        let pct = records * 100 / scenarios;
        let shards = job.get("shards");
        let done = shards
            .and_then(|s| s.get("done"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let count = shards
            .and_then(|s| s.get("count"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let _ = write!(
            html,
            "<tr><td>{}</td><td>{}</td>\
             <td><span class=\"bar\"><span style=\"width:{pct}%\"></span></span> {pct}%</td>\
             <td>{records}</td><td>{done}/{count}</td></tr>",
            html_escape(id),
            html_escape(state),
        );
    }
    html.push_str("</table>");
    html.push_str(
        "<h2>workers</h2><table><tr><th>worker</th><th>status</th><th>records</th>\
         <th>records/s</th><th>last seen</th></tr>",
    );
    for worker in worker_rows {
        let name = worker
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("?");
        let status = worker
            .get("status")
            .and_then(JsonValue::as_str)
            .unwrap_or("?");
        let records = worker
            .get("records")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let rate = match worker.get("records_per_sec") {
            Some(JsonValue::Number(n)) => format!("{n:.1}"),
            _ => "—".to_string(),
        };
        let age = worker
            .get("last_seen_age_ms")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let _ = write!(
            html,
            "<tr><td>{}</td><td class=\"{}\">{}</td><td>{records}</td>\
             <td>{rate}</td><td>{age} ms ago</td></tr>",
            html_escape(name),
            html_escape(status),
            html_escape(status),
        );
    }
    html.push_str("</table><h2>log tail</h2><pre>");
    for line in &tail {
        html.push_str(&html_escape(line));
        html.push('\n');
    }
    html.push_str("</pre></body></html>");
    Ok(html)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    #[test]
    fn healthz_readyz_and_unknown_routes() {
        let handle = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
        let addr = handle.addr_string();
        let health = client::get(&addr, "/healthz").expect("healthz");
        assert_eq!(health.body, "{\"ok\":true}");
        let ready = client::get(&addr, "/readyz").expect("readyz");
        assert!(ready.body.contains("\"ready\":true"), "{}", ready.body);
        let missing = client::request(&addr, "GET", "/nope", &[], None).expect("request");
        assert_eq!(missing.status, 404);
        let bad = client::request(&addr, "POST", "/jobs", &[], Some("not json")).expect("request");
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("request body"), "{}", bad.body);
        let unknown_job = client::request(&addr, "GET", "/jobs/j000009", &[], None).expect("req");
        assert_eq!(unknown_job.status, 404);
        handle.stop();
    }

    #[test]
    fn ready_holdoff_gates_everything_but_the_probes() {
        let config = ServiceConfig {
            ready_holdoff_ms: 60_000,
            ..ServiceConfig::default()
        };
        let handle = Service::bind("127.0.0.1:0", config).expect("bind");
        let addr = handle.addr_string();
        // Alive but not ready: liveness 200, readiness 503, work 503.
        assert_eq!(client::get(&addr, "/healthz").expect("alive").status, 200);
        let ready = client::request(&addr, "GET", "/readyz", &[], None).expect("readyz");
        assert_eq!(ready.status, 503);
        assert!(ready.body.contains("\"ready\":false"), "{}", ready.body);
        let jobs = client::request(&addr, "GET", "/jobs", &[], None).expect("jobs");
        assert_eq!(jobs.status, 503);
        assert!(jobs.body.contains("unavailable"), "{}", jobs.body);
        handle.stop();
    }

    #[test]
    fn metrics_serve_prometheus_text_even_before_ready() {
        let config = ServiceConfig {
            ready_holdoff_ms: 60_000,
            ..ServiceConfig::default()
        };
        let handle = Service::bind("127.0.0.1:0", config).expect("bind");
        let addr = handle.addr_string();
        // Not ready yet — but scrapeable, like the probes.
        let ready = client::request(&addr, "GET", "/readyz", &[], None).expect("readyz");
        assert_eq!(ready.status, 503);
        let metrics = client::get(&addr, "/metrics").expect("metrics");
        assert_eq!(metrics.status, 200);
        assert!(
            metrics
                .body
                .contains("# TYPE http_request_seconds histogram"),
            "{}",
            metrics.body
        );
        assert!(
            metrics.body.contains("journal_replayed_events 0"),
            "{}",
            metrics.body
        );
        handle.stop();
    }

    #[test]
    fn metrics_count_requests_per_endpoint_and_class() {
        let handle = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
        let addr = handle.addr_string();
        client::get(&addr, "/healthz").expect("healthz");
        client::get(&addr, "/healthz").expect("healthz");
        let missing = client::request(&addr, "GET", "/jobs/j000042", &[], None).expect("missing");
        assert_eq!(missing.status, 404);
        let metrics = client::get(&addr, "/metrics").expect("metrics");
        assert!(
            metrics
                .body
                .contains("http_requests_total{class=\"2xx\",endpoint=\"GET /healthz\"} 2"),
            "{}",
            metrics.body
        );
        assert!(
            metrics
                .body
                .contains("http_requests_total{class=\"4xx\",endpoint=\"GET /jobs/{id}\"} 1"),
            "{}",
            metrics.body
        );
        assert!(
            metrics
                .body
                .contains("http_request_seconds_count{endpoint=\"GET /healthz\"} 2"),
            "{}",
            metrics.body
        );
        handle.stop();
    }

    #[test]
    fn access_log_records_every_request_as_jsonl() {
        let path = std::env::temp_dir().join("tats_server_access_log_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let config = ServiceConfig {
            access_log: Some(path.clone()),
            ..ServiceConfig::default()
        };
        let handle = Service::bind("127.0.0.1:0", config).expect("bind");
        let addr = handle.addr_string();
        client::get(&addr, "/healthz").expect("healthz");
        let missing = client::request(&addr, "GET", "/nope", &[], None).expect("nope");
        assert_eq!(missing.status, 404);
        let traced = client::request(
            &addr,
            "GET",
            "/healthz",
            &[("x-trace-id", "00000000deadbeef".to_string())],
            None,
        )
        .expect("traced healthz");
        assert_eq!(traced.status, 200);
        handle.stop();
        let text = std::fs::read_to_string(&path).expect("access log");
        let lines: Vec<JsonValue> = text
            .lines()
            .map(|line| JsonValue::parse(line).expect("log line"))
            .collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(
            lines[0].get("path").and_then(JsonValue::as_str),
            Some("/healthz")
        );
        assert_eq!(
            lines[0].get("status").and_then(JsonValue::as_u64),
            Some(200)
        );
        assert_eq!(
            lines[1].get("status").and_then(JsonValue::as_u64),
            Some(404)
        );
        assert!(lines[1].get("duration_us").is_some());
        // Every line carries the trace correlation field: empty without an
        // x-trace-id header, verbatim with one.
        assert_eq!(
            lines[0].get("trace_id").and_then(JsonValue::as_str),
            Some("")
        );
        assert_eq!(
            lines[2].get("trace_id").and_then(JsonValue::as_str),
            Some("00000000deadbeef")
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A hard kill can leave one partial final line in the access log; the
    /// next bind repairs it. The reopened log must keep parsing line-for-line
    /// — old lines intact, the torn tail gone, new lines appended cleanly.
    #[test]
    fn crash_repaired_access_log_parses_line_for_line() {
        use std::io::Write as _;
        let path = std::env::temp_dir().join("tats_server_access_log_repair_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let config = ServiceConfig {
            access_log: Some(path.clone()),
            ..ServiceConfig::default()
        };
        let handle = Service::bind("127.0.0.1:0", config.clone()).expect("bind");
        let addr = handle.addr_string();
        client::get(&addr, "/healthz").expect("healthz");
        client::get(&addr, "/metrics").expect("metrics");
        handle.abort();
        let before: Vec<String> = std::fs::read_to_string(&path)
            .expect("access log")
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(before.len(), 2);

        // Simulate the torn tail of a kill -9 mid-write.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("reopen");
        file.write_all(b"{\"ts_ms\":123,\"method\":\"GET\",\"path\":\"/torn")
            .expect("torn tail");
        drop(file);

        let handle = Service::bind("127.0.0.1:0", config).expect("rebind");
        client::get(&handle.addr_string(), "/healthz").expect("healthz after repair");
        handle.stop();
        let text = std::fs::read_to_string(&path).expect("access log");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(&lines[..2], &before[..], "old lines survive verbatim");
        for line in &lines {
            let value = JsonValue::parse(line).expect("every line parses");
            assert!(value.get("trace_id").is_some(), "{line}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_stream() {
        let handle = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
        let mut connection = client::Connection::new(&handle.addr_string());
        for _ in 0..5 {
            assert_eq!(connection.get("/healthz").expect("healthz").status, 200);
        }
        assert_eq!(connection.exchanges(), 5);
        assert_eq!(connection.dials(), 1, "one TCP dial for five exchanges");
        handle.stop();
    }

    #[test]
    fn keep_alive_request_cap_recycles_connections() {
        let config = ServiceConfig {
            keep_alive_max_requests: 2,
            ..ServiceConfig::default()
        };
        let handle = Service::bind("127.0.0.1:0", config).expect("bind");
        let mut connection = client::Connection::new(&handle.addr_string());
        for _ in 0..6 {
            assert_eq!(connection.get("/healthz").expect("healthz").status, 200);
        }
        // Every second response carries connection: close, so 6 exchanges
        // cost 3 dials — and the client never noticed.
        assert_eq!(connection.exchanges(), 6);
        assert_eq!(connection.dials(), 3);
        handle.stop();
    }

    #[test]
    fn disabled_keep_alive_closes_after_every_request() {
        let config = ServiceConfig {
            keep_alive_max_requests: 0,
            ..ServiceConfig::default()
        };
        let handle = Service::bind("127.0.0.1:0", config).expect("bind");
        let mut connection = client::Connection::new(&handle.addr_string());
        for _ in 0..3 {
            assert_eq!(connection.get("/healthz").expect("healthz").status, 200);
        }
        assert_eq!(connection.dials(), 3, "connection: close on every response");
        handle.stop();
    }

    #[test]
    fn stop_unbinds_the_port() {
        let handle = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
        let addr = handle.addr_string();
        client::get(&addr, "/healthz").expect("alive");
        handle.stop();
        // After stop the listener is gone: connecting fails (or the probe
        // errors), never hangs.
        assert!(client::get(&addr, "/healthz").is_err());
    }

    fn tiny_submit_body(shards: usize, client: &str, priority: u64) -> String {
        let mut spec = tats_engine::CampaignSpec::default();
        spec.benchmarks.truncate(1);
        JsonValue::object(vec![
            ("spec".to_string(), spec.to_json()),
            ("shards".to_string(), JsonValue::from(shards)),
            ("client".to_string(), JsonValue::from(client)),
            ("priority".to_string(), JsonValue::from(priority as usize)),
        ])
        .to_json()
    }

    #[test]
    fn quota_refuses_with_429_and_retry_after_until_shards_drain() {
        let config = ServiceConfig {
            client_quota: 2,
            lease_ttl_ms: 5_000,
            log_filter: Some(LogFilter::off()),
            ..ServiceConfig::default()
        };
        let handle = Service::bind("127.0.0.1:0", config).expect("bind");
        let addr = handle.addr_string();
        let post = |body: &str| {
            client::request(
                &addr,
                "POST",
                "/jobs",
                &[("content-type", "application/json".to_string())],
                Some(body),
            )
            .expect("post /jobs")
        };
        // Two pending shards fill ci's quota; its next submit bounces with
        // the retry-after hint, while another client sails through.
        assert_eq!(post(&tiny_submit_body(2, "ci", 0)).status, 201);
        let refused = post(&tiny_submit_body(1, "ci", 0));
        assert_eq!(refused.status, 429, "{}", refused.body);
        assert_eq!(refused.header("retry-after"), Some("5"));
        assert!(refused.body.contains("quota 2"), "{}", refused.body);
        assert_eq!(post(&tiny_submit_body(1, "laptop", 0)).status, 201);
        // Refusals are admission control, not state: only the two accepted
        // jobs exist.
        let jobs = client::get(&addr, "/jobs").expect("jobs");
        assert_eq!(jobs.body.matches("\"job\":").count(), 2, "{}", jobs.body);
        handle.stop();
    }

    #[test]
    fn invalid_client_and_priority_fields_are_rejected() {
        let handle = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
        let addr = handle.addr_string();
        let mut spec = tats_engine::CampaignSpec::default();
        spec.benchmarks.truncate(1);
        for body in [
            JsonValue::object(vec![
                ("spec".to_string(), spec.to_json()),
                ("client".to_string(), JsonValue::from("")),
            ]),
            JsonValue::object(vec![
                ("spec".to_string(), spec.to_json()),
                ("priority".to_string(), JsonValue::from("high")),
            ]),
        ] {
            let response =
                client::request(&addr, "POST", "/jobs", &[], Some(&body.to_json())).expect("post");
            assert_eq!(response.status, 400, "{}", response.body);
        }
        handle.stop();
    }

    #[test]
    fn connection_gate_sheds_with_503_and_counts_rejections() {
        let config = ServiceConfig {
            max_connections: 1,
            ..ServiceConfig::default()
        };
        let handle = Service::bind("127.0.0.1:0", config).expect("bind");
        let addr = handle.addr_string();
        // One keep-alive connection occupies the only slot…
        let mut held = client::Connection::new(&addr);
        assert_eq!(held.get("/healthz").expect("held").status, 200);
        // …so the next connection is shed at the accept loop with a 503
        // that still reaches the client (write, shutdown, drain — no RST).
        let shed = client::request(&addr, "GET", "/healthz", &[], None).expect("shed response");
        assert_eq!(shed.status, 503, "{}", shed.body);
        assert_eq!(shed.header("retry-after"), Some("1"));
        assert!(shed.body.contains("connection limit"), "{}", shed.body);
        // Release the slot; the handler thread notices the close and
        // returns its permit shortly after.
        drop(held);
        let metrics = (0..200)
            .find_map(|_| match client::get(&addr, "/metrics") {
                Ok(scraped) => Some(scraped.body),
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                    None
                }
            })
            .expect("a freed slot admits the scrape");
        // At least the shed request above was rejected; scrape attempts
        // that raced the freed slot may have been shed too.
        let rejected = metrics
            .lines()
            .find_map(|line| line.strip_prefix("http_connections_rejected_total "))
            .and_then(|value| value.trim().parse::<u64>().ok())
            .expect("rejected counter exported");
        assert!(rejected >= 1, "{metrics}");
        handle.stop();
    }

    #[test]
    fn compact_endpoint_folds_the_journal_and_400s_without_one() {
        let path = std::env::temp_dir().join("tats_server_compact_endpoint_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let config = ServiceConfig {
            journal: Some(path.clone()),
            log_filter: Some(LogFilter::off()),
            ..ServiceConfig::default()
        };
        let handle = Service::bind("127.0.0.1:0", config.clone()).expect("bind");
        let addr = handle.addr_string();
        for client_name in ["ci", "laptop", "nightly"] {
            let response = client::request(
                &addr,
                "POST",
                "/jobs",
                &[],
                Some(&tiny_submit_body(2, client_name, 0)),
            )
            .expect("submit");
            assert_eq!(response.status, 201, "{}", response.body);
        }
        let report =
            client::post_json(&addr, "/compact", &JsonValue::object(vec![])).expect("compact");
        let before = report.get("bytes_before").and_then(JsonValue::as_u64);
        let after = report.get("bytes_after").and_then(JsonValue::as_u64);
        assert!(before.is_some() && after.is_some(), "{}", report.to_json());
        let compacted = std::fs::read_to_string(&path).expect("journal");
        assert_eq!(compacted.lines().count(), 1, "{compacted}");
        assert!(compacted.contains("\"event\":\"snapshot\""), "{compacted}");
        let metrics = client::get(&addr, "/metrics").expect("metrics");
        assert!(
            metrics.body.contains("journal_compactions_total 1"),
            "{}",
            metrics.body
        );
        handle.stop();
        // A restart replays the snapshot (fast-forward) and reports it.
        let handle = Service::bind("127.0.0.1:0", config).expect("rebind");
        let ready = client::get(&handle.addr_string(), "/readyz").expect("readyz");
        assert!(
            ready.body.contains("\"replayed_snapshots\":1"),
            "{}",
            ready.body
        );
        assert!(ready.body.contains("\"replayed_jobs\":3"), "{}", ready.body);
        handle.stop();
        let _ = std::fs::remove_file(&path);

        // Journal-less server: nothing to compact, a clean 400.
        let handle = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
        let response = client::request(&handle.addr_string(), "POST", "/compact", &[], Some("{}"))
            .expect("compact without journal");
        assert_eq!(response.status, 400, "{}", response.body);
        handle.stop();
    }

    #[test]
    fn abort_drops_clients_without_a_response() {
        let handle = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
        let addr = handle.addr_string();
        client::get(&addr, "/healthz").expect("alive");
        handle.abort();
        let error = client::get(&addr, "/healthz").expect_err("dead");
        assert!(matches!(error, ServiceError::Io(_)), "{error}");
    }
}
