//! The HTTP front of the campaign service: a `std::net::TcpListener`
//! accept loop that routes requests into the [`Registry`].
//!
//! Connections are short-lived (`Connection: close`, one request each) and
//! each is handled on its own thread, so a slow client never blocks the
//! accept loop and the registry mutex is the only synchronisation point.
//! The server is clocked by a monotonic `Instant` taken at bind time; all
//! lease deadlines live in that clock.
//!
//! # Endpoints
//!
//! | method & path | body | purpose |
//! |---|---|---|
//! | `GET /healthz` | — | liveness probe |
//! | `POST /jobs` | `{"spec": <campaign spec>, "shards": n}` | submit a campaign, get a job id |
//! | `GET /jobs` | — | status of every job |
//! | `GET /jobs/{id}` | — | one job's status |
//! | `GET /jobs/{id}/records?from=k` | — | JSONL records from index `k` (header `x-next-from`) |
//! | `GET /jobs/{id}/summary` | — | aggregated campaign summary |
//! | `GET /workers` | — | per-worker statistics |
//! | `POST /lease` | `{"worker": name}` | lease the next available shard |
//! | `POST /jobs/{id}/shards/{i}/records` | JSONL lines (`x-worker` header) | stream shard records |
//! | `POST /jobs/{id}/shards/{i}/done` | — (`x-worker` header) | mark a shard complete |

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tats_engine::CampaignSpec;
use tats_trace::JsonValue;

use crate::error::ServiceError;
use crate::http::{read_request, write_response, Request};
use crate::registry::Registry;

/// Tunables of one service instance.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Shard-lease TTL, ms: how long a silent worker keeps a shard before it
    /// is re-leased. Every record batch a worker streams renews its lease,
    /// so the TTL only has to outlast the gap *between* records of the
    /// heaviest scenario, not the whole shard.
    pub lease_ttl_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            lease_ttl_ms: 15_000,
        }
    }
}

/// A running campaign service.
///
/// Dropping the handle stops the server (see [`ServiceHandle::stop`]).
#[derive(Debug)]
pub struct ServiceHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `host:port` string clients pass to [`crate::client`] and
    /// `tats worker --connect`.
    pub fn addr_string(&self) -> String {
        self.addr.to_string()
    }

    /// Stops the accept loop and joins the server thread. In-flight
    /// connection handlers finish on their own threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The campaign service entry point.
#[derive(Debug)]
pub struct Service;

impl Service {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, config: ServiceConfig) -> Result<ServiceHandle, ServiceError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(Mutex::new(Registry::new(config.lease_ttl_ms)));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let epoch = Instant::now();
            loop {
                let Ok((stream, _)) = listener.accept() else {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    // A persistent accept error (e.g. EMFILE while the
                    // thread-per-connection pool is saturated) must not
                    // busy-spin a core; back off briefly and retry.
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                };
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || handle_connection(stream, &registry, epoch));
            }
        });
        Ok(ServiceHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }
}

/// Milliseconds since the server's epoch — the clock every lease deadline
/// lives in.
fn now_ms(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

fn handle_connection(stream: TcpStream, registry: &Mutex<Registry>, epoch: Instant) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    match read_request(&mut reader) {
        Err(error) => {
            let _ = write_response(&mut writer, 400, "text/plain", &[], &format!("{error}\n"));
        }
        Ok(request) => {
            let (status, content_type, extra, body) = route(&request, registry, epoch);
            let extra: Vec<(&str, String)> = extra
                .iter()
                .map(|(name, value)| (name.as_str(), value.clone()))
                .collect();
            let _ = write_response(&mut writer, status, content_type, &extra, &body);
        }
    }
}

/// Routes one request. Returns `(status, content-type, extra headers,
/// body)`; errors become plain-text bodies with the error's status code.
fn route(
    request: &Request,
    registry: &Mutex<Registry>,
    epoch: Instant,
) -> (u16, &'static str, Vec<(String, String)>, String) {
    match dispatch(request, registry, epoch) {
        Ok(Reply {
            status,
            content_type,
            extra,
            body,
        }) => (status, content_type, extra, body),
        Err(error) => (
            error.status_code(),
            "text/plain",
            Vec::new(),
            format!("{error}\n"),
        ),
    }
}

/// A successful route result.
struct Reply {
    status: u16,
    content_type: &'static str,
    extra: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn json(value: &JsonValue) -> Reply {
        Reply {
            status: 200,
            content_type: "application/json",
            extra: Vec::new(),
            body: value.to_json(),
        }
    }
}

/// The `x-worker` header, required on shard mutations so ownership checks
/// have a name to check against.
fn worker_header(request: &Request) -> Result<&str, ServiceError> {
    request
        .header("x-worker")
        .ok_or_else(|| ServiceError::BadRequest("missing x-worker header".to_string()))
}

fn parse_body_json(request: &Request) -> Result<JsonValue, ServiceError> {
    JsonValue::parse(&request.body)
        .map_err(|e| ServiceError::BadRequest(format!("request body: {e}")))
}

fn dispatch(
    request: &Request,
    registry: &Mutex<Registry>,
    epoch: Instant,
) -> Result<Reply, ServiceError> {
    let segments = request.segments();
    // Parse JSON bodies (and the campaign spec) *before* taking the
    // registry lock: a large or malformed body must never stall the
    // endpoints every worker depends on (lease renewal, ingest).
    let body_json = match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"] | ["lease"]) => Some(parse_body_json(request)?),
        _ => None,
    };
    let mut registry = registry.lock().map_err(|_| {
        ServiceError::Protocol("registry mutex poisoned (a handler panicked)".to_string())
    })?;
    let now = now_ms(epoch);
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(Reply::json(&JsonValue::object(vec![(
            "ok".to_string(),
            JsonValue::from(true),
        )]))),
        ("POST", ["jobs"]) => {
            let body = body_json.as_ref().expect("parsed above");
            let spec =
                CampaignSpec::from_json(body.field("spec").map_err(ServiceError::BadRequest)?)
                    .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            let shards = body
                .get("shards")
                .map(|value| {
                    value.as_u64().map(|n| n as usize).ok_or_else(|| {
                        ServiceError::BadRequest(
                            "'shards' must be a non-negative integer".to_string(),
                        )
                    })
                })
                .transpose()?
                .unwrap_or(1);
            let status = registry.submit(spec, shards, now)?;
            Ok(Reply {
                status: 201,
                content_type: "application/json",
                extra: Vec::new(),
                body: status.to_json(),
            })
        }
        ("GET", ["jobs"]) => Ok(Reply::json(&registry.jobs_status(now))),
        ("GET", ["jobs", job]) => Ok(Reply::json(&registry.job_status(job, now)?)),
        ("GET", ["jobs", job, "records"]) => {
            let from = request
                .query_param("from")
                .map(|value| {
                    value.parse::<usize>().map_err(|_| {
                        ServiceError::BadRequest(format!("bad 'from' value '{value}'"))
                    })
                })
                .transpose()?
                .unwrap_or(0);
            let (body, next) = registry.records_from(job, from)?;
            Ok(Reply {
                status: 200,
                content_type: "application/jsonl",
                extra: vec![("x-next-from".to_string(), next.to_string())],
                body,
            })
        }
        ("GET", ["jobs", job, "summary"]) => Ok(Reply::json(&registry.summary(job, now)?)),
        ("GET", ["workers"]) => Ok(Reply::json(&registry.workers_status())),
        ("POST", ["lease"]) => {
            let worker = body_json
                .as_ref()
                .expect("parsed above")
                .field_str("worker")
                .map_err(ServiceError::BadRequest)?;
            Ok(Reply::json(&registry.lease(worker, now)))
        }
        ("POST", ["jobs", job, "shards", index, "records"]) => {
            let worker = worker_header(request)?;
            let index = parse_shard_index(index)?;
            let report = registry.ingest(job, index, worker, &request.body, now)?;
            Ok(Reply::json(&JsonValue::object(vec![
                ("accepted".to_string(), JsonValue::from(report.accepted)),
                ("duplicates".to_string(), JsonValue::from(report.duplicates)),
                ("ignored".to_string(), JsonValue::from(report.ignored)),
            ])))
        }
        ("POST", ["jobs", job, "shards", index, "done"]) => {
            let worker = worker_header(request)?;
            let index = parse_shard_index(index)?;
            Ok(Reply::json(&registry.shard_done(job, index, worker, now)?))
        }
        (_, _) => Err(ServiceError::NotFound(format!(
            "{} {}",
            request.method, request.path
        ))),
    }
}

fn parse_shard_index(text: &str) -> Result<usize, ServiceError> {
    text.parse::<usize>()
        .map_err(|_| ServiceError::BadRequest(format!("bad shard index '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    #[test]
    fn healthz_and_unknown_routes() {
        let handle = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
        let addr = handle.addr_string();
        let health = client::get(&addr, "/healthz").expect("healthz");
        assert_eq!(health.body, "{\"ok\":true}");
        let missing = client::request(&addr, "GET", "/nope", &[], None).expect("request");
        assert_eq!(missing.status, 404);
        let bad = client::request(&addr, "POST", "/jobs", &[], Some("not json")).expect("request");
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("request body"), "{}", bad.body);
        let unknown_job = client::request(&addr, "GET", "/jobs/j000009", &[], None).expect("req");
        assert_eq!(unknown_job.status, 404);
        handle.stop();
    }

    #[test]
    fn stop_unbinds_the_port() {
        let handle = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
        let addr = handle.addr_string();
        client::get(&addr, "/healthz").expect("alive");
        handle.stop();
        // After stop the listener is gone: connecting fails (or the probe
        // errors), never hangs.
        assert!(client::get(&addr, "/healthz").is_err());
    }
}
