//! The shard worker: a pull loop that turns lease responses into campaign
//! work.
//!
//! A worker owns no state the server cannot reconstruct. Each iteration it
//! asks `POST /lease` for a shard; the response is self-contained (campaign
//! spec, shard selector, completed scenario ids), so the worker rebuilds the
//! [`Campaign`](tats_engine::Campaign) locally, verifies the spec
//! fingerprint matches the server's, and runs the shard's missing scenarios
//! through the existing [`Executor`] — per-worker geometry-keyed thermal
//! caches included. Every completed record is streamed back immediately
//! (`POST .../records`, which also renews the lease), so a worker killed
//! mid-shard loses at most the scenario in flight: the re-leased shard
//! resumes from the server's completed ids and the server dedups re-streams,
//! so records are never duplicated or dropped.
//!
//! All server traffic flows over one persistent keep-alive
//! [`Connection`](client::Connection) and through the worker's
//! [`RetryPolicy`]: transient failures — the server restarting (connection
//! refused, then 503 while it replays its journal), a dropped keep-alive
//! stream — are ridden out with capped exponential backoff instead of
//! killing the worker. Fatal errors still propagate immediately: a campaign
//! fingerprint mismatch, a scenario-evaluation failure, a 4xx the server
//! would repeat forever, and the injected-crash hook (which must look like
//! a crash). Retrying a record post is safe by the same invariant as worker
//! death: the server dedups by scenario id, so a repeat of a post whose
//! response was lost is absorbed.

use std::collections::BTreeSet;
use std::process;
use std::time::Duration;

use tats_engine::{CampaignSpec, EngineError, Executor, Shard};
use tats_trace::JsonValue;

use crate::client::{self, Connection};
use crate::error::ServiceError;
use crate::retry::RetryPolicy;

/// Tunables of one worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Self-reported name, the unit of lease ownership. Must be unique per
    /// live worker (the default includes the process id).
    pub name: String,
    /// Worker threads of the embedded executor (`0` = all cores).
    pub threads: usize,
    /// Sleep between polls while no shard is available, ms.
    pub poll_ms: u64,
    /// Exit once the server reports itself drained (every submitted job
    /// done) instead of polling forever. Batch drivers (the bench, CI) set
    /// this; long-lived fleet workers keep the default `false`.
    pub exit_when_drained: bool,
    /// Retry policy for transient transport failures (server restarts,
    /// dropped keep-alive connections). The policy is reseeded with the
    /// worker's name at loop start, so a fleet killed by the same restart
    /// does not retry in lockstep. [`RetryPolicy::none`] fails fast.
    pub retry: RetryPolicy,
    /// Test hook: abort the process-visible part of the worker (return an
    /// error as a crash would) after this many records have been streamed.
    /// Exercises the killed-worker → lease-expiry → resume path without
    /// spawning and killing real processes.
    pub fail_after_records: Option<usize>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: format!("worker-{}", process::id()),
            threads: 1,
            poll_ms: 200,
            exit_when_drained: false,
            retry: RetryPolicy::default(),
            fail_after_records: None,
        }
    }
}

/// What a worker accomplished before exiting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Shards leased, run to completion and acknowledged as done.
    pub shards_completed: usize,
    /// Records streamed to the server (across all shards and attempts).
    pub records_posted: usize,
    /// Lease polls that came back idle.
    pub idle_polls: u64,
}

/// One parsed lease.
#[derive(Debug)]
struct Lease {
    job: String,
    shard: Shard,
    spec: CampaignSpec,
    completed: BTreeSet<u64>,
}

/// Wraps a field-accessor message (`JsonValue::field_*`) as a lease
/// protocol error.
fn lease_error(message: String) -> ServiceError {
    ServiceError::Protocol(format!("lease response: {message}"))
}

fn parse_lease(value: &JsonValue) -> Result<Lease, ServiceError> {
    let job = value.field_str("job").map_err(lease_error)?.to_string();
    let shard = Shard::parse(value.field_str("shard").map_err(lease_error)?)
        .map_err(|e| ServiceError::Protocol(e.to_string()))?;
    let spec = CampaignSpec::from_json(value.field("spec").map_err(lease_error)?)
        .map_err(|e| ServiceError::Protocol(format!("lease spec: {e}")))?;
    // The spec fingerprint is the cross-process resume contract: if our
    // parse of the spec hashes differently than the server's, the two sides
    // would disagree on what each scenario id means — refuse to run.
    let fingerprint = value.field_str("fingerprint").map_err(lease_error)?;
    if spec.fingerprint() != fingerprint {
        return Err(ServiceError::Protocol(format!(
            "campaign fingerprint mismatch: server says {fingerprint}, this build derives {}",
            spec.fingerprint()
        )));
    }
    let completed = value
        .field_array("completed_ids")
        .map_err(lease_error)?
        .iter()
        .map(|id| {
            id.as_u64()
                .ok_or_else(|| lease_error("field 'completed_ids' must contain integers".into()))
        })
        .collect::<Result<BTreeSet<u64>, _>>()?;
    Ok(Lease {
        job,
        shard,
        spec,
        completed,
    })
}

/// Runs one leased shard, streaming records back over the shared keep-alive
/// connection and counting each successful post into `posted_total` (which
/// therefore survives failed attempts). Record posts retry transient
/// failures with `retry`; `Err(ServiceError::Http {status: 409, ..})` means
/// the lease was lost (the caller abandons the shard and polls again),
/// `Aborted` is the injected-crash hook, anything else is fatal.
fn run_shard(
    connection: &mut Connection,
    config: &WorkerConfig,
    retry: RetryPolicy,
    lease: &Lease,
    posted_total: &mut usize,
) -> Result<(), ServiceError> {
    let campaign = lease.spec.to_campaign();
    let scenarios = campaign.shard_scenarios(lease.shard);
    let records_path = format!("/jobs/{}/shards/{}/records", lease.job, lease.shard.index);
    let headers = [("x-worker", config.name.clone())];
    let mut failure: Option<ServiceError> = None;
    let run =
        Executor::new(config.threads).run(&campaign, &scenarios, &lease.completed, |record| {
            if let Some(limit) = config.fail_after_records {
                if *posted_total >= limit {
                    failure = Some(ServiceError::Aborted(format!(
                        "injected failure after {limit} records"
                    )));
                    return Err(EngineError::InvalidParameter("injected failure".into()));
                }
            }
            let mut line = record.to_json().to_json();
            line.push('\n');
            let response = retry.run(|| {
                connection
                    .request("POST", &records_path, &headers, Some(&line))
                    .and_then(client::expect_ok)
            });
            match response {
                Ok(_) => {
                    *posted_total += 1;
                    Ok(())
                }
                Err(error) => {
                    failure = Some(error);
                    Err(EngineError::InvalidParameter("record post failed".into()))
                }
            }
        });
    match run {
        Ok(_) => {
            retry.run(|| {
                connection
                    .request(
                        "POST",
                        &format!("/jobs/{}/shards/{}/done", lease.job, lease.shard.index),
                        &headers,
                        None,
                    )
                    .and_then(client::expect_ok)
            })?;
            Ok(())
        }
        Err(engine_error) => Err(match failure {
            // The sink aborted the run: surface the transport/injected error.
            Some(error) => error,
            // The scenario itself failed — a real evaluation bug, fatal.
            None => ServiceError::Engine(engine_error),
        }),
    }
}

/// The worker main loop: poll `addr` for shard leases and run them until
/// the server is drained (with [`WorkerConfig::exit_when_drained`]) or the
/// process is killed. All traffic shares one keep-alive connection;
/// transient transport failures retry per [`WorkerConfig::retry`], so the
/// loop survives a server restart shorter than its retry budget.
///
/// # Errors
///
/// Returns transport errors once the retry budget against an unreachable
/// server is exhausted, protocol errors (including a campaign-fingerprint
/// mismatch), scenario-evaluation failures, and [`ServiceError::Aborted`]
/// from the injected-crash hook. A *lost lease* (HTTP 409) is not an error:
/// the shard was re-leased to a healthier worker, so this one abandons it
/// and polls on.
pub fn run_worker(addr: &str, config: &WorkerConfig) -> Result<WorkerReport, ServiceError> {
    let mut report = WorkerReport::default();
    let retry = config.retry.seeded_for(&config.name);
    let mut connection = Connection::new(addr);
    loop {
        let lease_request = JsonValue::object(vec![(
            "worker".to_string(),
            JsonValue::from(config.name.as_str()),
        )]);
        let response = retry.run(|| connection.post_json("/lease", &lease_request))?;
        if let Some(lease_value) = response.get("lease") {
            let lease = parse_lease(lease_value)?;
            match run_shard(
                &mut connection,
                config,
                retry,
                &lease,
                &mut report.records_posted,
            ) {
                Ok(()) => report.shards_completed += 1,
                Err(ServiceError::Http { status: 409, .. }) => {
                    // Lease lost: our records so far are (deduped) on the
                    // server, the shard belongs to someone else now.
                    continue;
                }
                // An injected crash must look like one: propagate.
                Err(error) => return Err(error),
            }
        } else {
            report.idle_polls += 1;
            let drained = response
                .get("drained")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false);
            if drained && config.exit_when_drained {
                return Ok(report);
            }
            std::thread::sleep(Duration::from_millis(config.poll_ms.max(1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_parsing_validates_shape_and_fingerprint() {
        let spec = CampaignSpec::default();
        let mut fields = vec![
            ("job".to_string(), JsonValue::from("j000001")),
            ("shard".to_string(), JsonValue::from("0/2")),
            ("spec".to_string(), spec.to_json()),
            (
                "fingerprint".to_string(),
                JsonValue::from(spec.fingerprint().as_str()),
            ),
            (
                "completed_ids".to_string(),
                JsonValue::Array(vec![JsonValue::from(0usize), JsonValue::from(2usize)]),
            ),
            ("ttl_ms".to_string(), JsonValue::from(1000usize)),
        ];
        let lease = parse_lease(&JsonValue::object(fields.clone())).expect("valid lease");
        assert_eq!(lease.job, "j000001");
        assert_eq!((lease.shard.index, lease.shard.count), (0, 2));
        assert_eq!(lease.completed.iter().copied().collect::<Vec<_>>(), [0, 2]);

        // A fingerprint that does not match the spec is refused.
        fields[3] = ("fingerprint".to_string(), JsonValue::from("deadbeef"));
        let error = parse_lease(&JsonValue::object(fields.clone())).expect_err("mismatch");
        assert!(error.to_string().contains("fingerprint"), "{error}");

        // Missing fields are named.
        let error = parse_lease(&JsonValue::object(vec![])).expect_err("empty");
        assert!(error.to_string().contains("job"), "{error}");
    }

    #[test]
    fn default_config_names_include_the_pid() {
        let config = WorkerConfig::default();
        assert!(config.name.starts_with("worker-"));
        assert_eq!(config.threads, 1);
        assert!(!config.exit_when_drained);
        assert_eq!(config.retry.max_attempts, 10);
    }
}
