//! The shard worker: a pull loop that turns lease responses into campaign
//! work.
//!
//! A worker owns no state the server cannot reconstruct. Each iteration it
//! asks `POST /lease` for a shard; the response is self-contained (campaign
//! spec, shard selector, completed scenario ids), so the worker rebuilds the
//! [`Campaign`](tats_engine::Campaign) locally, verifies the spec
//! fingerprint matches the server's, and runs the shard's missing scenarios
//! through the existing [`Executor`] — per-worker geometry-keyed thermal
//! caches included. Every completed record is streamed back immediately
//! (`POST .../records`, which also renews the lease), so a worker killed
//! mid-shard loses at most the scenario in flight: the re-leased shard
//! resumes from the server's completed ids and the server dedups re-streams,
//! so records are never duplicated or dropped.
//!
//! All server traffic flows over one persistent keep-alive
//! [`Connection`](client::Connection) and through the worker's
//! [`RetryPolicy`]: transient failures — the server restarting (connection
//! refused, then 503 while it replays its journal), a dropped keep-alive
//! stream — are ridden out with capped exponential backoff instead of
//! killing the worker. Fatal errors still propagate immediately: a campaign
//! fingerprint mismatch, a scenario-evaluation failure, a 4xx the server
//! would repeat forever, and the injected-crash hook (which must look like
//! a crash). Retrying a record post is safe by the same invariant as worker
//! death: the server dedups by scenario id, so a repeat of a post whose
//! response was lost is absorbed.

use std::collections::BTreeSet;
use std::process;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tats_engine::{CampaignSpec, EngineError, Executor, Shard, TraceContext};
use tats_trace::log::{LogEvent, LogLevel, LogSink};
use tats_trace::metrics::{Counter, Histogram};
use tats_trace::spans::{self, id_hex, SpanEvent, SpanIdGen, SpanKind};
use tats_trace::{JsonValue, MetricsRegistry};

use crate::client::{self, Connection};
use crate::error::ServiceError;
use crate::retry::RetryPolicy;

/// Tunables of one worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Self-reported name, the unit of lease ownership. Must be unique per
    /// live worker (the default includes the process id).
    pub name: String,
    /// Worker threads of the embedded executor (`0` = all cores).
    pub threads: usize,
    /// Sleep between polls while no shard is available, ms.
    pub poll_ms: u64,
    /// Exit once the server reports itself drained (every submitted job
    /// done) instead of polling forever. Batch drivers (the bench, CI) set
    /// this; long-lived fleet workers keep the default `false`.
    pub exit_when_drained: bool,
    /// Retry policy for transient transport failures (server restarts,
    /// dropped keep-alive connections). The policy is reseeded with the
    /// worker's name at loop start, so a fleet killed by the same restart
    /// does not retry in lockstep. [`RetryPolicy::none`] fails fast.
    pub retry: RetryPolicy,
    /// Test hook: abort the process-visible part of the worker (return an
    /// error as a crash would) after this many records have been streamed.
    /// Exercises the killed-worker → lease-expiry → resume path without
    /// spawning and killing real processes.
    pub fail_after_records: Option<usize>,
    /// The worker's metrics shard: lease-wait time, shard/record
    /// throughput, transient-vs-fatal retry counts, plus everything the
    /// embedded executor records (per-scenario phase spans, thermal cache
    /// hits). A cumulative snapshot is piggybacked on `POST /lease` polls —
    /// throttled to one per [`METRICS_PIGGYBACK_MS`] while work is flowing,
    /// with a forced final flush before a drained exit so the server's
    /// `GET /metrics` always ends exact. `None` disables all
    /// instrumentation (the no-op baseline the bench compares against).
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Structured log sink (target `worker`): lease grants at debug, lost
    /// leases and transient retries at warn, shard completions and the
    /// drained exit at info, the fatal exit at error. Events carry the
    /// job's trace id when the lease shipped one. `None` logs nothing.
    pub log: Option<LogSink>,
}

/// Minimum interval between metrics snapshots piggybacked on lease polls.
/// Serializing and shipping the full registry on every poll costs more than
/// the instrumentation itself; one snapshot per interval (plus the forced
/// flush before a drained exit) keeps scrape freshness at human timescales
/// for a fraction of the cost.
const METRICS_PIGGYBACK_MS: u64 = 500;

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: format!("worker-{}", process::id()),
            threads: 1,
            poll_ms: 200,
            exit_when_drained: false,
            retry: RetryPolicy::default(),
            fail_after_records: None,
            metrics: Some(Arc::new(MetricsRegistry::new())),
            log: None,
        }
    }
}

/// Pre-registered handles into the worker's [`MetricsRegistry`] (the hot
/// paths must not take the registry's registration lock).
struct WorkerMetrics {
    lease_wait: Arc<Histogram>,
    shard_seconds: Arc<Histogram>,
    shards_completed: Arc<Counter>,
    records_posted: Arc<Counter>,
    idle_polls: Arc<Counter>,
    leases_lost: Arc<Counter>,
    retry_transient: Arc<Counter>,
    retry_fatal: Arc<Counter>,
}

impl WorkerMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        WorkerMetrics {
            lease_wait: registry.histogram("worker_lease_wait_seconds", &[]),
            shard_seconds: registry.histogram("worker_shard_seconds", &[]),
            shards_completed: registry.counter("worker_shards_completed_total", &[]),
            records_posted: registry.counter("worker_records_posted_total", &[]),
            idle_polls: registry.counter("worker_idle_polls_total", &[]),
            leases_lost: registry.counter("worker_leases_lost_total", &[]),
            retry_transient: registry.counter("worker_retry_transient_total", &[]),
            retry_fatal: registry.counter("worker_retry_fatal_total", &[]),
        }
    }

    fn observe_retry(&self, transient: bool) {
        if transient {
            self.retry_transient.inc();
        } else {
            self.retry_fatal.inc();
        }
    }
}

/// Emits one `worker`-target event through the sink, if there is one. The
/// filter is checked before `build` runs, so disabled levels cost a branch
/// and no allocation.
fn worker_log(log: Option<&LogSink>, level: LogLevel, build: impl FnOnce() -> LogEvent) {
    if let Some(sink) = log {
        if sink.enabled(level, "worker") {
            sink.log(&build());
        }
    }
}

/// [`RetryPolicy::run`] with failures counted into the worker's registry
/// when instrumentation is on, and transient (about-to-retry) failures
/// logged at warn — the signal an operator sees while a fleet rides out a
/// server restart.
fn retry_observed<T>(
    retry: &RetryPolicy,
    metrics: Option<&WorkerMetrics>,
    log: Option<&LogSink>,
    op: impl FnMut() -> Result<T, ServiceError>,
) -> Result<T, ServiceError> {
    retry.run_observed(
        |error, transient| {
            if let Some(metrics) = metrics {
                metrics.observe_retry(transient);
            }
            if transient {
                worker_log(log, LogLevel::Warn, || {
                    LogEvent::new(LogLevel::Warn, "worker", "transient failure; retrying")
                        .attr("error", error.to_string())
                });
            }
        },
        op,
    )
}

/// What a worker accomplished before exiting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Shards leased, run to completion and acknowledged as done.
    pub shards_completed: usize,
    /// Records streamed to the server (across all shards and attempts).
    pub records_posted: usize,
    /// Lease polls that came back idle.
    pub idle_polls: u64,
}

/// One parsed lease.
#[derive(Debug)]
struct Lease {
    job: String,
    shard: Shard,
    spec: CampaignSpec,
    completed: BTreeSet<u64>,
    /// `(trace_id, root_span_id)` when the job is traced: the worker wraps
    /// the shard in a span parented on the campaign root and piggybacks the
    /// executor's per-scenario span trees on record posts.
    trace: Option<(u64, u64)>,
}

/// Wraps a field-accessor message (`JsonValue::field_*`) as a lease
/// protocol error.
fn lease_error(message: String) -> ServiceError {
    ServiceError::Protocol(format!("lease response: {message}"))
}

fn parse_lease(value: &JsonValue) -> Result<Lease, ServiceError> {
    let job = value.field_str("job").map_err(lease_error)?.to_string();
    let shard = Shard::parse(value.field_str("shard").map_err(lease_error)?)
        .map_err(|e| ServiceError::Protocol(e.to_string()))?;
    let spec = CampaignSpec::from_json(value.field("spec").map_err(lease_error)?)
        .map_err(|e| ServiceError::Protocol(format!("lease spec: {e}")))?;
    // The spec fingerprint is the cross-process resume contract: if our
    // parse of the spec hashes differently than the server's, the two sides
    // would disagree on what each scenario id means — refuse to run.
    let fingerprint = value.field_str("fingerprint").map_err(lease_error)?;
    if spec.fingerprint() != fingerprint {
        return Err(ServiceError::Protocol(format!(
            "campaign fingerprint mismatch: server says {fingerprint}, this build derives {}",
            spec.fingerprint()
        )));
    }
    let completed = value
        .field_array("completed_ids")
        .map_err(lease_error)?
        .iter()
        .map(|id| {
            id.as_u64()
                .ok_or_else(|| lease_error("field 'completed_ids' must contain integers".into()))
        })
        .collect::<Result<BTreeSet<u64>, _>>()?;
    // Trace context is optional (untraced jobs omit it). The root span id
    // is derivable from the trace id alone, so a lease from an older server
    // that ships only `trace_id` still parses.
    let trace = value
        .get("trace_id")
        .and_then(JsonValue::as_str)
        .and_then(spans::parse_id)
        .map(|trace_id| {
            let root = value
                .get("root_span")
                .and_then(JsonValue::as_str)
                .and_then(spans::parse_id)
                .unwrap_or_else(|| SpanIdGen::derive(trace_id, "campaign"));
            (trace_id, root)
        });
    Ok(Lease {
        job,
        shard,
        spec,
        completed,
        trace,
    })
}

/// Runs one leased shard, streaming records back over the shared keep-alive
/// connection and counting each successful post into `posted_total` (which
/// therefore survives failed attempts). Record posts retry transient
/// failures with `retry`; `Err(ServiceError::Http {status: 409, ..})` means
/// the lease was lost (the caller abandons the shard and polls again),
/// `Aborted` is the injected-crash hook, anything else is fatal.
fn run_shard(
    connection: &mut Connection,
    config: &WorkerConfig,
    retry: RetryPolicy,
    lease: &Lease,
    posted_total: &mut usize,
    metrics: Option<&WorkerMetrics>,
) -> Result<(), ServiceError> {
    let campaign = lease.spec.to_campaign();
    let scenarios = campaign.shard_scenarios(lease.shard);
    let records_path = format!("/jobs/{}/shards/{}/records", lease.job, lease.shard.index);
    let mut headers = vec![("x-worker", config.name.clone())];
    // The shard span id is a pure function of (trace id, shard index), so a
    // re-leased shard reproduces it and the server's dedup keeps one copy.
    let shard_span = lease.trace.map(|(trace_id, root)| {
        let seed = trace_id ^ (lease.shard.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (trace_id, root, SpanIdGen::derive(seed, "shard"))
    });
    if let Some((trace_id, _, _)) = shard_span {
        headers.push(("x-trace-id", id_hex(trace_id)));
    }
    let shard_start_us = spans::now_us();
    let mut failure: Option<ServiceError> = None;
    let mut executor = Executor::new(config.threads);
    if let Some(registry) = &config.metrics {
        executor = executor.with_metrics(Arc::clone(registry));
    }
    if let Some((trace_id, _, span_id)) = shard_span {
        executor = executor.with_trace(TraceContext {
            trace_id,
            parent_span: span_id,
            worker: config.name.clone(),
        });
    }
    let run = executor.run_traced(&campaign, &scenarios, &lease.completed, |record, spans| {
        if let Some(limit) = config.fail_after_records {
            if *posted_total >= limit {
                failure = Some(ServiceError::Aborted(format!(
                    "injected failure after {limit} records"
                )));
                return Err(EngineError::InvalidParameter("injected failure".into()));
            }
        }
        // One record plus its scenario's span tree per post: the spans ride
        // the same journaled ingest, so a crash either keeps both or drops
        // both, and the re-post after a lost response is deduped as a unit.
        let mut line = record.to_json().to_json();
        line.push('\n');
        for span in spans {
            line.push_str(&span.to_line());
            line.push('\n');
        }
        let response = retry_observed(&retry, metrics, config.log.as_ref(), || {
            connection
                .request("POST", &records_path, &headers, Some(&line))
                .and_then(client::expect_ok)
        });
        match response {
            Ok(_) => {
                *posted_total += 1;
                if let Some(metrics) = metrics {
                    metrics.records_posted.inc();
                }
                Ok(())
            }
            Err(error) => {
                failure = Some(error);
                Err(EngineError::InvalidParameter("record post failed".into()))
            }
        }
    });
    match run {
        Ok(_) => {
            // Close the shard span before announcing done, so the server's
            // merged stream has it by the time the root span is synthesized.
            if let Some((trace_id, root, span_id)) = shard_span {
                let span = SpanEvent::new(
                    trace_id,
                    span_id,
                    Some(root),
                    "shard",
                    SpanKind::Worker,
                    shard_start_us,
                    spans::now_us(),
                )
                .attr("job", lease.job.as_str())
                .attr("shard", lease.shard.to_string())
                .attr("worker", config.name.as_str());
                let mut line = span.to_line();
                line.push('\n');
                retry_observed(&retry, metrics, config.log.as_ref(), || {
                    connection
                        .request("POST", &records_path, &headers, Some(&line))
                        .and_then(client::expect_ok)
                })?;
            }
            retry_observed(&retry, metrics, config.log.as_ref(), || {
                connection
                    .request(
                        "POST",
                        &format!("/jobs/{}/shards/{}/done", lease.job, lease.shard.index),
                        &headers,
                        None,
                    )
                    .and_then(client::expect_ok)
            })?;
            Ok(())
        }
        Err(engine_error) => Err(match failure {
            // The sink aborted the run: surface the transport/injected error.
            Some(error) => error,
            // The scenario itself failed — a real evaluation bug, fatal.
            None => ServiceError::Engine(engine_error),
        }),
    }
}

/// The worker main loop: poll `addr` for shard leases and run them until
/// the server is drained (with [`WorkerConfig::exit_when_drained`]) or the
/// process is killed. All traffic shares one keep-alive connection;
/// transient transport failures retry per [`WorkerConfig::retry`], so the
/// loop survives a server restart shorter than its retry budget.
///
/// # Errors
///
/// Returns transport errors once the retry budget against an unreachable
/// server is exhausted, protocol errors (including a campaign-fingerprint
/// mismatch), scenario-evaluation failures, and [`ServiceError::Aborted`]
/// from the injected-crash hook. A *lost lease* (HTTP 409) is not an error:
/// the shard was re-leased to a healthier worker, so this one abandons it
/// and polls on.
pub fn run_worker(addr: &str, config: &WorkerConfig) -> Result<WorkerReport, ServiceError> {
    let result = run_worker_loop(addr, config);
    // Log the fatal exit here rather than at each early return, so every
    // error path (retry budget exhausted, protocol mismatch, engine
    // failure) leaves one last line explaining why the worker is gone.
    if let Err(error) = &result {
        worker_log(config.log.as_ref(), LogLevel::Error, || {
            LogEvent::new(LogLevel::Error, "worker", "worker failed")
                .attr("error", error.to_string())
        });
    }
    result
}

fn run_worker_loop(addr: &str, config: &WorkerConfig) -> Result<WorkerReport, ServiceError> {
    let mut report = WorkerReport::default();
    let retry = config.retry.seeded_for(&config.name);
    let mut connection = Connection::new(addr);
    let metrics = config.metrics.as_deref().map(WorkerMetrics::new);
    // Time-to-lease starts when the worker begins looking for work and
    // spans idle polls, so the histogram measures how long work was waited
    // for, not how fast one HTTP round-trip is.
    let mut wait_start = Instant::now();
    // Snapshot shipping state: `metrics_dirty` means the registry holds
    // work the server has not seen (starts true so the first poll announces
    // the worker); `flush_metrics` forces the next poll to carry a snapshot
    // regardless of the throttle (set before a drained exit).
    let mut metrics_dirty = true;
    let mut flush_metrics = false;
    let mut last_snapshot: Option<Instant> = None;
    loop {
        let mut fields = vec![("worker".to_string(), JsonValue::from(config.name.as_str()))];
        let mut snapshot_sent = false;
        if let Some(registry) = &config.metrics {
            // Piggyback the cumulative snapshot on the lease poll (the
            // server keeps the latest per worker and merges at scrape
            // time) — but only when there is unshipped work and the
            // throttle allows, or a pre-exit flush demands it.
            let throttle_open = last_snapshot
                .is_none_or(|sent| sent.elapsed() >= Duration::from_millis(METRICS_PIGGYBACK_MS));
            if flush_metrics || (metrics_dirty && throttle_open) {
                fields.push(("metrics".to_string(), registry.snapshot().to_json()));
                snapshot_sent = true;
            }
        }
        let lease_request = JsonValue::object(fields);
        let response = retry_observed(&retry, metrics.as_ref(), config.log.as_ref(), || {
            connection.post_json("/lease", &lease_request)
        })?;
        if snapshot_sent {
            last_snapshot = Some(Instant::now());
            metrics_dirty = false;
            flush_metrics = false;
        }
        if let Some(lease_value) = response.get("lease") {
            let lease = parse_lease(lease_value)?;
            let trace_id = lease.trace.map_or(0, |(trace_id, _)| trace_id);
            worker_log(config.log.as_ref(), LogLevel::Debug, || {
                LogEvent::new(LogLevel::Debug, "worker", "lease acquired")
                    .trace(trace_id)
                    .attr("job", lease.job.as_str())
                    .attr("shard", lease.shard.to_string())
            });
            metrics_dirty = true;
            let shard_clock = Instant::now();
            if let Some(metrics) = &metrics {
                metrics.lease_wait.record_duration(wait_start.elapsed());
            }
            match run_shard(
                &mut connection,
                config,
                retry,
                &lease,
                &mut report.records_posted,
                metrics.as_ref(),
            ) {
                Ok(()) => {
                    report.shards_completed += 1;
                    if let Some(metrics) = &metrics {
                        metrics.shards_completed.inc();
                        metrics.shard_seconds.record_duration(shard_clock.elapsed());
                    }
                    worker_log(config.log.as_ref(), LogLevel::Info, || {
                        LogEvent::new(LogLevel::Info, "worker", "shard completed")
                            .trace(trace_id)
                            .attr("job", lease.job.as_str())
                            .attr("shard", lease.shard.to_string())
                    });
                    wait_start = Instant::now();
                }
                Err(ServiceError::Http { status: 409, .. }) => {
                    // Lease lost: our records so far are (deduped) on the
                    // server, the shard belongs to someone else now.
                    if let Some(metrics) = &metrics {
                        metrics.leases_lost.inc();
                    }
                    worker_log(config.log.as_ref(), LogLevel::Warn, || {
                        LogEvent::new(LogLevel::Warn, "worker", "lease lost")
                            .trace(trace_id)
                            .attr("job", lease.job.as_str())
                            .attr("shard", lease.shard.to_string())
                    });
                    wait_start = Instant::now();
                    continue;
                }
                // An injected crash must look like one: propagate.
                Err(error) => return Err(error),
            }
        } else {
            report.idle_polls += 1;
            if let Some(metrics) = &metrics {
                metrics.idle_polls.inc();
            }
            let drained = response
                .get("drained")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false);
            if drained && config.exit_when_drained {
                if config.metrics.is_some() && metrics_dirty {
                    // The registry holds work the server has not seen;
                    // flush it on one more poll so the scrape ends exact,
                    // then exit on the next drained answer.
                    flush_metrics = true;
                    continue;
                }
                worker_log(config.log.as_ref(), LogLevel::Info, || {
                    LogEvent::new(LogLevel::Info, "worker", "drained; exiting")
                        .attr("shards", report.shards_completed.to_string())
                        .attr("records", report.records_posted.to_string())
                });
                return Ok(report);
            }
            std::thread::sleep(Duration::from_millis(config.poll_ms.max(1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_parsing_validates_shape_and_fingerprint() {
        let spec = CampaignSpec::default();
        let mut fields = vec![
            ("job".to_string(), JsonValue::from("j000001")),
            ("shard".to_string(), JsonValue::from("0/2")),
            ("spec".to_string(), spec.to_json()),
            (
                "fingerprint".to_string(),
                JsonValue::from(spec.fingerprint().as_str()),
            ),
            (
                "completed_ids".to_string(),
                JsonValue::Array(vec![JsonValue::from(0usize), JsonValue::from(2usize)]),
            ),
            ("ttl_ms".to_string(), JsonValue::from(1000usize)),
        ];
        let lease = parse_lease(&JsonValue::object(fields.clone())).expect("valid lease");
        assert_eq!(lease.job, "j000001");
        assert_eq!((lease.shard.index, lease.shard.count), (0, 2));
        assert_eq!(lease.completed.iter().copied().collect::<Vec<_>>(), [0, 2]);

        // A fingerprint that does not match the spec is refused.
        fields[3] = ("fingerprint".to_string(), JsonValue::from("deadbeef"));
        let error = parse_lease(&JsonValue::object(fields.clone())).expect_err("mismatch");
        assert!(error.to_string().contains("fingerprint"), "{error}");

        // Missing fields are named.
        let error = parse_lease(&JsonValue::object(vec![])).expect_err("empty");
        assert!(error.to_string().contains("job"), "{error}");
    }

    /// A hostile or corrupted server must never panic the worker: every
    /// malformed lease body comes back as [`ServiceError::Protocol`]
    /// (fatal, not retried), whatever shape the garbage takes.
    #[test]
    fn hostile_lease_bodies_are_protocol_errors_never_panics() {
        let spec = CampaignSpec::default();
        let good = |name: &str| -> JsonValue {
            match name {
                "job" => JsonValue::from("j000001"),
                "shard" => JsonValue::from("0/2"),
                "spec" => spec.to_json(),
                "fingerprint" => JsonValue::from(spec.fingerprint().as_str()),
                _ => JsonValue::Array(vec![JsonValue::from(0usize)]),
            }
        };
        let body = |field: &str, value: JsonValue| {
            JsonValue::object(
                ["job", "shard", "spec", "fingerprint", "completed_ids"]
                    .iter()
                    .map(|name| {
                        let filled = if *name == field {
                            value.clone()
                        } else {
                            good(name)
                        };
                        ((*name).to_string(), filled)
                    }),
            )
        };
        let hostile = [
            body("job", JsonValue::from(42usize)),
            body("shard", JsonValue::from("not-a-shard")),
            body("shard", JsonValue::from("2/2")),
            body("shard", JsonValue::from("0/0")),
            body("shard", JsonValue::from("-1/2")),
            body("spec", JsonValue::from("{}")),
            body("spec", JsonValue::object(vec![])),
            body("fingerprint", JsonValue::Null),
            body("completed_ids", JsonValue::from("0,2")),
            body(
                "completed_ids",
                JsonValue::Array(vec![JsonValue::from("zero")]),
            ),
            body("completed_ids", JsonValue::Array(vec![JsonValue::Null])),
            JsonValue::Array(vec![]),
            JsonValue::from("lease"),
            JsonValue::Null,
        ];
        for value in hostile {
            let error = parse_lease(&value).expect_err(&value.to_json());
            assert!(
                matches!(error, ServiceError::Protocol(_)),
                "{} must be Protocol, got {error}",
                value.to_json()
            );
        }
        // A valid body with hostile *optional* trace fields still parses —
        // unparsable trace ids mean "untraced", never a crash.
        let mut fields: Vec<(String, JsonValue)> = ["job", "shard", "spec", "fingerprint"]
            .iter()
            .map(|name| ((*name).to_string(), good(name)))
            .collect();
        fields.push(("completed_ids".to_string(), JsonValue::Array(vec![])));
        fields.push(("trace_id".to_string(), JsonValue::from("not-hex")));
        fields.push(("root_span".to_string(), JsonValue::from(1.5f64)));
        let lease = parse_lease(&JsonValue::object(fields)).expect("hostile trace is optional");
        assert!(lease.trace.is_none());
    }

    #[test]
    fn default_config_names_include_the_pid() {
        let config = WorkerConfig::default();
        assert!(config.name.starts_with("worker-"));
        assert_eq!(config.threads, 1);
        assert!(!config.exit_when_drained);
        assert_eq!(config.retry.max_attempts, 10);
    }
}
