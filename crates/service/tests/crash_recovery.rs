//! Crash-safe campaign service, pinned end-to-end over real sockets.
//!
//! The restart-equivalence contract: for a journaled server, **killing the
//! server (and any workers) at an arbitrary point and restarting on the
//! same journal and port yields the exact record set of an uninterrupted
//! in-process `Executor` run** — no duplicates, no drops, byte-identical
//! lines. Three interleavings are pinned:
//!
//! * killed worker *and* killed server mid-shard, fresh worker after the
//!   restart drains the replayed job;
//! * a surviving worker rides out the server restart through its retry
//!   policy alone (connection refused while down, then back to work);
//! * record paging (`tats submit --wait`'s loop) resumes from
//!   `x-next-from` across a restart without re-reading or skipping lines.
//!
//! Kills use [`ServiceHandle::abort`] — the in-process `kill -9`: the
//! journal is sealed mid-flight, connections drop without responses, and
//! the restarted server replays whatever made it to disk. The CI smoke
//! test does the same dance with real processes and a real `kill -9`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use tats_core::Policy;
use tats_engine::{Campaign, CampaignSpec, Effort, Executor, FlowKind};
use tats_service::{
    client, journal, run_worker, RetryPolicy, Service, ServiceConfig, ServiceError, WorkerConfig,
};
use tats_taskgraph::Benchmark;
use tats_trace::{jsonl, JsonValue};

/// A small but multi-policy campaign: 1 benchmark x platform x 5 policies x
/// 2 seeds = 10 scenarios.
fn spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec![Benchmark::Bm1],
        flows: vec![FlowKind::Platform],
        policies: Policy::ALL.to_vec(),
        solvers: vec![None],
        seeds: vec![0, 1],
        grid_resolution: (16, 16),
        effort: Effort::Fast,
    }
}

/// JSONL lines of the uninterrupted in-process run, in scenario-id order —
/// the byte-identical ground truth every restart scenario must reproduce.
fn in_process_reference(spec: &CampaignSpec) -> Vec<String> {
    let campaign: Campaign = spec.to_campaign();
    let scenarios = campaign.scenarios();
    Executor::new(1)
        .run(&campaign, &scenarios, &BTreeSet::new(), |_| Ok(()))
        .expect("in-process run")
        .records
        .iter()
        .map(|record| record.to_json().to_json())
        .collect()
}

fn journal_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tats_crash_recovery_{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

fn journaled_config(path: &Path, lease_ttl_ms: u64) -> ServiceConfig {
    ServiceConfig {
        lease_ttl_ms,
        journal: Some(path.to_path_buf()),
        ..ServiceConfig::default()
    }
}

/// A fast retry policy for tests: rides out a couple of seconds of
/// downtime without stretching the suite.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 40,
        base_delay_ms: 5,
        max_delay_ms: 100,
        jitter_seed: 0xC0FFEE,
    }
}

fn submit(addr: &str, spec: &CampaignSpec, shards: usize) -> String {
    let response = client::post_json(
        addr,
        "/jobs",
        &JsonValue::object(vec![
            ("spec".to_string(), spec.to_json()),
            ("shards".to_string(), JsonValue::from(shards)),
        ]),
    )
    .expect("submit");
    response
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("job id")
        .to_string()
}

fn fetch_sorted_records(addr: &str, job: &str) -> Vec<String> {
    let response = client::get(addr, &format!("/jobs/{job}/records")).expect("records");
    let mut lines: Vec<String> = response.body.lines().map(str::to_string).collect();
    lines.sort_by_key(|line| jsonl::line_id(line));
    lines
}

#[test]
fn killed_worker_and_killed_server_restart_to_byte_identical_records() {
    let reference = in_process_reference(&spec());
    let path = journal_path("kill_both");
    let config = journaled_config(&path, 200);
    let server = Service::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr = server.addr_string();
    let job = submit(&addr, &spec(), 1); // one shard: both kills land mid-shard

    // The worker crashes after streaming 3 of the 10 records...
    let error = run_worker(
        &addr,
        &WorkerConfig {
            name: "crash-w1".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            fail_after_records: Some(3),
            ..WorkerConfig::default()
        },
    )
    .expect_err("injected crash");
    assert!(matches!(error, ServiceError::Aborted(_)), "{error}");
    // ...and the server is killed right after.
    server.abort();

    // Restart on the same journal and the same port.
    let server = Service::bind(&addr, config).expect("rebind");
    let ready = client::get(&addr, "/readyz").expect("readyz");
    assert!(ready.body.contains("\"ready\":true"), "{}", ready.body);
    assert!(ready.body.contains("\"replayed_jobs\":1"), "{}", ready.body);
    assert!(
        ready.body.contains("\"replayed_records\":3"),
        "{}",
        ready.body
    );
    assert!(ready.body.contains("\"leases_reset\":1"), "{}", ready.body);

    // A fresh worker resumes the replayed shard from its completed ids and
    // drains the job.
    let report = run_worker(
        &addr,
        &WorkerConfig {
            name: "crash-w2".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            ..WorkerConfig::default()
        },
    )
    .expect("recovery worker");
    assert_eq!(
        report.records_posted, 7,
        "only the 7 missing records re-run"
    );
    assert_eq!(
        fetch_sorted_records(&addr, &job),
        reference,
        "restart equivalence: records must be byte-identical to the \
         uninterrupted in-process run"
    );
    server.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn surviving_worker_rides_out_a_server_restart() {
    let reference = in_process_reference(&spec());
    let path = journal_path("survivor");
    let config = journaled_config(&path, 5_000);
    let server = Service::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr = server.addr_string();
    let job = submit(&addr, &spec(), 2);

    // A worker that must outlive the server: its retry policy absorbs the
    // dropped keep-alive stream, the connection-refused window while the
    // server is down, and any 503s while the replacement warms up.
    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || {
        run_worker(
            &worker_addr,
            &WorkerConfig {
                name: "survivor".to_string(),
                poll_ms: 10,
                exit_when_drained: true,
                retry: fast_retry(),
                ..WorkerConfig::default()
            },
        )
    });

    // Let the worker make some progress, then kill the server under it.
    loop {
        let response = client::get(&addr, &format!("/jobs/{job}/records")).expect("poll");
        if !response.body.is_empty() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    server.abort();
    let server = Service::bind(&addr, config).expect("rebind");

    let report = worker
        .join()
        .expect("join")
        .expect("the worker must survive the restart through retries");
    assert!(report.records_posted >= 7, "report: {report:?}");
    assert_eq!(
        fetch_sorted_records(&addr, &job),
        reference,
        "no record duplicated or dropped across the restart"
    );
    server.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn record_paging_resumes_from_x_next_from_across_a_restart() {
    // The `tats submit --wait` loop: page records with `?from=k`, carry the
    // `x-next-from` header forward, retry transient failures — and a server
    // restart in the middle must neither re-deliver nor skip a line.
    let reference = in_process_reference(&spec());
    let path = journal_path("paging");
    let config = journaled_config(&path, 200);
    let server = Service::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr = server.addr_string();
    let job = submit(&addr, &spec(), 1);

    // First leg: a worker streams 3 records, then dies.
    run_worker(
        &addr,
        &WorkerConfig {
            name: "pager-w1".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            fail_after_records: Some(3),
            ..WorkerConfig::default()
        },
    )
    .expect_err("injected crash");
    let mut connection = client::Connection::new(&addr);
    let mut collected: Vec<String> = Vec::new();
    let mut from = 0usize;
    let page = connection
        .get(&format!("/jobs/{job}/records?from={from}"))
        .expect("first page");
    collected.extend(page.body.lines().map(str::to_string));
    from = page
        .header("x-next-from")
        .and_then(|v| v.parse().ok())
        .expect("next-from");
    assert_eq!(from, 3);

    // The server dies and comes back on the same journal; the poll loop
    // (same keep-alive connection, now stale) resumes from `from=3`.
    server.abort();
    let server = Service::bind(&addr, config).expect("rebind");
    let report = run_worker(
        &addr,
        &WorkerConfig {
            name: "pager-w2".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            ..WorkerConfig::default()
        },
    )
    .expect("drain");
    assert_eq!(report.records_posted, 7);

    let retry = fast_retry();
    loop {
        let page = retry
            .run(|| connection.get(&format!("/jobs/{job}/records?from={from}")))
            .expect("page");
        collected.extend(page.body.lines().map(str::to_string));
        from = page
            .header("x-next-from")
            .and_then(|v| v.parse().ok())
            .expect("next-from");
        let status = retry
            .run(|| connection.get(&format!("/jobs/{job}")))
            .expect("status");
        if status.body.contains("\"state\":\"done\"") && page.body.is_empty() {
            break;
        }
    }
    assert_eq!(collected.len(), reference.len(), "no dup, no drop");
    collected.sort_by_key(|line| jsonl::line_id(line));
    assert_eq!(collected, reference);
    server.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn double_crash_during_compaction_keeps_the_old_journal_authoritative() {
    // Crash #1 lands *inside* a compaction: the staging snapshot is on
    // disk (fsynced, even) but the rename never happened. The restart must
    // replay the old journal and ignore the orphaned staging file; a
    // re-triggered compaction must converge; and crash #2 right after it
    // must restart from the snapshot — with the final record set still
    // byte-identical to the uninterrupted in-process run.
    let reference = in_process_reference(&spec());
    let path = journal_path("compaction_kill");
    let config = journaled_config(&path, 200);
    let server = Service::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr = server.addr_string();
    let job = submit(&addr, &spec(), 1);
    run_worker(
        &addr,
        &WorkerConfig {
            name: "compact-w1".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            fail_after_records: Some(3),
            ..WorkerConfig::default()
        },
    )
    .expect_err("injected crash");
    server.abort();

    // The dead incarnation got as far as writing a complete staging
    // snapshot — of *empty* state, so if replay ever trusted it the job
    // would vanish and every assertion below would fail loudly.
    let staging = journal::compaction_path(&path);
    std::fs::write(
        &staging,
        "{\"event\":\"snapshot\",\"state\":{\"next_job\":1,\"lease_cursor\":{},\"jobs\":[]}}\n",
    )
    .expect("staging");

    let server = Service::bind(&addr, config.clone()).expect("rebind");
    let ready = client::get(&addr, "/readyz").expect("readyz");
    assert!(
        ready.body.contains("\"replayed_snapshots\":0"),
        "the staging file must not be replayed: {}",
        ready.body
    );
    assert!(ready.body.contains("\"replayed_jobs\":1"), "{}", ready.body);
    assert!(
        ready.body.contains("\"replayed_records\":3"),
        "{}",
        ready.body
    );

    // Re-trigger the compaction: it overwrites the orphan and converges.
    client::post_json(&addr, "/compact", &JsonValue::object(vec![])).expect("compact");
    assert!(!staging.exists(), "staging renamed over the journal");
    let text = std::fs::read_to_string(&path).expect("journal");
    assert_eq!(text.lines().count(), 1, "{text}");

    // Crash #2, right after the compaction.
    server.abort();
    let server = Service::bind(&addr, config).expect("second rebind");
    let ready = client::get(&addr, "/readyz").expect("readyz");
    assert!(
        ready.body.contains("\"replayed_snapshots\":1"),
        "{}",
        ready.body
    );
    assert!(
        ready.body.contains("\"replayed_records\":3"),
        "{}",
        ready.body
    );
    let report = run_worker(
        &addr,
        &WorkerConfig {
            name: "compact-w2".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            ..WorkerConfig::default()
        },
    )
    .expect("drain");
    assert_eq!(report.records_posted, 7, "only the missing records re-run");
    assert_eq!(
        fetch_sorted_records(&addr, &job),
        reference,
        "restart equivalence holds across a killed compaction"
    );
    server.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_corrupt_journal_fails_the_boot() {
    let path = journal_path("corrupt_boot");
    // A structurally complete but semantically impossible event: ingest
    // into a job that was never submitted.
    std::fs::write(
        &path,
        "{\"event\":\"ingest\",\"now_ms\":1,\"job\":\"j000009\",\"shard\":0,\
         \"worker\":\"w\",\"body\":\"x\"}\n",
    )
    .expect("write");
    let error = Service::bind("127.0.0.1:0", journaled_config(&path, 200)).expect_err("boot");
    assert!(
        matches!(&error, ServiceError::Protocol(message) if message.contains("journal")),
        "{error}"
    );
    let _ = std::fs::remove_file(&path);
}
