//! The service's determinism contract, pinned end-to-end over real
//! sockets:
//!
//! * 1 server + k workers produce the record set of a single in-process
//!   `Executor` run of the same `CampaignSpec`;
//! * a worker killed mid-shard loses nothing: after its lease expires the
//!   shard is re-leased with the completed ids, the replacement worker
//!   resumes (skipping what was streamed), and the final record set is
//!   still identical — no duplicates, no drops;
//! * the server-side summary equals the summary an in-process run
//!   aggregates.

use std::collections::BTreeSet;

use tats_core::Policy;
use tats_engine::{Campaign, CampaignSpec, Effort, Executor, FlowKind, Summary};
use tats_service::{client, run_worker, Service, ServiceConfig, WorkerConfig};
use tats_taskgraph::Benchmark;
use tats_trace::{jsonl, JsonValue};

/// A small but multi-policy campaign: 1 benchmark x platform x 5 policies x
/// 2 seeds = 10 scenarios.
fn spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec![Benchmark::Bm1],
        flows: vec![FlowKind::Platform],
        policies: Policy::ALL.to_vec(),
        solvers: vec![None],
        seeds: vec![0, 1],
        grid_resolution: (16, 16),
        effort: Effort::Fast,
    }
}

/// The in-process ground truth: JSONL lines of a single `Executor` run, in
/// scenario-id order, plus the aggregated summary.
fn in_process_reference(spec: &CampaignSpec) -> (Vec<String>, Summary) {
    let campaign: Campaign = spec.to_campaign();
    let scenarios = campaign.scenarios();
    let mut summary = Summary::new();
    let run = Executor::new(1)
        .run(&campaign, &scenarios, &BTreeSet::new(), |record| {
            summary.record(record);
            Ok(())
        })
        .expect("in-process run");
    let lines = run
        .records
        .iter()
        .map(|record| record.to_json().to_json())
        .collect();
    (lines, summary)
}

fn submit(addr: &str, spec: &CampaignSpec, shards: usize) -> String {
    let response = client::post_json(
        addr,
        "/jobs",
        &JsonValue::object(vec![
            ("spec".to_string(), spec.to_json()),
            ("shards".to_string(), JsonValue::from(shards)),
        ]),
    )
    .expect("submit");
    response
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("job id")
        .to_string()
}

/// Fetches the job's full record stream and returns the lines sorted by
/// scenario id.
fn fetch_sorted_records(addr: &str, job: &str) -> Vec<String> {
    let response = client::get(addr, &format!("/jobs/{job}/records")).expect("records");
    let mut lines: Vec<String> = response.body.lines().map(str::to_string).collect();
    lines.sort_by_key(|line| jsonl::line_id(line));
    lines
}

#[test]
fn one_server_k_workers_match_in_process_batch() {
    let (reference, reference_summary) = in_process_reference(&spec());
    let server = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.addr_string();
    let job = submit(&addr, &spec(), 4);

    // Two workers race for the four shards.
    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|index| {
                let addr = addr.clone();
                scope.spawn(move || {
                    run_worker(
                        &addr,
                        &WorkerConfig {
                            name: format!("equivalence-w{index}"),
                            poll_ms: 10,
                            exit_when_drained: true,
                            ..WorkerConfig::default()
                        },
                    )
                    .expect("worker")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // Every shard was completed by someone, and the union of the workers'
    // streams is the full campaign.
    assert_eq!(reports.iter().map(|r| r.shards_completed).sum::<usize>(), 4);
    assert_eq!(
        reports.iter().map(|r| r.records_posted).sum::<usize>(),
        reference.len()
    );

    let status = client::get(&addr, &format!("/jobs/{job}")).expect("status");
    let status = JsonValue::parse(&status.body).expect("status json");
    assert_eq!(
        status.get("state").and_then(JsonValue::as_str),
        Some("done")
    );

    // The distributed record set is byte-identical to the in-process run.
    assert_eq!(fetch_sorted_records(&addr, &job), reference);

    // The server-side aggregate equals the in-process summary. The *record
    // set* is byte-identical (asserted above); the aggregate's means are
    // folded in arrival order, which races between workers, so the sums may
    // differ in the last ulp — compare numerically, not textually.
    let summary = client::get(&addr, &format!("/jobs/{job}/summary")).expect("summary");
    let summary = JsonValue::parse(&summary.body).expect("summary json");
    assert_json_close(
        summary.get("summary").expect("summary field"),
        &reference_summary.to_json(),
    );

    server.stop();
}

/// Structural equality with a relative tolerance on numbers: the summary's
/// float sums depend on record arrival order, which is racy across workers.
fn assert_json_close(got: &JsonValue, want: &JsonValue) {
    match (got, want) {
        (JsonValue::Number(a), JsonValue::Number(b)) => {
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!((a - b).abs() <= 1e-9 * scale, "{a} vs {b}");
        }
        (JsonValue::Array(a), JsonValue::Array(b)) => {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_json_close(x, y);
            }
        }
        (JsonValue::Object(a), JsonValue::Object(b)) => {
            assert_eq!(a.keys().collect::<Vec<_>>(), b.keys().collect::<Vec<_>>());
            for (key, x) in a {
                assert_json_close(x, &b[key]);
            }
        }
        (a, b) => assert_eq!(a, b),
    }
}

#[test]
fn killed_worker_is_re_leased_and_resumed_without_duplicates() {
    let (reference, _) = in_process_reference(&spec());
    // Short TTL so the dead worker's shard becomes leasable quickly.
    let server = Service::bind(
        "127.0.0.1:0",
        ServiceConfig {
            lease_ttl_ms: 200,
            ..ServiceConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr_string();
    let job = submit(&addr, &spec(), 1); // one shard: the kill is mid-shard

    // A worker that dies after streaming 3 of the 10 records.
    let error = run_worker(
        &addr,
        &WorkerConfig {
            name: "doomed".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            fail_after_records: Some(3),
            ..WorkerConfig::default()
        },
    )
    .expect_err("injected crash");
    assert!(error.to_string().contains("injected"), "{error}");

    // Its partial progress is on the server; the job is not done and the
    // shard is still leased (the lease has not expired yet).
    let status = client::get(&addr, &format!("/jobs/{job}")).expect("status");
    let status = JsonValue::parse(&status.body).expect("json");
    assert_eq!(
        status.get("records").and_then(JsonValue::as_u64),
        Some(3),
        "{status}"
    );
    assert_eq!(
        status.get("state").and_then(JsonValue::as_str),
        Some("running")
    );

    // A replacement worker polls until the lease expires, re-leases the
    // shard with the 3 completed ids, and finishes the remaining 7.
    let report = run_worker(
        &addr,
        &WorkerConfig {
            name: "recovery".to_string(),
            poll_ms: 25,
            exit_when_drained: true,
            ..WorkerConfig::default()
        },
    )
    .expect("recovery worker");
    assert_eq!(report.shards_completed, 1);
    assert_eq!(
        report.records_posted,
        reference.len() - 3,
        "the resumed shard must skip the already-streamed records"
    );

    // No duplicates, no drops: the record set is exactly the in-process
    // run's.
    assert_eq!(fetch_sorted_records(&addr, &job), reference);
    let status = client::get(&addr, &format!("/jobs/{job}")).expect("status");
    assert!(
        status.body.contains("\"state\":\"done\""),
        "{}",
        status.body
    );

    server.stop();
}

#[test]
fn fleet_metrics_surface_on_the_server_scrape_and_progress_endpoint() {
    let server = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.addr_string();
    let job = submit(&addr, &spec(), 2);
    let report = run_worker(
        &addr,
        &WorkerConfig {
            name: "observed".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            ..WorkerConfig::default()
        },
    )
    .expect("worker");
    assert_eq!(report.records_posted, 10);

    // The drained poll that exited the worker carried its final snapshot,
    // so the server-side scrape reports the whole fleet: server-side
    // request/lease series unlabelled, worker series labelled by name.
    let metrics = client::get(&addr, "/metrics").expect("metrics");
    let body = &metrics.body;
    assert!(
        body.contains("# TYPE http_request_seconds histogram"),
        "{body}"
    );
    assert!(
        body.contains(
            "http_request_seconds_count{endpoint=\"POST /jobs/{id}/shards/{i}/records\"} 10"
        ),
        "{body}"
    );
    assert!(body.contains("leases_granted_total 2"), "{body}");
    assert!(
        body.contains("worker_records_posted_total{worker=\"observed\"} 10"),
        "{body}"
    );
    assert!(
        body.contains("worker_shards_completed_total{worker=\"observed\"} 2"),
        "{body}"
    );
    // The engine's own instrumentation (phase spans, thermal cache) rides
    // the same snapshot: 10 scenarios ran, and the geometry-keyed cache
    // saw exactly one miss per executor run (one shared platform geometry).
    assert!(
        body.contains("engine_scenarios_completed_total{worker=\"observed\"} 10"),
        "{body}"
    );
    assert!(
        body.contains("engine_scenario_seconds_count{worker=\"observed\"} 10"),
        "{body}"
    );
    assert!(
        body.contains("engine_cache_misses_total{worker=\"observed\"} 2"),
        "{body}"
    );
    assert!(
        body.contains("engine_cache_hits_total{worker=\"observed\"} 8"),
        "{body}"
    );
    assert!(
        body.contains("engine_phase_seconds_count{phase=\"scheduling\",worker=\"observed\"} 10"),
        "{body}"
    );

    // The progress endpoint agrees with the finished job.
    let progress = client::get(&addr, &format!("/jobs/{job}/progress")).expect("progress");
    let progress = JsonValue::parse(&progress.body).expect("progress json");
    assert_eq!(
        progress.get("state").and_then(JsonValue::as_str),
        Some("done")
    );
    assert_eq!(progress.get("done").and_then(JsonValue::as_u64), Some(10));
    assert_eq!(progress.get("total").and_then(JsonValue::as_u64), Some(10));
    assert_eq!(progress.get("eta_s").and_then(JsonValue::as_f64), Some(0.0));

    // The enriched workers view names the worker with a lifetime rate.
    let workers = client::get(&addr, "/workers").expect("workers");
    assert!(
        workers.body.contains("\"last_seen_age_ms\""),
        "{}",
        workers.body
    );
    assert!(
        workers.body.contains("\"records_per_sec\""),
        "{}",
        workers.body
    );

    server.stop();
}

#[test]
fn incremental_record_polling_sees_the_stream_grow() {
    let server = Service::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.addr_string();
    let job = submit(&addr, &spec(), 2);
    run_worker(
        &addr,
        &WorkerConfig {
            name: "streamer".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            ..WorkerConfig::default()
        },
    )
    .expect("worker");

    // Page through the stream with ?from=: two fetches cover it exactly.
    let first = client::get(&addr, &format!("/jobs/{job}/records?from=0")).expect("page 1");
    let next: usize = first
        .header("x-next-from")
        .and_then(|value| value.parse().ok())
        .expect("next-from header");
    assert_eq!(next, first.body.lines().count());
    assert_eq!(next, 10);
    let second = client::get(&addr, &format!("/jobs/{job}/records?from={next}")).expect("page 2");
    assert!(second.body.is_empty());
    assert_eq!(
        second.header("x-next-from"),
        Some(next.to_string().as_str())
    );

    // Workers list reflects the streamer.
    let workers = client::get(&addr, "/workers").expect("workers");
    assert!(
        workers.body.contains("\"name\":\"streamer\""),
        "{}",
        workers.body
    );
    assert!(workers.body.contains("\"records\":10"), "{}", workers.body);

    server.stop();
}
