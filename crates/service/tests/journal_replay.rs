//! Replay ≡ live, pinned.
//!
//! The journal records the *inputs* of every successful registry mutation
//! (with the live server's `now_ms`), and replay re-applies them through
//! the same public `Registry` methods — so for any interleaving of
//! submit/lease/ingest/done/reset events, replaying the journal must
//! reconstruct the live registry's replayable state exactly. This suite
//! pins that equivalence:
//!
//! * unit cases for the full lifecycle, the crash-truncated final line,
//!   the journaled lease reset (the double-crash scenario) and the sealed
//!   (aborted) registry;
//! * a property test driving randomised interleavings — including invalid
//!   requests, expired leases and zombie writers — and checking
//!   `snapshot(replay(journal)) == snapshot(live)` after every run, with
//!   and without a partial trailing line.
//!
//! Run with a larger budget via `PROPTEST_CASES=<n>`.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tats_core::Policy;
use tats_engine::{CampaignSpec, Effort, Executor, FlowKind};
use tats_service::journal::{self, compaction_path, JournaledRegistry};
use tats_service::{ServiceError, Submission};
use tats_taskgraph::Benchmark;
use tats_trace::JsonValue;

const TTL: u64 = 100;

/// 1 benchmark x platform x 2 policies x 2 seeds = 4 scenarios.
fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec![Benchmark::Bm1],
        flows: vec![FlowKind::Platform],
        policies: vec![Policy::Baseline, Policy::ThermalAware],
        solvers: vec![None],
        seeds: vec![0, 1],
        grid_resolution: (16, 16),
        effort: Effort::Fast,
    }
}

/// The deterministic JSONL lines workers would stream for [`tiny_spec`],
/// in scenario-id order (computed once — every job uses the same spec).
fn reference_lines() -> &'static [String] {
    static LINES: OnceLock<Vec<String>> = OnceLock::new();
    LINES.get_or_init(|| {
        let campaign = tiny_spec().to_campaign();
        let scenarios = campaign.scenarios();
        Executor::new(1)
            .run(&campaign, &scenarios, &BTreeSet::new(), |_| Ok(()))
            .expect("reference run")
            .records
            .iter()
            .map(|r| r.to_json().to_json())
            .collect()
    })
}

/// A fresh journal path in the temp dir (removing any leftover file, since
/// `JournaledRegistry::open` appends).
fn journal_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tats_journal_replay_{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

fn snapshot(live: &JournaledRegistry) -> String {
    live.registry().snapshot().to_json()
}

/// Replays `path` and asserts the reconstruction matches `live` exactly.
fn assert_replay_matches(path: &std::path::Path, live: &JournaledRegistry) {
    let (replayed, _) = journal::replay(path, TTL).expect("replay");
    assert_eq!(
        replayed.snapshot().to_json(),
        snapshot(live),
        "replayed registry diverged from the live one"
    );
}

#[test]
fn full_lifecycle_replays_identically() {
    let path = journal_path("lifecycle");
    let (mut live, report) = JournaledRegistry::open(&path, TTL).expect("open");
    assert_eq!(report.events, 0);
    let lines = reference_lines();

    let status = live
        .submit(Submission::new(tiny_spec(), 2), 5)
        .expect("submit");
    let job = status
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("job id")
        .to_string();
    let lease = live.lease("w1", 10).expect("lease");
    assert!(lease.get("lease").is_some());
    // Shard 0/2 owns ids 0 and 2.
    let body = format!("{}\n{}\n", lines[0], lines[2]);
    live.ingest(&job, 0, "w1", &body, 20).expect("ingest");
    live.shard_done(&job, 0, "w1", 30).expect("done");
    live.lease("w2", 40).expect("lease 2");
    let body = format!("{}\n{}\n", lines[1], lines[3]);
    live.ingest(&job, 1, "w2", &body, 50).expect("ingest 2");
    live.shard_done(&job, 1, "w2", 60).expect("done 2");
    // An idle poll on the drained registry is *not* journaled and must not
    // disturb equivalence.
    assert!(live.lease("w3", 70).expect("idle").get("lease").is_none());

    assert_replay_matches(&path, &live);
    let (_, report) = journal::replay(&path, TTL).expect("replay");
    assert_eq!(report.events, 7, "submit + 2x(lease, ingest, done)");
    assert_eq!(report.jobs, 1);
    assert_eq!(report.records, 4);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_final_line_is_ignored_and_repaired() {
    let path = journal_path("truncated");
    let (mut live, _) = JournaledRegistry::open(&path, TTL).expect("open");
    let lines = reference_lines();
    let job = live
        .submit(Submission::new(tiny_spec(), 1), 0)
        .expect("submit")
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("job id")
        .to_string();
    live.lease("w1", 1).expect("lease");
    live.ingest(&job, 0, "w1", &lines[0], 2).expect("ingest");
    drop(live);

    // Simulate a kill mid-append: a partial ingest event on the tail. The
    // live server died before applying it (apply and journal happen
    // atomically under the state lock), so replay must ignore it.
    let clean = std::fs::read(&path).expect("read journal");
    let mut bytes = clean.clone();
    bytes.extend_from_slice(b"{\"event\":\"ingest\",\"job\":\"j0000");
    std::fs::write(&path, &bytes).expect("corrupt");
    let (replayed, report) = journal::replay(&path, TTL).expect("replay skips partial");
    assert_eq!(report.events, 3);
    assert_eq!(report.records, 1);

    // Reopening repairs the tail (so appends start on a fresh line) and
    // reconstructs the same state.
    let (reopened, report) = JournaledRegistry::open(&path, TTL).expect("reopen");
    assert_eq!(report.repaired_bytes, 30);
    assert_eq!(snapshot(&reopened), replayed.snapshot().to_json());
    assert_eq!(std::fs::read(&path).expect("repaired"), clean);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn journaled_lease_reset_keeps_double_replay_consistent() {
    // The restart sequence: replay, reset stale leases, serve. The reset
    // changes which shard the *next* lease grants, so it must itself be
    // journaled — otherwise a second crash would replay the post-restart
    // grants against un-reset state and refuse the journal.
    let path = journal_path("reset");
    let (mut live, _) = JournaledRegistry::open(&path, TTL).expect("open");
    live.submit(Submission::new(tiny_spec(), 2), 0)
        .expect("submit");
    live.lease("w1", 1).expect("lease shard 0");
    drop(live); // first crash: w1's lease is live in the journal

    let (mut restarted, report) = JournaledRegistry::open(&path, TTL).expect("restart");
    assert_eq!(report.events, 2);
    assert_eq!(restarted.reset_leases().expect("reset"), 1);
    // Post-restart, a different worker leases — and because the reset made
    // shard 0 pending again, it gets shard 0, not shard 1.
    let lease = restarted.lease("w2", 2).expect("lease");
    let shard = lease
        .get("lease")
        .and_then(|l| l.get("shard"))
        .and_then(JsonValue::as_str)
        .expect("granted");
    assert_eq!(shard, "0/2");

    // Second crash: the full journal (reset event included) must replay.
    assert_replay_matches(&path, &restarted);
    // A reset that resets nothing appends no event.
    let before = std::fs::read(&path).expect("read").len();
    drop(restarted);
    let (mut again, _) = JournaledRegistry::open(&path, TTL).expect("reopen");
    again.reset_leases().expect("reset");
    drop(again);
    let with_reset = std::fs::read(&path).expect("read").len();
    assert!(
        with_reset > before,
        "the second restart journaled its reset"
    );
    let (mut third, _) = JournaledRegistry::open(&path, TTL).expect("third");
    assert_eq!(third.reset_leases().expect("no-op reset"), 0);
    drop(third);
    assert_eq!(
        std::fs::read(&path).expect("read").len(),
        with_reset,
        "a reset that reset nothing must not append an event"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sealed_registry_refuses_every_mutation_and_writes_nothing() {
    let path = journal_path("sealed");
    let (mut live, _) = JournaledRegistry::open(&path, TTL).expect("open");
    live.submit(Submission::new(tiny_spec(), 1), 0)
        .expect("submit");
    let bytes = std::fs::read(&path).expect("read").len();
    live.seal();
    assert!(live.sealed());
    for error in [
        live.submit(Submission::new(tiny_spec(), 1), 1)
            .expect_err("submit"),
        live.lease("w1", 1).expect_err("lease"),
        live.ingest("j000001", 0, "w1", &reference_lines()[0], 1)
            .expect_err("ingest"),
        live.shard_done("j000001", 0, "w1", 1).expect_err("done"),
        live.reset_leases().expect_err("reset"),
    ] {
        assert!(
            matches!(error, ServiceError::Unavailable(_)),
            "sealed mutation must be Unavailable, got {error}"
        );
    }
    // Reads still work (the crash tests inspect sealed state), and not a
    // byte hit the journal after the seal.
    assert!(snapshot(&live).contains("j000001"));
    assert_eq!(std::fs::read(&path).expect("read").len(), bytes);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn compaction_preserves_replay_and_accepts_new_events() {
    let path = journal_path("compact");
    let (mut live, _) = JournaledRegistry::open(&path, TTL).expect("open");
    let lines = reference_lines();
    let job = live
        .submit(Submission::new(tiny_spec(), 2).for_client("ci", 1), 0)
        .expect("submit")
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("job id")
        .to_string();
    live.lease("w1", 1).expect("lease");
    live.ingest(&job, 0, "w1", &format!("{}\n{}\n", lines[0], lines[2]), 2)
        .expect("ingest");
    live.shard_done(&job, 0, "w1", 3).expect("done");

    let before = snapshot(&live);
    let report = live.compact().expect("compact");
    assert!(report.bytes_before > 0 && report.bytes_after > 0);
    let text = std::fs::read_to_string(&path).expect("journal");
    assert_eq!(text.lines().count(), 1, "{text}");
    assert!(text.contains("\"event\":\"snapshot\""), "{text}");
    assert_eq!(snapshot(&live), before, "compaction must not change state");
    let (replayed, replay_report) = journal::replay(&path, TTL).expect("replay");
    assert_eq!(replay_report.snapshots, 1);
    assert_eq!(replay_report.jobs, 1);
    assert_eq!(replay_report.records, 2);
    assert_eq!(replayed.snapshot().to_json(), before);

    // The snapshot is a fast-forward prefix: events appended after the
    // compaction replay on top of it — lease grants verified included
    // (the cursor and the live lease travel in the snapshot).
    live.lease("w2", 4).expect("lease shard 1");
    live.ingest(&job, 1, "w2", &format!("{}\n{}\n", lines[1], lines[3]), 5)
        .expect("ingest 2");
    live.shard_done(&job, 1, "w2", 6).expect("done 2");
    assert_replay_matches(&path, &live);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn killed_mid_compaction_the_old_journal_stays_authoritative() {
    // kill -9 lands after the staging snapshot is written but before the
    // rename: the journal is untouched, the staging file is garbage from a
    // dead incarnation. Replay must never read it, a restart must replay
    // the old journal, and a re-triggered compaction must converge.
    let path = journal_path("mid_compaction_kill");
    let (mut live, _) = JournaledRegistry::open(&path, TTL).expect("open");
    live.submit(Submission::new(tiny_spec(), 2).for_client("alpha", 0), 0)
        .expect("submit");
    live.lease("w1", 1).expect("lease");
    let expected = snapshot(&live);
    drop(live);

    // A complete-but-stale staging snapshot (the dead incarnation got as
    // far as fsync) and a torn partial one must both be ignored.
    let staging = compaction_path(&path);
    for garbage in [
        "{\"event\":\"snapshot\",\"state\":{\"next_job\":9,\"lease_cursor\":{},\"jobs\":[]}}\n"
            .to_string(),
        "{\"event\":\"snapshot\",\"state\":{\"next_jo".to_string(),
    ] {
        std::fs::write(&staging, &garbage).expect("staging");
        let (replayed, report) = journal::replay(&path, TTL).expect("replay");
        assert_eq!(report.snapshots, 0, "staging file must never be replayed");
        assert_eq!(replayed.snapshot().to_json(), expected);

        let (mut restarted, _) = JournaledRegistry::open(&path, TTL).expect("restart");
        assert_eq!(snapshot(&restarted), expected);
        // Re-triggered compaction overwrites the leftover staging file and
        // converges: one snapshot line, same state, staging gone.
        restarted.compact().expect("compact");
        let text = std::fs::read_to_string(&path).expect("journal");
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(!staging.exists(), "the staging file was renamed away");
        let (replayed, report) = journal::replay(&path, TTL).expect("replay compacted");
        assert_eq!(report.snapshots, 1);
        assert_eq!(replayed.snapshot().to_json(), expected);
        // Restore the pre-compaction journal for the second garbage case.
        drop(restarted);
        let _ = std::fs::remove_file(&path);
        let (mut rebuilt, _) = JournaledRegistry::open(&path, TTL).expect("rebuild");
        rebuilt
            .submit(Submission::new(tiny_spec(), 2).for_client("alpha", 0), 0)
            .expect("submit");
        rebuilt.lease("w1", 1).expect("lease");
        assert_eq!(snapshot(&rebuilt), expected);
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&staging);
}

#[test]
fn auto_compaction_triggers_on_the_event_threshold() {
    let path = journal_path("auto_compact");
    let (mut live, _) = JournaledRegistry::open(&path, TTL).expect("open");
    live.set_compact_every(Some(4));
    let lines = reference_lines();
    let job = live
        .submit(Submission::new(tiny_spec(), 2), 0)
        .expect("submit")
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("job id")
        .to_string();
    live.lease("w1", 1).expect("lease");
    live.ingest(&job, 0, "w1", &format!("{}\n{}\n", lines[0], lines[2]), 2)
        .expect("ingest");
    // Three events journaled so far; the fourth crosses the threshold and
    // folds all four into one snapshot, transparently to the caller.
    live.shard_done(&job, 0, "w1", 3).expect("done");
    let text = std::fs::read_to_string(&path).expect("journal");
    assert_eq!(text.lines().count(), 1, "{text}");
    assert!(text.contains("\"event\":\"snapshot\""), "{text}");
    assert_replay_matches(&path, &live);
    drop(live);

    // Replayed events count toward the threshold: a reopened journal that
    // is already over it compacts on the very next append.
    let (mut reopened, report) = JournaledRegistry::open(&path, TTL).expect("reopen");
    assert_eq!(report.snapshots, 1);
    reopened.set_compact_every(Some(2));
    reopened.lease("w2", 10).expect("lease shard 1");
    let text = std::fs::read_to_string(&path).expect("journal");
    assert_eq!(text.lines().count(), 1, "{text}");
    assert_replay_matches(&path, &reopened);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_lease_grants_refuse_to_replay() {
    let path = journal_path("corrupt");
    let (mut live, _) = JournaledRegistry::open(&path, TTL).expect("open");
    live.submit(Submission::new(tiny_spec(), 2), 0)
        .expect("submit");
    live.lease("w1", 1).expect("lease");
    drop(live);
    // Hand-edit the granted shard: replay re-runs the lease scan, grants
    // shard 0, sees the journal claim shard 1, and refuses the file.
    let text = std::fs::read_to_string(&path).expect("read");
    assert!(text.contains("\"shard\":0"), "{text}");
    std::fs::write(&path, text.replace("\"shard\":0", "\"shard\":1")).expect("tamper");
    let error = journal::replay(&path, TTL).expect_err("tampered journal");
    assert!(
        matches!(&error, ServiceError::Protocol(message) if message.contains("lease")),
        "{error}"
    );
    let _ = std::fs::remove_file(&path);
}

prop_compose! {
    /// A randomised schedule: an op stream seed plus its length.
    fn schedule()(seed in any::<u64>(), ops in 10usize..60) -> (u64, usize) {
        (seed, ops)
    }
}

proptest! {
    /// For arbitrary interleavings of valid and invalid operations —
    /// multiple jobs, racing workers, expired leases, zombie writers,
    /// partial batches, resets — the journal replays to the live state,
    /// with and without a crash-truncated final line.
    #[test]
    fn random_interleavings_replay_identically((seed, ops) in schedule()) {
        let path = journal_path(&format!("prop_{seed:x}"));
        let (mut live, _) = JournaledRegistry::open(&path, TTL).expect("open");
        let lines = reference_lines();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0u64;
        let mut jobs = 0usize;
        for _ in 0..ops {
            // Sometimes jump past the lease TTL so expiries interleave.
            now += [0, 1, 7, TTL + 1][rng.gen_range(0..4usize)];
            let worker = format!("w{}", rng.gen_range(0..3));
            match rng.gen_range(0..10) {
                0..2 => {
                    if jobs < 3 {
                        // Random admission metadata: the fair-lease cursor
                        // only moves on journaled grants, so mixed clients
                        // and priorities must replay exactly too.
                        let client = ["default", "alpha", "beta"][rng.gen_range(0..3usize)];
                        let priority = rng.gen_range(0..3u64);
                        let submission = Submission::new(tiny_spec(), rng.gen_range(1..3))
                            .for_client(client, priority);
                        live.submit(submission, now).expect("submit");
                        jobs += 1;
                    }
                }
                2..4 => {
                    live.lease(&worker, now).expect("lease");
                }
                4..8 => {
                    // An ingest into a random job/shard: may succeed, renew,
                    // dedup, conflict or be refused — all must replay.
                    let job = format!("j{:06}", rng.gen_range(1..4));
                    let shard = rng.gen_range(0..2);
                    let mut body = String::new();
                    for line in lines.iter().filter(|_| rng.gen_range(0..2) == 0) {
                        body.push_str(line);
                        body.push('\n');
                    }
                    let _ = live.ingest(&job, shard, &worker, &body, now);
                }
                8 => {
                    let job = format!("j{:06}", rng.gen_range(1..4));
                    let _ = live.shard_done(&job, rng.gen_range(0..2), &worker, now);
                }
                _ => {
                    live.reset_leases().expect("reset");
                }
            }
        }
        let (replayed, _) = journal::replay(&path, TTL).expect("replay");
        prop_assert_eq!(replayed.snapshot().to_json(), snapshot(&live));

        // A crash mid-append leaves a partial final line; the event was
        // never applied live, so replay must still match.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"{\"event\":\"lease\",\"now_ms\":99,\"wor");
        std::fs::write(&path, &bytes).expect("append partial");
        let (replayed, _) = journal::replay(&path, TTL).expect("replay truncated");
        prop_assert_eq!(replayed.snapshot().to_json(), snapshot(&live));

        // A leftover staging file from a compaction the process died in —
        // torn or complete — must never influence replay of the journal.
        let staging = compaction_path(&path);
        std::fs::write(&staging, b"{\"event\":\"snapshot\",\"state\":{\"next_jo")
            .expect("staging");
        let (replayed, _) = journal::replay(&path, TTL).expect("replay ignores staging");
        prop_assert_eq!(replayed.snapshot().to_json(), snapshot(&live));

        // replay(compact(j)) ≡ replay(j), for every schedule. Compaction
        // also discards the torn tail and the stale staging file above.
        let first = live.compact().expect("compact");
        let (replayed, report) = journal::replay(&path, TTL).expect("replay compacted");
        prop_assert_eq!(report.snapshots, 1);
        prop_assert_eq!(replayed.snapshot().to_json(), snapshot(&live));

        // Compaction converges: compacting a compacted journal is the
        // identity on both state and bytes.
        let second = live.compact().expect("second compact");
        prop_assert_eq!(second.bytes_before, first.bytes_after);
        prop_assert_eq!(second.bytes_after, first.bytes_after);
        let (replayed, _) = journal::replay(&path, TTL).expect("replay twice-compacted");
        prop_assert_eq!(replayed.snapshot().to_json(), snapshot(&live));

        // And a torn tail *after* a compaction is repaired the same way.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"{\"event\":\"lease\",\"now_ms\":99,\"wor");
        std::fs::write(&path, &bytes).expect("append partial");
        let (replayed, _) = journal::replay(&path, TTL).expect("replay truncated snapshot");
        prop_assert_eq!(replayed.snapshot().to_json(), snapshot(&live));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&staging);
    }
}
