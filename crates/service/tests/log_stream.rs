//! The structured-log surface over real sockets: `GET /logs` paging, the
//! crash-stability contract for journal-derived lines, `--log-file`
//! append semantics and the self-contained `GET /dashboard` page.
//!
//! The stability contract mirrors the span stream's, with one deliberate
//! carve-out: registry transition lines (`"target":"registry"`) are
//! stamped on the journaled clock and regenerate byte-for-byte on replay,
//! while lease grants and server lifecycle lines (`"target":"lease"` /
//! `"server"`) are live-only ring content and may differ or disappear
//! across a restart. Tests therefore pin only the `registry` subset.

use std::path::{Path, PathBuf};

use tats_core::Policy;
use tats_engine::{CampaignSpec, Effort, FlowKind};
use tats_service::{client, run_worker, Service, ServiceConfig, ServiceError, WorkerConfig};
use tats_taskgraph::Benchmark;
use tats_trace::log::{LogEvent, LogFilter, LogLevel};
use tats_trace::JsonValue;

/// 1 benchmark x platform x 5 policies x 2 seeds = 10 scenarios.
fn spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec![Benchmark::Bm1],
        flows: vec![FlowKind::Platform],
        policies: Policy::ALL.to_vec(),
        solvers: vec![None],
        seeds: vec![0, 1],
        grid_resolution: (16, 16),
        effort: Effort::Fast,
    }
}

fn temp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tats_log_stream_{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

/// Journaled config with an explicit debug filter: the filter must be
/// identical across incarnations for the replay-stability contract, and
/// pinning it here keeps the tests independent of `TATS_LOG`.
fn debug_config(journal: Option<&Path>) -> ServiceConfig {
    ServiceConfig {
        lease_ttl_ms: 200,
        journal: journal.map(Path::to_path_buf),
        log_filter: Some(LogFilter::at(LogLevel::Debug)),
        ..ServiceConfig::default()
    }
}

fn submit_job(addr: &str, spec: &CampaignSpec, shards: usize) -> String {
    let body = JsonValue::object(vec![
        ("spec".to_string(), spec.to_json()),
        ("shards".to_string(), JsonValue::from(shards)),
    ])
    .to_json();
    let response = client::request(addr, "POST", "/jobs", &[], Some(&body))
        .and_then(client::expect_ok)
        .expect("submit");
    JsonValue::parse(&response.body)
        .expect("submit response")
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("job id")
        .to_string()
}

fn drain_with_worker(addr: &str, name: &str) {
    run_worker(
        addr,
        &WorkerConfig {
            name: name.to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            ..WorkerConfig::default()
        },
    )
    .expect("drain");
}

/// Only the lines the journal regenerates: registry state transitions.
fn registry_lines(body: &str) -> Vec<String> {
    body.lines()
        .filter(|line| line.contains("\"target\":\"registry\""))
        .map(str::to_string)
        .collect()
}

#[test]
fn logs_endpoint_pages_like_records_and_spans() {
    let server = Service::bind("127.0.0.1:0", debug_config(None)).expect("bind");
    let addr = server.addr_string();
    submit_job(&addr, &spec(), 2);
    drain_with_worker(&addr, "log-page-w1");

    let full = client::get(&addr, "/logs").expect("logs");
    assert_eq!(
        full.header("content-type").map(str::to_lowercase),
        Some("application/jsonl".to_string())
    );
    let next: usize = full
        .header("x-next-from")
        .and_then(|value| value.parse().ok())
        .expect("x-next-from header");
    assert_eq!(next, full.body.lines().count(), "contiguous from zero");
    assert!(next > 0, "the drained campaign must have logged");

    // Every line is schema-valid and the expected transitions are present.
    for line in full.body.lines() {
        LogEvent::parse_line(line).expect("log line parses");
    }
    for needle in [
        "\"message\":\"listening\"",
        "\"message\":\"job submitted\"",
        "\"message\":\"shard leased\"",
        "\"message\":\"records ingested\"",
        "\"message\":\"shard done\"",
        "\"message\":\"job done\"",
    ] {
        assert!(
            full.body.contains(needle),
            "missing {needle}:\n{}",
            full.body
        );
    }

    // Two-chunk paging reassembles the identical stream.
    let midpoint = next / 2;
    let head = client::get(&addr, "/logs?from=0").expect("head");
    let tail = client::get(&addr, &format!("/logs?from={midpoint}")).expect("tail");
    let first_chunk: String = head
        .body
        .lines()
        .take(midpoint)
        .flat_map(|line| [line, "\n"])
        .collect();
    assert_eq!(format!("{first_chunk}{}", tail.body), full.body);

    // `from` at or past the head: empty page, header still reports the
    // next index to poll from.
    let past = client::get(&addr, &format!("/logs?from={}", usize::MAX)).expect("past");
    assert!(past.body.is_empty());
    assert_eq!(
        past.header("x-next-from").and_then(|v| v.parse().ok()),
        Some(next)
    );

    // A malformed `from` is a 400 naming the value, not a panic.
    let bad =
        client::request(&addr, "GET", "/logs?from=banana", &[], None).expect("bad from request");
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(bad.body.contains("banana"), "{}", bad.body);
    server.stop();
}

#[test]
fn registry_log_lines_are_byte_stable_across_kill_and_restart() {
    let path = temp_path("kill_restart");
    let config = debug_config(Some(&path));
    let server = Service::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr = server.addr_string();
    submit_job(&addr, &spec(), 2);

    // A worker crashes 2 records into its shard; the server is then killed
    // mid-campaign and restarted, and a fresh worker drains the rest (the
    // crashed shard is re-leased, its re-streams deduped).
    let crash = run_worker(
        &addr,
        &WorkerConfig {
            name: "log-crash-w1".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            fail_after_records: Some(2),
            ..WorkerConfig::default()
        },
    )
    .expect_err("injected crash");
    assert!(matches!(crash, ServiceError::Aborted(_)), "{crash}");
    server.abort();

    let server = Service::bind(&addr, config.clone()).expect("rebind");
    drain_with_worker(&addr, "log-crash-w2");
    let live = client::get(&addr, "/logs").expect("logs").body;
    let live_registry = registry_lines(&live);
    assert!(
        live_registry
            .iter()
            .any(|line| line.contains("\"message\":\"job done\"")),
        "campaign must have finished:\n{live}"
    );
    server.abort();

    // Restart on the finished journal: replay regenerates the registry
    // lines into the ring byte-for-byte (journaled clock, filter installed
    // before replay). Lease/server lines are live-only and exempt.
    let server = Service::bind(&addr, config).expect("second rebind");
    let replayed = client::get(&addr, "/logs").expect("logs").body;
    assert_eq!(
        live_registry,
        registry_lines(&replayed),
        "registry-target log lines must be a pure function of the journal"
    );
    server.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn log_file_tees_live_lines_but_not_replayed_ones() {
    let journal = temp_path("tee_journal");
    let log_file = temp_path("tee_log");
    let config = ServiceConfig {
        log_file: Some(log_file.clone()),
        ..debug_config(Some(&journal))
    };
    let server = Service::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr = server.addr_string();
    submit_job(&addr, &spec(), 1);
    drain_with_worker(&addr, "log-tee-w1");
    // The flush after the last served request has already run by the time
    // run_worker returns (the drained poll response was written after it).
    server.abort();

    let first = std::fs::read_to_string(&log_file).expect("log file");
    let first_registry = registry_lines(&first).len();
    assert!(
        first_registry > 0,
        "live registry lines tee to disk:\n{first}"
    );

    // Restart: replayed registry lines go to the ring only. The file gains
    // live lines (listening, journal replayed) but no registry repeats.
    let server = Service::bind(&addr, config).expect("rebind");
    let ring = client::get(&addr, "/logs").expect("logs").body;
    assert_eq!(
        registry_lines(&ring).len(),
        first_registry,
        "ring restores every replayed registry line"
    );
    server.stop();
    let second = std::fs::read_to_string(&log_file).expect("log file");
    assert_eq!(
        registry_lines(&second).len(),
        first_registry,
        "replay must not re-append registry lines to the log file:\n{second}"
    );
    assert!(
        second.contains("\"message\":\"journal replayed\""),
        "{second}"
    );
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&log_file);
}

#[test]
fn dashboard_serves_one_self_contained_html_page() {
    let server = Service::bind("127.0.0.1:0", debug_config(None)).expect("bind");
    let addr = server.addr_string();
    let job = submit_job(&addr, &spec(), 2);
    drain_with_worker(&addr, "log-dash-w1");

    let page = client::get(&addr, "/dashboard").expect("dashboard");
    assert_eq!(
        page.header("content-type").map(str::to_lowercase),
        Some("text/html; charset=utf-8".to_string())
    );
    let html = page.body;
    assert!(html.starts_with("<!doctype html>"), "{html}");
    assert!(html.contains(&job), "job row present: {html}");
    assert!(html.contains("log-dash-w1"), "worker row present: {html}");
    assert!(html.contains("100%"), "finished job shows 100%: {html}");
    // Self-contained: no external fetches of any kind — styling is inline
    // and the sparkline is an inline SVG.
    for forbidden in ["src=", "href=", "http://", "https://", "url("] {
        assert!(
            !html.contains(forbidden),
            "dashboard must not reference external resources ({forbidden}):\n{html}"
        );
    }
    // The auto-refresh meta tag is the one allowed head directive.
    assert!(html.contains("http-equiv=\"refresh\""), "{html}");
    server.stop();
}
