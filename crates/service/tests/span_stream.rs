//! Distributed-tracing determinism, pinned end-to-end over real sockets.
//!
//! The span-stream contract: the merged per-job span stream served by
//! `GET /jobs/{id}/spans` is **a pure function of the journal**. Server
//! transition spans are stamped on a synthetic clock derived from the
//! journaled submit time, worker span batches are journaled verbatim with
//! their records, and shard span ids are derived deterministically — so
//! killing the server at an arbitrary point and restarting on the same
//! journal reproduces the stream byte-for-byte, including across shard
//! re-leases after a worker crash.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use tats_core::Policy;
use tats_engine::{CampaignSpec, Effort, FlowKind};
use tats_service::{client, run_worker, Service, ServiceConfig, ServiceError, WorkerConfig};
use tats_taskgraph::Benchmark;
use tats_trace::spans::{id_hex, SpanEvent, SpanForest};
use tats_trace::JsonValue;

/// 1 benchmark x platform x 5 policies x 2 seeds = 10 scenarios.
fn spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec![Benchmark::Bm1],
        flows: vec![FlowKind::Platform],
        policies: Policy::ALL.to_vec(),
        solvers: vec![None],
        seeds: vec![0, 1],
        grid_resolution: (16, 16),
        effort: Effort::Fast,
    }
}

fn journal_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tats_span_stream_{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

fn journaled_config(path: &Path) -> ServiceConfig {
    ServiceConfig {
        lease_ttl_ms: 200,
        journal: Some(path.to_path_buf()),
        ..ServiceConfig::default()
    }
}

/// Submits a traced job: the `x-trace-id` header is what `tats submit`
/// sends, and it seeds every downstream span id.
fn submit_traced(addr: &str, spec: &CampaignSpec, shards: usize, trace_id: u64) -> String {
    let body = JsonValue::object(vec![
        ("spec".to_string(), spec.to_json()),
        ("shards".to_string(), JsonValue::from(shards)),
    ])
    .to_json();
    let response = client::request(
        addr,
        "POST",
        "/jobs",
        &[("x-trace-id", id_hex(trace_id))],
        Some(&body),
    )
    .and_then(client::expect_ok)
    .expect("submit");
    JsonValue::parse(&response.body)
        .expect("submit response")
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("job id")
        .to_string()
}

fn fetch_span_stream(addr: &str, job: &str) -> String {
    client::get(addr, &format!("/jobs/{job}/spans"))
        .expect("spans")
        .body
}

#[test]
fn merged_span_stream_is_byte_deterministic_across_kill_and_restart() {
    const TRACE_ID: u64 = 0x1234_5678_9abc_def0;
    let path = journal_path("kill_restart");
    let config = journaled_config(&path);
    let server = Service::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr = server.addr_string();
    let job = submit_traced(&addr, &spec(), 2, TRACE_ID);

    // One worker crashes 2 records into its shard, leaving a half-ingested
    // shard plus an untouched one; the server is then killed mid-campaign.
    let crash = run_worker(
        &addr,
        &WorkerConfig {
            name: "span-w1".to_string(),
            poll_ms: 10,
            exit_when_drained: true,
            fail_after_records: Some(2),
            ..WorkerConfig::default()
        },
    )
    .expect_err("injected crash");
    assert!(matches!(crash, ServiceError::Aborted(_)), "{crash}");
    server.abort();

    // Restart on the same journal + port and drain with a 2-worker fleet:
    // the crashed shard is re-leased (its deterministic span id dedups
    // against the first lease's batch), the other runs fresh.
    let server = Service::bind(&addr, config.clone()).expect("rebind");
    let fleet: Vec<_> = ["span-w2", "span-w3"]
        .into_iter()
        .map(|name| {
            let addr = addr.clone();
            let name = name.to_string();
            std::thread::spawn(move || {
                run_worker(
                    &addr,
                    &WorkerConfig {
                        name,
                        poll_ms: 10,
                        exit_when_drained: true,
                        ..WorkerConfig::default()
                    },
                )
            })
        })
        .collect();
    for worker in fleet {
        worker.join().expect("join").expect("drain after restart");
    }
    let status = client::get(&addr, &format!("/jobs/{job}")).expect("status");
    assert!(
        status.body.contains("\"state\":\"done\""),
        "{}",
        status.body
    );
    let first = fetch_span_stream(&addr, &job);

    // Restart once more on the finished journal: the replayed stream must
    // be byte-identical — transition spans regenerate from journaled
    // events, worker batches replay verbatim, dedup keeps first occurrences.
    server.abort();
    let server = Service::bind(&addr, config).expect("second rebind");
    let replayed = fetch_span_stream(&addr, &job);
    assert_eq!(
        first, replayed,
        "span stream must be a pure function of the journal"
    );
    server.stop();

    // Structural checks on the stream itself.
    let spans: Vec<SpanEvent> = first
        .lines()
        .map(|line| SpanEvent::parse_line(line).expect("span line"))
        .collect();
    assert!(spans.iter().all(|span| span.trace_id == TRACE_ID));
    let mut ids = BTreeSet::new();
    assert!(
        spans.iter().all(|span| ids.insert(span.span_id)),
        "span ids must be unique after re-lease dedup"
    );
    let count = |name: &str| spans.iter().filter(|span| span.name == name).count();
    assert_eq!(count("campaign"), 1, "one synthesized root span");
    assert_eq!(count("submit"), 1);
    assert_eq!(count("scenario"), 10, "one span per scenario");
    assert_eq!(count("thermal"), 10, "one thermal phase per scenario");
    assert_eq!(count("done"), 2, "one done transition per shard");
    assert!(count("lease") >= 2, "each shard leased at least once");

    // The forest is rooted at the campaign span and every scenario hangs
    // under a shard span.
    let forest = SpanForest::build(spans);
    let roots: Vec<_> = forest.roots().collect();
    assert_eq!(roots.len(), 1, "single root: the campaign span");
    assert_eq!(roots[0].name, "campaign");
    assert!(forest.wall_us() > 0);
    let _ = std::fs::remove_file(&path);
}
