//! Banded SPD storage and Cholesky factorisation.
//!
//! The grid thermal Laplacian has bandwidth `nx` (each cell couples to its
//! four neighbours), so an `L L^T` factorisation confined to the band costs
//! `O(n * bw^2)` once and every subsequent solve costs `O(n * bw)` — orders
//! of magnitude below a dense factorisation and, after caching the factor,
//! far below an iterative sweep per right-hand side.

use crate::error::SparseError;

/// A symmetric banded matrix, storing the lower band row-major: entry
/// `(i, j)` with `i - bandwidth <= j <= i` lives at
/// `i * (bandwidth + 1) + (j - i + bandwidth)`.
///
/// # Examples
///
/// ```
/// use tats_sparse::{BandedCholesky, BandedMatrix};
///
/// # fn main() -> Result<(), tats_sparse::SparseError> {
/// // Tridiagonal [2 -1; -1 2 -1; -1 2].
/// let mut a = BandedMatrix::zeros(3, 1);
/// for i in 0..3 {
///     a.add(i, i, 2.0)?;
/// }
/// a.add(1, 0, -1.0)?;
/// a.add(2, 1, -1.0)?;
/// let factor = BandedCholesky::new(&a)?;
/// let mut x = vec![1.0, 0.0, 1.0];
/// factor.solve_into(&mut x)?;
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix {
    n: usize,
    bandwidth: usize,
    /// Lower band, `n` rows of `bandwidth + 1` entries each.
    band: Vec<f64>,
}

impl BandedMatrix {
    /// Creates an all-zero `n x n` symmetric matrix with the given lower
    /// bandwidth (0 = diagonal).
    pub fn zeros(n: usize, bandwidth: usize) -> Self {
        BandedMatrix {
            n,
            bandwidth,
            band: vec![0.0; n * (bandwidth + 1)],
        }
    }

    /// Dimension of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lower bandwidth.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    fn offset(&self, i: usize, j: usize) -> Option<usize> {
        // Callers address the lower triangle: j <= i, within the band.
        if i >= self.n || j > i || i - j > self.bandwidth {
            return None;
        }
        Some(i * (self.bandwidth + 1) + (j + self.bandwidth - i))
    }

    /// Adds `value` to the symmetric entry `(i, j)` (address the lower
    /// triangle: `j <= i`).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] for entries outside the
    /// band or above the diagonal and [`SparseError::InvalidValue`] for
    /// non-finite values.
    pub fn add(&mut self, i: usize, j: usize, value: f64) -> Result<(), SparseError> {
        if !value.is_finite() {
            return Err(SparseError::InvalidValue {
                context: "banded entry",
                value,
            });
        }
        match self.offset(i, j) {
            Some(at) => {
                self.band[at] += value;
                Ok(())
            }
            None => Err(SparseError::IndexOutOfBounds {
                row: i,
                col: j,
                n: self.n,
            }),
        }
    }

    /// The entry at `(i, j)` of the full symmetric matrix (0 outside the
    /// band).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "banded index out of bounds");
        let (lo, hi) = if j <= i { (j, i) } else { (i, j) };
        self.offset(hi, lo).map_or(0.0, |at| self.band[at])
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.band.fill(0.0);
    }
}

/// Cached `L L^T` factorisation of a [`BandedMatrix`].
///
/// Factor once, then call [`BandedCholesky::solve_into`] for every
/// right-hand side: the steady-state grid solver and the implicit transient
/// stepper both reuse one factor across hundreds of solves.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedCholesky {
    n: usize,
    bandwidth: usize,
    /// Lower-band storage of `L`, same layout as [`BandedMatrix`].
    band: Vec<f64>,
}

impl BandedCholesky {
    /// Factorises a symmetric positive-definite banded matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive.
    pub fn new(matrix: &BandedMatrix) -> Result<Self, SparseError> {
        let mut factor = BandedCholesky {
            n: matrix.n,
            bandwidth: matrix.bandwidth,
            band: Vec::new(),
        };
        factor.refactor(matrix)?;
        Ok(factor)
    }

    /// Re-factorises `matrix` reusing this factor's storage; no heap
    /// allocation occurs when `n` and the bandwidth are unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] when a pivot fails (the
    /// stored factor is invalidated in that case).
    pub fn refactor(&mut self, matrix: &BandedMatrix) -> Result<(), SparseError> {
        self.n = matrix.n;
        self.bandwidth = matrix.bandwidth;
        if self.band.len() != matrix.band.len() {
            self.band.clear();
            self.band.extend_from_slice(&matrix.band);
        } else {
            self.band.copy_from_slice(&matrix.band);
        }
        let n = self.n;
        let w = self.bandwidth + 1;
        for i in 0..n {
            let j_min = i.saturating_sub(self.bandwidth);
            for j in j_min..=i {
                // sum = a_ij - sum_k l_ik l_jk over the shared band k < j.
                let k_min = j.saturating_sub(self.bandwidth).max(j_min);
                let mut sum = self.band[i * w + (j + self.bandwidth - i)];
                for k in k_min..j {
                    sum -= self.band[i * w + (k + self.bandwidth - i)]
                        * self.band[j * w + (k + self.bandwidth - j)];
                }
                let at = i * w + (j + self.bandwidth - i);
                if j == i {
                    if sum <= 0.0 || sum.is_nan() {
                        return Err(SparseError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    self.band[at] = sum.sqrt();
                } else {
                    self.band[at] = sum / self.band[j * w + self.bandwidth];
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factorised system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place: `b` holds the right-hand side on entry and
    /// the solution on exit. **Zero heap allocations.**
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `b.len() != n`.
    pub fn solve_into(&self, b: &mut [f64]) -> Result<(), SparseError> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                context: "banded solve",
                expected: self.n,
                actual: b.len(),
            });
        }
        let n = self.n;
        let w = self.bandwidth + 1;
        // Forward: L y = b.
        for i in 0..n {
            let j_min = i.saturating_sub(self.bandwidth);
            let row = &self.band[i * w + (j_min + self.bandwidth - i)..i * w + self.bandwidth];
            let (solved, rest) = b.split_at_mut(i);
            let mut sum = rest[0];
            for (l, x) in row.iter().zip(&solved[j_min..]) {
                sum -= l * x;
            }
            rest[0] = sum / self.band[i * w + self.bandwidth];
        }
        // Backward: L^T x = y, scattering row i of L into earlier entries.
        for i in (0..n).rev() {
            let xi = b[i] / self.band[i * w + self.bandwidth];
            b[i] = xi;
            let j_min = i.saturating_sub(self.bandwidth);
            let row = &self.band[i * w + (j_min + self.bandwidth - i)..i * w + self.bandwidth];
            for (l, x) in row.iter().zip(b[j_min..i].iter_mut()) {
                *x -= l * xi;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D chain conductance matrix with a ground leak: strictly SPD.
    fn chain(n: usize, bandwidth: usize) -> BandedMatrix {
        let mut a = BandedMatrix::zeros(n, bandwidth);
        for i in 0..n {
            a.add(i, i, 0.1).unwrap();
        }
        for i in 1..n {
            a.add(i, i, 1.0).unwrap();
            a.add(i - 1, i - 1, 1.0).unwrap();
            a.add(i, i - 1, -1.0).unwrap();
        }
        a
    }

    fn matvec(a: &BandedMatrix, x: &[f64]) -> Vec<f64> {
        (0..a.n())
            .map(|i| (0..a.n()).map(|j| a.get(i, j) * x[j]).sum())
            .collect()
    }

    #[test]
    fn factor_solve_round_trips() {
        let a = chain(20, 1);
        let factor = BandedCholesky::new(&a).unwrap();
        assert_eq!(factor.n(), 20);
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let mut x = b.clone();
        factor.solve_into(&mut x).unwrap();
        let back = matvec(&a, &x);
        for (bi, backi) in b.iter().zip(&back) {
            assert!((bi - backi).abs() < 1e-10);
        }
    }

    #[test]
    fn wider_band_than_structure_is_harmless() {
        let a_narrow = chain(12, 1);
        let mut a_wide = BandedMatrix::zeros(12, 4);
        for i in 0..12usize {
            for j in i.saturating_sub(1)..=i {
                a_wide.add(i, j, a_narrow.get(i, j)).unwrap();
            }
        }
        let b: Vec<f64> = (0..12).map(|i| i as f64 - 6.0).collect();
        let mut x_narrow = b.clone();
        let mut x_wide = b.clone();
        BandedCholesky::new(&a_narrow)
            .unwrap()
            .solve_into(&mut x_narrow)
            .unwrap();
        BandedCholesky::new(&a_wide)
            .unwrap()
            .solve_into(&mut x_wide)
            .unwrap();
        for (a, b) in x_narrow.iter().zip(&x_wide) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_reuses_storage_and_matches_fresh() {
        let a = chain(10, 1);
        let mut b = chain(10, 1);
        b.add(3, 3, 5.0).unwrap();
        let mut factor = BandedCholesky::new(&a).unwrap();
        factor.refactor(&b).unwrap();
        let fresh = BandedCholesky::new(&b).unwrap();
        let mut x1 = vec![1.0; 10];
        let mut x2 = vec![1.0; 10];
        factor.solve_into(&mut x1).unwrap();
        fresh.solve_into(&mut x2).unwrap();
        assert_eq!(x1, x2);
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut a = BandedMatrix::zeros(2, 1);
        a.add(0, 0, 1.0).unwrap();
        a.add(1, 1, 1.0).unwrap();
        a.add(1, 0, -2.0).unwrap();
        assert!(matches!(
            BandedCholesky::new(&a),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn out_of_band_and_invalid_entries_are_rejected() {
        let mut a = BandedMatrix::zeros(5, 1);
        assert!(a.add(3, 1, 1.0).is_err());
        assert!(a.add(1, 3, 1.0).is_err());
        assert!(a.add(5, 0, 1.0).is_err());
        assert!(a.add(1, 1, f64::NAN).is_err());
        assert_eq!(a.bandwidth(), 1);
        assert_eq!(a.get(0, 4), 0.0);
        a.add(1, 0, -2.5).unwrap();
        assert_eq!(a.get(0, 1), -2.5);
        a.fill_zero();
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let factor = BandedCholesky::new(&chain(4, 1)).unwrap();
        let mut short = vec![1.0; 3];
        assert!(matches!(
            factor.solve_into(&mut short),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }
}
