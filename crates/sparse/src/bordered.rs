//! Banded SPD systems with a dense border, solved by block elimination.
//!
//! The grid thermal system is *almost* banded: the cell Laplacian has
//! bandwidth `nx`, but the heat-spreader node couples to **every** cell and
//! the sink node to the spreader, so ordering them anywhere blows the
//! bandwidth up to `n`. Block elimination restores the banded economics:
//!
//! ```text
//! A = [ C   B ]      C: banded n x n SPD core
//!     [ B^T D ]      B: n x m dense border (m small), D: m x m
//! ```
//!
//! Factorisation caches `chol(C)`, `W = C^{-1} B` and the dense Cholesky of
//! the Schur complement `S = D - B^T W`, after which every solve is one
//! banded sweep, one `m x m` solve and one rank-`m` correction — all in
//! place and allocation free.

use crate::banded::{BandedCholesky, BandedMatrix};
use crate::error::SparseError;

/// Cached factorisation of a bordered banded SPD system.
///
/// # Examples
///
/// ```
/// use tats_sparse::{BandedMatrix, BorderedBandedCholesky};
///
/// # fn main() -> Result<(), tats_sparse::SparseError> {
/// // Core: [2 -1; -1 2]; border column couples both nodes to one extra
/// // node with conductance 1; corner closes the loop to ground.
/// let mut core = BandedMatrix::zeros(2, 1);
/// core.add(0, 0, 3.0)?;
/// core.add(1, 1, 3.0)?;
/// core.add(1, 0, -1.0)?;
/// let border = vec![vec![-1.0, -1.0]];
/// let corner = vec![vec![3.0]];
/// let factor = BorderedBandedCholesky::new(&core, &border, &corner)?;
/// let mut x = vec![1.0, 1.0, 1.0];
/// factor.solve_into(&mut x)?;
/// assert_eq!(x.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BorderedBandedCholesky {
    n: usize,
    m: usize,
    core: BandedCholesky,
    /// Border columns of `B`, each of length `n` (column-major).
    border: Vec<Vec<f64>>,
    /// `W = C^{-1} B`, column-major like `border`.
    w: Vec<Vec<f64>>,
    /// Dense lower Cholesky factor of the Schur complement, row-major `m x m`.
    schur: Vec<f64>,
}

impl BorderedBandedCholesky {
    /// Factorises the bordered system given the banded core `C`, the border
    /// columns `B` (one `Vec` of length `n` per border node) and the
    /// symmetric corner `D` (row-major `m x m`, given as `m` rows).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] for malformed border or
    /// corner shapes and [`SparseError::NotPositiveDefinite`] when either
    /// the core or the Schur complement fails to factorise.
    pub fn new(
        core: &BandedMatrix,
        border: &[Vec<f64>],
        corner: &[Vec<f64>],
    ) -> Result<Self, SparseError> {
        let n = core.n();
        let m = border.len();
        if corner.len() != m {
            return Err(SparseError::DimensionMismatch {
                context: "bordered corner rows",
                expected: m,
                actual: corner.len(),
            });
        }
        for column in border {
            if column.len() != n {
                return Err(SparseError::DimensionMismatch {
                    context: "bordered border column",
                    expected: n,
                    actual: column.len(),
                });
            }
        }
        for row in corner {
            if row.len() != m {
                return Err(SparseError::DimensionMismatch {
                    context: "bordered corner columns",
                    expected: m,
                    actual: row.len(),
                });
            }
        }

        let core_factor = BandedCholesky::new(core)?;
        // W = C^{-1} B, one banded solve per border column.
        let mut w = Vec::with_capacity(m);
        for column in border {
            let mut solved = column.clone();
            core_factor.solve_into(&mut solved)?;
            w.push(solved);
        }
        // Schur complement S = D - B^T W, then its dense Cholesky.
        let mut schur = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                let btw: f64 = border[i].iter().zip(&w[j]).map(|(b, x)| b * x).sum();
                schur[i * m + j] = corner[i][j] - btw;
            }
        }
        dense_cholesky_in_place(&mut schur, m)?;

        Ok(BorderedBandedCholesky {
            n,
            m,
            core: core_factor,
            border: border.to_vec(),
            w,
            schur,
        })
    }

    /// Total dimension `n + m` of the factorised system.
    pub fn dim(&self) -> usize {
        self.n + self.m
    }

    /// Solves `A x = b` in place: `b` holds `[core rhs, border rhs]` on
    /// entry and the solution on exit. **Zero heap allocations** — the
    /// border segment of `b` doubles as the Schur-system scratch.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when
    /// `b.len() != n + m`.
    pub fn solve_into(&self, b: &mut [f64]) -> Result<(), SparseError> {
        if b.len() != self.n + self.m {
            return Err(SparseError::DimensionMismatch {
                context: "bordered solve",
                expected: self.n + self.m,
                actual: b.len(),
            });
        }
        let (b1, b2) = b.split_at_mut(self.n);
        // y1 = C^{-1} b1.
        self.core.solve_into(b1)?;
        // b2 <- b2 - B^T y1, then solve the Schur system in place.
        for (slot, column) in b2.iter_mut().zip(&self.border) {
            *slot -= column
                .iter()
                .zip(b1.iter())
                .map(|(c, y)| c * y)
                .sum::<f64>();
        }
        dense_cholesky_solve_in_place(&self.schur, self.m, b2);
        // x1 = y1 - W x2.
        for (column, &x2) in self.w.iter().zip(b2.iter()) {
            for (y, wi) in b1.iter_mut().zip(column) {
                *y -= wi * x2;
            }
        }
        Ok(())
    }
}

/// In-place dense Cholesky of a row-major `m x m` matrix (lower triangle).
fn dense_cholesky_in_place(a: &mut [f64], m: usize) -> Result<(), SparseError> {
    for i in 0..m {
        for j in 0..=i {
            let mut sum = a[i * m + j];
            for k in 0..j {
                sum -= a[i * m + k] * a[j * m + k];
            }
            if j == i {
                if sum <= 0.0 || sum.is_nan() {
                    return Err(SparseError::NotPositiveDefinite {
                        pivot: i,
                        value: sum,
                    });
                }
                a[i * m + i] = sum.sqrt();
            } else {
                a[i * m + j] = sum / a[j * m + j];
            }
        }
    }
    Ok(())
}

/// Solves `L L^T x = b` in place against a factor from
/// [`dense_cholesky_in_place`].
fn dense_cholesky_solve_in_place(l: &[f64], m: usize, b: &mut [f64]) {
    for i in 0..m {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * m + k] * b[k];
        }
        b[i] = sum / l[i * m + i];
    }
    for i in (0..m).rev() {
        let mut sum = b[i];
        for k in i + 1..m {
            sum -= l[k * m + i] * b[k];
        }
        b[i] = sum / l[i * m + i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small conductance network: a 4-node chain core, one "spreader"
    /// border node tied to every core node, one "sink" tied to the spreader
    /// and to ground.
    fn fixture() -> (BandedMatrix, Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let n = 4;
        let g_chain = 1.0;
        let g_vert = 0.3;
        let g_sp_sink = 0.5;
        let g_ground = 0.25;
        let mut core = BandedMatrix::zeros(n, 1);
        for i in 0..n {
            core.add(i, i, g_vert).unwrap();
        }
        for i in 1..n {
            core.add(i, i, g_chain).unwrap();
            core.add(i - 1, i - 1, g_chain).unwrap();
            core.add(i, i - 1, -g_chain).unwrap();
        }
        let border = vec![vec![-g_vert; n], vec![0.0; n]];
        let corner = vec![
            vec![n as f64 * g_vert + g_sp_sink, -g_sp_sink],
            vec![-g_sp_sink, g_sp_sink + g_ground],
        ];
        (core, border, corner)
    }

    #[allow(clippy::needless_range_loop)]
    fn dense_solve(full: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        // Plain Gaussian elimination for the reference solution.
        let n = b.len();
        let mut a: Vec<Vec<f64>> = full.to_vec();
        let mut x = b.to_vec();
        for col in 0..n {
            let pivot_row = (col..n)
                .max_by(|&r, &s| a[r][col].abs().total_cmp(&a[s][col].abs()))
                .unwrap();
            a.swap(col, pivot_row);
            x.swap(col, pivot_row);
            for row in col + 1..n {
                let factor = a[row][col] / a[col][col];
                for k in col..n {
                    a[row][k] -= factor * a[col][k];
                }
                x[row] -= factor * x[col];
            }
        }
        for row in (0..n).rev() {
            for k in row + 1..n {
                x[row] -= a[row][k] * x[k];
            }
            x[row] /= a[row][row];
        }
        x
    }

    #[allow(clippy::needless_range_loop)]
    fn assemble_dense(
        core: &BandedMatrix,
        border: &[Vec<f64>],
        corner: &[Vec<f64>],
    ) -> Vec<Vec<f64>> {
        let n = core.n();
        let m = border.len();
        let mut full = vec![vec![0.0; n + m]; n + m];
        for i in 0..n {
            for j in 0..n {
                full[i][j] = core.get(i, j);
            }
        }
        for (k, column) in border.iter().enumerate() {
            for i in 0..n {
                full[i][n + k] = column[i];
                full[n + k][i] = column[i];
            }
        }
        for i in 0..m {
            for j in 0..m {
                full[n + i][n + j] = corner[i][j];
            }
        }
        full
    }

    #[test]
    fn matches_dense_elimination() {
        let (core, border, corner) = fixture();
        let factor = BorderedBandedCholesky::new(&core, &border, &corner).unwrap();
        assert_eq!(factor.dim(), 6);
        let full = assemble_dense(&core, &border, &corner);
        let b = vec![1.0, 0.5, 0.0, -0.5, 0.0, 2.0];
        let expected = dense_solve(&full, &b);
        let mut x = b.clone();
        factor.solve_into(&mut x).unwrap();
        for (a, e) in x.iter().zip(&expected) {
            assert!((a - e).abs() < 1e-10, "{a} vs {e}");
        }
    }

    #[test]
    fn repeated_solves_are_consistent() {
        let (core, border, corner) = fixture();
        let factor = BorderedBandedCholesky::new(&core, &border, &corner).unwrap();
        let full = assemble_dense(&core, &border, &corner);
        for seed in 0..5 {
            let b: Vec<f64> = (0..6).map(|i| ((seed * 7 + i) % 5) as f64 - 2.0).collect();
            let mut x = b.clone();
            factor.solve_into(&mut x).unwrap();
            let expected = dense_solve(&full, &b);
            for (a, e) in x.iter().zip(&expected) {
                assert!((a - e).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn empty_border_degenerates_to_banded_cholesky() {
        let (core, _, _) = fixture();
        let factor = BorderedBandedCholesky::new(&core, &[], &[]).unwrap();
        let plain = BandedCholesky::new(&core).unwrap();
        let mut x1 = vec![1.0, 2.0, 3.0, 4.0];
        let mut x2 = x1.clone();
        factor.solve_into(&mut x1).unwrap();
        plain.solve_into(&mut x2).unwrap();
        assert_eq!(x1, x2);
    }

    #[test]
    fn malformed_shapes_are_rejected() {
        let (core, border, corner) = fixture();
        assert!(BorderedBandedCholesky::new(&core, &border, &corner[..1]).is_err());
        let short_border = vec![vec![0.0; 2], vec![0.0; 4]];
        assert!(BorderedBandedCholesky::new(&core, &short_border, &corner).is_err());
        let ragged_corner = vec![vec![1.0], vec![0.0, 1.0]];
        assert!(BorderedBandedCholesky::new(&core, &border, &ragged_corner).is_err());
        let factor = BorderedBandedCholesky::new(&core, &border, &corner).unwrap();
        let mut wrong = vec![0.0; 5];
        assert!(factor.solve_into(&mut wrong).is_err());
    }

    #[test]
    fn indefinite_schur_complement_is_rejected() {
        let (core, border, _) = fixture();
        // Corner too weak: the Schur complement goes negative.
        let corner = vec![vec![0.1, 0.0], vec![0.0, 0.1]];
        assert!(matches!(
            BorderedBandedCholesky::new(&core, &border, &corner),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }
}
