//! Compressed sparse row matrices and the SPD assembly builder.
//!
//! [`CsrMatrix`] is the workhorse storage of the subsystem: three flat
//! arrays (`row_ptr`, `col_idx`, `values`) with the columns of every row
//! sorted, so [`CsrMatrix::spmv_into`] is a single allocation-free sweep and
//! structural queries are binary searches. [`SpdBuilder`] accumulates
//! stamp-style contributions (duplicates add) the way finite-volume
//! assembly produces them and checks symmetry at build time.

use crate::error::SparseError;

/// An `n x n` sparse matrix in compressed sparse row format.
///
/// # Examples
///
/// ```
/// use tats_sparse::SpdBuilder;
///
/// # fn main() -> Result<(), tats_sparse::SparseError> {
/// // [ 2 -1 ]
/// // [-1  2 ]
/// let mut builder = SpdBuilder::new(2);
/// builder.add_diagonal(0, 2.0)?;
/// builder.add_diagonal(1, 2.0)?;
/// builder.add_symmetric_pair(0, 1, -1.0)?;
/// let a = builder.build()?;
/// let mut y = [0.0; 2];
/// a.spmv_into(&[1.0, 1.0], &mut y)?;
/// assert_eq!(y, [1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Dimension of the (square) matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(column, value)` pairs of one row, columns ascending.
    ///
    /// # Panics
    ///
    /// Panics if `row >= n`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[row]..self.row_ptr[row + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// The stored value at `(row, col)`, or 0 for a structural zero.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "csr index out of bounds");
        let span = self.row_ptr[row]..self.row_ptr[row + 1];
        match self.col_idx[span.clone()].binary_search(&col) {
            Ok(offset) => self.values[span.start + offset],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `y = A x`, allocation free.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `x` or `y` is not of
    /// length `n`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                context: "spmv input",
                expected: self.n,
                actual: x.len(),
            });
        }
        if y.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                context: "spmv output",
                expected: self.n,
                actual: y.len(),
            });
        }
        for (row, out) in y.iter_mut().enumerate() {
            let span = self.row_ptr[row]..self.row_ptr[row + 1];
            let mut acc = 0.0;
            for (&col, &value) in self.col_idx[span.clone()].iter().zip(&self.values[span]) {
                acc += value * x[col];
            }
            *out = acc;
        }
        Ok(())
    }

    /// The diagonal entries (0 where the diagonal is structurally absent).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// Largest absolute asymmetry `max |a_ij - a_ji|` over the stored
    /// pattern. 0 for an exactly symmetric matrix.
    pub fn max_asymmetry(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for row in 0..self.n {
            for (col, value) in self.row(row) {
                worst = worst.max((value - self.get(col, row)).abs());
            }
        }
        worst
    }

    /// Whether every row is diagonally dominant
    /// (`|a_ii| >= sum_{j != i} |a_ij| - slack`).
    pub fn is_diagonally_dominant(&self, slack: f64) -> bool {
        (0..self.n).all(|row| {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (col, value) in self.row(row) {
                if col == row {
                    diag = value.abs();
                } else {
                    off += value.abs();
                }
            }
            diag + slack >= off
        })
    }
}

/// Assembly builder for symmetric positive-definite systems.
///
/// Contributions accumulate (stamping the same entry twice adds), matching
/// how conductance networks are assembled: one diagonal stamp per node plus
/// one symmetric pair per branch. [`SpdBuilder::build`] sorts each row,
/// merges duplicates and verifies symmetry and positive diagonals.
#[derive(Debug, Clone)]
pub struct SpdBuilder {
    n: usize,
    /// Per-row `(column, value)` stamps, unsorted and possibly duplicated.
    rows: Vec<Vec<(usize, f64)>>,
}

impl SpdBuilder {
    /// Creates a builder for an `n x n` system.
    pub fn new(n: usize) -> Self {
        SpdBuilder {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Dimension of the system under assembly.
    pub fn n(&self) -> usize {
        self.n
    }

    fn check(&self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.n || col >= self.n {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                n: self.n,
            });
        }
        if !value.is_finite() {
            return Err(SparseError::InvalidValue {
                context: "matrix entry",
                value,
            });
        }
        Ok(())
    }

    /// Adds `value` to the diagonal entry `(i, i)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] / [`SparseError::InvalidValue`]
    /// for bad input.
    pub fn add_diagonal(&mut self, i: usize, value: f64) -> Result<(), SparseError> {
        self.check(i, i, value)?;
        self.rows[i].push((i, value));
        Ok(())
    }

    /// Adds `value` to both `(i, j)` and `(j, i)`, keeping the stamp
    /// symmetric by construction.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] for `i == j` or
    /// out-of-range indices and [`SparseError::InvalidValue`] for non-finite
    /// values.
    pub fn add_symmetric_pair(
        &mut self,
        i: usize,
        j: usize,
        value: f64,
    ) -> Result<(), SparseError> {
        self.check(i, j, value)?;
        if i == j {
            return Err(SparseError::IndexOutOfBounds {
                row: i,
                col: j,
                n: self.n,
            });
        }
        self.rows[i].push((j, value));
        self.rows[j].push((i, value));
        Ok(())
    }

    /// Stamps a conductance branch between nodes `i` and `j`: adds `g` to
    /// both diagonals and `-g` to both off-diagonals (the classic nodal
    /// analysis stamp, which preserves symmetric diagonal dominance).
    ///
    /// # Errors
    ///
    /// Propagates the index and value checks of the underlying adds.
    pub fn add_branch(&mut self, i: usize, j: usize, g: f64) -> Result<(), SparseError> {
        self.add_diagonal(i, g)?;
        self.add_diagonal(j, g)?;
        self.add_symmetric_pair(i, j, -g)
    }

    /// Finalises the assembly into a [`CsrMatrix`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSymmetric`] if the accumulated stamps are
    /// asymmetric beyond `1e-12` relative to the largest entry and
    /// [`SparseError::NotPositiveDefinite`] if any diagonal entry is not
    /// strictly positive (a necessary condition for SPD).
    pub fn build(self) -> Result<CsrMatrix, SparseError> {
        let n = self.n;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for mut row in self.rows {
            row.sort_unstable_by_key(|&(col, _)| col);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for (col, value) in row {
                match merged.last_mut() {
                    Some((last_col, last_value)) if *last_col == col => *last_value += value,
                    _ => merged.push((col, value)),
                }
            }
            for (col, value) in merged {
                col_idx.push(col);
                values.push(value);
            }
            row_ptr.push(col_idx.len());
        }
        let matrix = CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        };

        let scale = matrix.values.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for row in 0..n {
            for (col, value) in matrix.row(row) {
                let mirrored = matrix.get(col, row);
                let asymmetry = (value - mirrored).abs();
                if asymmetry > 1e-12 * scale {
                    return Err(SparseError::NotSymmetric {
                        row,
                        col,
                        asymmetry,
                    });
                }
            }
        }
        for i in 0..n {
            let diag = matrix.get(i, i);
            if diag <= 0.0 || diag.is_nan() {
                return Err(SparseError::NotPositiveDefinite {
                    pivot: i,
                    value: diag,
                });
            }
        }
        Ok(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Path-graph Laplacian + I: tridiagonal SPD.
        let mut builder = SpdBuilder::new(n);
        for i in 0..n {
            builder.add_diagonal(i, 1.0).unwrap();
        }
        for i in 0..n - 1 {
            builder.add_branch(i, i + 1, 1.0).unwrap();
        }
        builder.build().unwrap()
    }

    #[test]
    fn builder_produces_sorted_merged_rows() {
        let a = laplacian_1d(4);
        assert_eq!(a.n(), 4);
        assert_eq!(a.nnz(), 4 + 2 * 3);
        let row1: Vec<(usize, f64)> = a.row(1).collect();
        assert_eq!(row1, vec![(0, -1.0), (1, 3.0), (2, -1.0)]);
        assert_eq!(a.get(0, 3), 0.0);
        assert_eq!(a.get(2, 1), -1.0);
    }

    #[test]
    fn duplicate_stamps_accumulate() {
        let mut builder = SpdBuilder::new(2);
        builder.add_diagonal(0, 1.0).unwrap();
        builder.add_diagonal(0, 2.5).unwrap();
        builder.add_diagonal(1, 1.0).unwrap();
        let a = builder.build().unwrap();
        assert_eq!(a.get(0, 0), 3.5);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn spmv_matches_dense_product() {
        let a = laplacian_1d(5);
        let x = [1.0, -2.0, 3.0, 0.5, 0.0];
        let mut y = [0.0; 5];
        a.spmv_into(&x, &mut y).unwrap();
        for i in 0..5 {
            let mut expected = 0.0;
            for j in 0..5 {
                expected += a.get(i, j) * x[j];
            }
            assert!((y[i] - expected).abs() < 1e-14);
        }
    }

    #[test]
    fn spmv_rejects_wrong_lengths() {
        let a = laplacian_1d(3);
        let mut y = [0.0; 3];
        assert!(matches!(
            a.spmv_into(&[1.0, 2.0], &mut y),
            Err(SparseError::DimensionMismatch { .. })
        ));
        let mut short = [0.0; 2];
        assert!(a.spmv_into(&[1.0, 2.0, 3.0], &mut short).is_err());
    }

    #[test]
    fn symmetry_and_dominance_helpers() {
        let a = laplacian_1d(6);
        assert_eq!(a.max_asymmetry(), 0.0);
        assert!(a.is_diagonally_dominant(0.0));
        assert_eq!(a.diagonal().len(), 6);
    }

    #[test]
    fn asymmetric_assembly_is_rejected() {
        let mut builder = SpdBuilder::new(2);
        builder.add_diagonal(0, 1.0).unwrap();
        builder.add_diagonal(1, 1.0).unwrap();
        // Bypass the symmetric stamp to force asymmetry.
        builder.rows[0].push((1, -0.5));
        assert!(matches!(
            builder.build(),
            Err(SparseError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn non_positive_diagonal_is_rejected() {
        let mut builder = SpdBuilder::new(2);
        builder.add_diagonal(0, 1.0).unwrap();
        builder.add_diagonal(1, -1.0).unwrap();
        assert!(matches!(
            builder.build(),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
        // A missing diagonal is equally fatal.
        let mut builder = SpdBuilder::new(1);
        builder.rows[0].clear();
        assert!(builder.build().is_err());
    }

    #[test]
    fn stamps_reject_bad_indices_and_values() {
        let mut builder = SpdBuilder::new(3);
        assert!(builder.add_diagonal(3, 1.0).is_err());
        assert!(builder.add_diagonal(0, f64::NAN).is_err());
        assert!(builder.add_symmetric_pair(1, 1, 1.0).is_err());
        assert!(builder.add_symmetric_pair(0, 5, 1.0).is_err());
        assert!(builder.add_branch(0, 1, f64::INFINITY).is_err());
    }
}
