//! Error types of the sparse linear-algebra subsystem.

use std::fmt;

/// Errors produced while assembling or solving sparse systems.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A dimension did not match (vector length, matrix size, bandwidth).
    DimensionMismatch {
        /// What was being matched (e.g. "spmv input").
        context: &'static str,
        /// The dimension the operation required.
        expected: usize,
        /// The dimension it was given.
        actual: usize,
    },
    /// An index was outside the matrix.
    IndexOutOfBounds {
        /// Row index supplied.
        row: usize,
        /// Column index supplied.
        col: usize,
        /// Matrix dimension.
        n: usize,
    },
    /// The assembled matrix is not symmetric within tolerance.
    NotSymmetric {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// `|a_ij - a_ji|` at that position.
        asymmetry: f64,
    },
    /// A pivot required by a Cholesky-type factorisation was not positive:
    /// the matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Elimination step at which the pivot failed.
        pivot: usize,
        /// The offending pivot value.
        value: f64,
    },
    /// An iterative solver exhausted its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Relative residual norm `||b - Ax|| / ||b||` at the last iteration.
        residual: f64,
        /// Relative residual the solver was asked to reach.
        tolerance: f64,
    },
    /// A value that must be finite (and possibly positive) was not.
    InvalidValue {
        /// What the value was (e.g. "matrix entry", "tolerance").
        context: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(f, "{context}: expected dimension {expected}, got {actual}"),
            SparseError::IndexOutOfBounds { row, col, n } => {
                write!(f, "entry ({row}, {col}) outside {n} x {n} matrix")
            }
            SparseError::NotSymmetric {
                row,
                col,
                asymmetry,
            } => write!(
                f,
                "matrix is not symmetric: |a[{row},{col}] - a[{col},{row}]| = {asymmetry:.3e}"
            ),
            SparseError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} is {value:.3e}"
            ),
            SparseError::NoConvergence {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations: \
                 relative residual {residual:.3e} vs requested {tolerance:.3e}"
            ),
            SparseError::InvalidValue { context, value } => {
                write!(f, "{context} must be finite, got {value}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_have_nonempty_messages() {
        let errors = [
            SparseError::DimensionMismatch {
                context: "spmv input",
                expected: 4,
                actual: 3,
            },
            SparseError::IndexOutOfBounds {
                row: 5,
                col: 0,
                n: 4,
            },
            SparseError::NotSymmetric {
                row: 1,
                col: 2,
                asymmetry: 0.5,
            },
            SparseError::NotPositiveDefinite {
                pivot: 3,
                value: -1.0,
            },
            SparseError::NoConvergence {
                iterations: 100,
                residual: 1e-3,
                tolerance: 1e-9,
            },
            SparseError::InvalidValue {
                context: "matrix entry",
                value: f64::NAN,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn no_convergence_reports_achieved_vs_requested() {
        let message = SparseError::NoConvergence {
            iterations: 7,
            residual: 2e-3,
            tolerance: 1e-10,
        }
        .to_string();
        assert!(message.contains('7'));
        assert!(message.contains("2.000e-3"));
        assert!(message.contains("1.000e-10"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync>() {}
        assert_bounds::<SparseError>();
    }
}
