//! Sparse linear algebra powering the grid thermal model.
//!
//! The block-level compact model solves tiny dense systems (one node per
//! PE), but the validation-grade [`GridModel`] discretises the die into
//! `nx x ny` cells and its Laplacian is far too large for dense methods.
//! This crate provides the three tools that workload needs, dependency
//! free:
//!
//! * [`CsrMatrix`] / [`SpdBuilder`] — compressed sparse row storage with
//!   allocation-free [`CsrMatrix::spmv_into`] and a symmetric
//!   positive-definite assembly builder with stamp semantics,
//! * [`PcgSolver`] — preconditioned conjugate gradients
//!   ([`Preconditioner::Identity`] / [`Preconditioner::jacobi`] /
//!   [`Preconditioner::ic0`]) with a reusable [`CgWorkspace`] so repeated
//!   solves allocate nothing,
//! * [`BandedCholesky`] and [`BorderedBandedCholesky`] — cached direct
//!   factorisations for banded SPD systems (the grid Laplacian has
//!   bandwidth `nx`) and for banded systems with a few dense coupling rows
//!   (spreader/sink nodes), each with in-place
//!   `solve_into` for repeated right-hand sides.
//!
//! [`GridModel`]: https://docs.rs/tats_thermal
//!
//! # Examples
//!
//! ```
//! use tats_sparse::{CgWorkspace, PcgSolver, Preconditioner, SpdBuilder};
//!
//! # fn main() -> Result<(), tats_sparse::SparseError> {
//! // Assemble a 1-D conductance chain with a ground leak per node.
//! let n = 32;
//! let mut builder = SpdBuilder::new(n);
//! for i in 0..n {
//!     builder.add_diagonal(i, 0.05)?;
//! }
//! for i in 1..n {
//!     builder.add_branch(i - 1, i, 1.0)?;
//! }
//! let a = builder.build()?;
//!
//! // Solve with IC(0)-preconditioned CG.
//! let preconditioner = Preconditioner::ic0(&a)?;
//! let b = vec![1.0; n];
//! let mut x = vec![0.0; n];
//! let mut workspace = CgWorkspace::new(n);
//! let summary =
//!     PcgSolver::new(1000, 1e-10).solve_into(&a, &preconditioner, &b, &mut x, &mut workspace)?;
//! assert!(summary.residual <= 1e-10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod banded;
mod bordered;
mod csr;
mod error;
mod pcg;

pub use banded::{BandedCholesky, BandedMatrix};
pub use bordered::BorderedBandedCholesky;
pub use csr::{CsrMatrix, SpdBuilder};
pub use error::SparseError;
pub use pcg::{CgSummary, CgWorkspace, PcgSolver, Preconditioner};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Assembles a random 2-D grid conductance system (5-point stencil with
    /// per-node ground leak) both as CSR and as a banded matrix.
    fn grid_pair(nx: usize, ny: usize, leak: f64, coupling: f64) -> (CsrMatrix, BandedMatrix) {
        let n = nx * ny;
        let mut builder = SpdBuilder::new(n);
        let mut banded = BandedMatrix::zeros(n, nx);
        for i in 0..n {
            builder.add_diagonal(i, leak).unwrap();
            banded.add(i, i, leak).unwrap();
        }
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    builder.add_branch(i, i + 1, coupling).unwrap();
                    banded.add(i, i, coupling).unwrap();
                    banded.add(i + 1, i + 1, coupling).unwrap();
                    banded.add(i + 1, i, -coupling).unwrap();
                }
                if y + 1 < ny {
                    builder.add_branch(i, i + nx, coupling).unwrap();
                    banded.add(i, i, coupling).unwrap();
                    banded.add(i + nx, i + nx, coupling).unwrap();
                    banded.add(i + nx, i, -coupling).unwrap();
                }
            }
        }
        (builder.build().unwrap(), banded)
    }

    proptest! {
        /// PCG (all preconditioners) and banded Cholesky agree with each
        /// other on random grid conductance systems.
        #[test]
        fn pcg_and_banded_cholesky_agree(
            nx in 2usize..7,
            ny in 2usize..7,
            leak in 0.01f64..2.0,
            coupling in 0.1f64..5.0,
            rhs in proptest::collection::vec(-10.0f64..10.0, 36),
        ) {
            let (csr, banded) = grid_pair(nx, ny, leak, coupling);
            let n = csr.n();
            let b = &rhs[..n];

            let mut direct = b.to_vec();
            BandedCholesky::new(&banded).unwrap().solve_into(&mut direct).unwrap();

            let solver = PcgSolver::new(10_000, 1e-13);
            for preconditioner in [
                Preconditioner::Identity,
                Preconditioner::jacobi(&csr).unwrap(),
                Preconditioner::ic0(&csr).unwrap(),
            ] {
                let mut x = vec![0.0; n];
                let mut workspace = CgWorkspace::new(n);
                solver
                    .solve_into(&csr, &preconditioner, b, &mut x, &mut workspace)
                    .unwrap();
                for (xi, di) in x.iter().zip(&direct) {
                    prop_assert!((xi - di).abs() < 1e-6, "{xi} vs {di}");
                }
            }
        }

        /// The assembly builder always produces symmetric, diagonally
        /// dominant matrices from branch/diagonal stamps.
        #[test]
        fn assembled_systems_are_symmetric_dominant(
            nx in 1usize..6,
            ny in 1usize..6,
            leak in 0.001f64..1.0,
            coupling in 0.01f64..10.0,
        ) {
            let (csr, banded) = grid_pair(nx, ny, leak, coupling);
            prop_assert_eq!(csr.max_asymmetry(), 0.0);
            prop_assert!(csr.is_diagonally_dominant(1e-9));
            // The two assemblies describe the same matrix.
            for i in 0..csr.n() {
                for (j, value) in csr.row(i) {
                    prop_assert!((value - banded.get(i, j)).abs() < 1e-12);
                }
            }
        }

        /// Solving then multiplying round-trips the right-hand side.
        #[test]
        fn solve_spmv_round_trips(
            nx in 2usize..6,
            ny in 2usize..6,
            leak in 0.05f64..1.0,
            rhs in proptest::collection::vec(-5.0f64..5.0, 25),
        ) {
            let (csr, banded) = grid_pair(nx, ny, leak, 1.0);
            let n = csr.n();
            let b = &rhs[..n];
            let mut x = b.to_vec();
            BandedCholesky::new(&banded).unwrap().solve_into(&mut x).unwrap();
            let mut back = vec![0.0; n];
            csr.spmv_into(&x, &mut back).unwrap();
            for (bi, backi) in b.iter().zip(&back) {
                prop_assert!((bi - backi).abs() < 1e-8);
            }
        }
    }
}
