//! Preconditioned conjugate gradients for SPD systems.
//!
//! The solver follows the textbook PCG recurrence with a caller-owned
//! [`CgWorkspace`], so repeated solves (parameter sweeps, transient steps,
//! per-candidate cost evaluations) perform **zero heap allocations** after
//! the first. Two preconditioners are provided: Jacobi (inverse diagonal,
//! essentially free to build) and zero-fill incomplete Cholesky IC(0),
//! which typically cuts the iteration count by several times on grid
//! Laplacians at the price of one triangular sweep per application.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// Preconditioner applied inside [`PcgSolver`].
#[derive(Debug, Clone, PartialEq)]
pub enum Preconditioner {
    /// No preconditioning (plain conjugate gradients).
    Identity,
    /// Jacobi: division by the matrix diagonal (stored inverted).
    Jacobi(Vec<f64>),
    /// Zero-fill incomplete Cholesky: `M = L L^T` with the sparsity of the
    /// lower triangle of `A`.
    Ic0(IcFactor),
}

impl Preconditioner {
    /// Builds the Jacobi preconditioner of `matrix`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] if a diagonal entry is
    /// not strictly positive.
    pub fn jacobi(matrix: &CsrMatrix) -> Result<Self, SparseError> {
        let mut inverse_diagonal = Vec::with_capacity(matrix.n());
        for (i, d) in matrix.diagonal().into_iter().enumerate() {
            if d <= 0.0 || d.is_nan() {
                return Err(SparseError::NotPositiveDefinite { pivot: i, value: d });
            }
            inverse_diagonal.push(1.0 / d);
        }
        Ok(Preconditioner::Jacobi(inverse_diagonal))
    }

    /// Builds the IC(0) preconditioner of `matrix`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] when the incomplete
    /// factorisation breaks down (possible even for SPD matrices, though not
    /// for the diagonally dominant systems the thermal model assembles).
    pub fn ic0(matrix: &CsrMatrix) -> Result<Self, SparseError> {
        Ok(Preconditioner::Ic0(IcFactor::new(matrix)?))
    }

    /// Applies `z = M^{-1} r`.
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            Preconditioner::Identity => z.copy_from_slice(r),
            Preconditioner::Jacobi(inverse_diagonal) => {
                for ((zi, ri), di) in z.iter_mut().zip(r).zip(inverse_diagonal) {
                    *zi = ri * di;
                }
            }
            Preconditioner::Ic0(factor) => factor.solve_into(r, z),
        }
    }
}

/// Zero-fill incomplete Cholesky factor `L` (lower triangular, CSR-like).
#[derive(Debug, Clone, PartialEq)]
pub struct IcFactor {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Offset of the diagonal entry inside each row (always the last one).
    diag_at: Vec<usize>,
}

impl IcFactor {
    /// Factorises the lower triangle of `matrix` in place of pattern.
    fn new(matrix: &CsrMatrix) -> Result<Self, SparseError> {
        let n = matrix.n();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut diag_at = Vec::with_capacity(n);
        row_ptr.push(0);
        for i in 0..n {
            let mut saw_diag = false;
            for (j, v) in matrix.row(i) {
                if j > i {
                    break;
                }
                col_idx.push(j);
                values.push(v);
                if j == i {
                    saw_diag = true;
                }
            }
            if !saw_diag {
                return Err(SparseError::NotPositiveDefinite {
                    pivot: i,
                    value: 0.0,
                });
            }
            diag_at.push(col_idx.len() - 1);
            row_ptr.push(col_idx.len());
        }

        // IKJ-style incomplete factorisation restricted to the pattern.
        for i in 0..n {
            let row_span = row_ptr[i]..row_ptr[i + 1];
            for offset in row_span.clone() {
                let j = col_idx[offset];
                // values[offset] currently holds a_ij minus prior updates;
                // subtract sum_k l_ik l_jk over shared columns k < j.
                let mut sum = values[offset];
                let mut pi = row_ptr[i];
                let mut pj = row_ptr[j];
                while pi < offset && pj < diag_at[j] {
                    let ci = col_idx[pi];
                    let cj = col_idx[pj];
                    match ci.cmp(&cj) {
                        std::cmp::Ordering::Less => pi += 1,
                        std::cmp::Ordering::Greater => pj += 1,
                        std::cmp::Ordering::Equal => {
                            sum -= values[pi] * values[pj];
                            pi += 1;
                            pj += 1;
                        }
                    }
                }
                if j == i {
                    if sum <= 0.0 || sum.is_nan() {
                        return Err(SparseError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    values[offset] = sum.sqrt();
                } else {
                    values[offset] = sum / values[diag_at[j]];
                }
            }
        }
        Ok(IcFactor {
            n,
            row_ptr,
            col_idx,
            values,
            diag_at,
        })
    }

    /// Solves `L L^T z = r` by forward then backward substitution.
    fn solve_into(&self, r: &[f64], z: &mut [f64]) {
        // Forward: L y = r, y stored in z.
        for i in 0..self.n {
            let mut sum = r[i];
            for offset in self.row_ptr[i]..self.diag_at[i] {
                sum -= self.values[offset] * z[self.col_idx[offset]];
            }
            z[i] = sum / self.values[self.diag_at[i]];
        }
        // Backward: L^T z = y. Column sweep over L's rows in reverse.
        for i in (0..self.n).rev() {
            let zi = z[i] / self.values[self.diag_at[i]];
            z[i] = zi;
            for offset in self.row_ptr[i]..self.diag_at[i] {
                z[self.col_idx[offset]] -= self.values[offset] * zi;
            }
        }
    }
}

/// Reusable buffers of one PCG solve (residual, preconditioned residual,
/// search direction, `A p`). Create once, reuse across solves of the same
/// dimension for allocation-free steady-state queries.
#[derive(Debug, Clone, Default)]
pub struct CgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgWorkspace {
    /// Creates a workspace for systems of dimension `n`.
    pub fn new(n: usize) -> Self {
        CgWorkspace {
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
        }
    }

    fn resize(&mut self, n: usize) {
        if self.r.len() != n {
            self.r.resize(n, 0.0);
            self.z.resize(n, 0.0);
            self.p.resize(n, 0.0);
            self.ap.resize(n, 0.0);
        }
    }
}

/// Outcome of a converged PCG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgSummary {
    /// Iterations performed.
    pub iterations: usize,
    /// Relative residual `||b - Ax|| / ||b||` at exit.
    pub residual: f64,
}

/// Conjugate-gradient solver bound to a matrix and preconditioner.
///
/// # Examples
///
/// ```
/// use tats_sparse::{CgWorkspace, PcgSolver, Preconditioner, SpdBuilder};
///
/// # fn main() -> Result<(), tats_sparse::SparseError> {
/// let mut builder = SpdBuilder::new(3);
/// for i in 0..3 {
///     builder.add_diagonal(i, 2.0)?;
/// }
/// builder.add_branch(0, 1, 1.0)?;
/// builder.add_branch(1, 2, 1.0)?;
/// let a = builder.build()?;
/// let preconditioner = Preconditioner::jacobi(&a)?;
/// let solver = PcgSolver::new(1000, 1e-12);
/// let mut x = vec![0.0; 3];
/// let mut workspace = CgWorkspace::new(3);
/// let summary = solver.solve_into(&a, &preconditioner, &[1.0, 0.0, 1.0], &mut x, &mut workspace)?;
/// assert!(summary.residual <= 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcgSolver {
    max_iterations: usize,
    /// Convergence threshold on the relative residual `||r|| / ||b||`.
    tolerance: f64,
}

impl PcgSolver {
    /// Creates a solver with the given iteration budget and relative
    /// residual tolerance.
    pub fn new(max_iterations: usize, tolerance: f64) -> Self {
        PcgSolver {
            max_iterations,
            tolerance,
        }
    }

    /// Solves `A x = b`, starting from the initial guess already in `x`,
    /// using `workspace` for every intermediate vector (no allocations when
    /// the workspace dimension already matches).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] for mismatched lengths,
    /// [`SparseError::NotPositiveDefinite`] on a curvature breakdown and
    /// [`SparseError::NoConvergence`] (carrying the achieved residual and
    /// iteration count) when the budget runs out.
    pub fn solve_into(
        &self,
        matrix: &CsrMatrix,
        preconditioner: &Preconditioner,
        b: &[f64],
        x: &mut [f64],
        workspace: &mut CgWorkspace,
    ) -> Result<CgSummary, SparseError> {
        let n = matrix.n();
        if b.len() != n || x.len() != n {
            return Err(SparseError::DimensionMismatch {
                context: "pcg system",
                expected: n,
                actual: if b.len() != n { b.len() } else { x.len() },
            });
        }
        workspace.resize(n);
        let CgWorkspace { r, z, p, ap } = workspace;

        let norm_b = dot(b, b).sqrt();
        if norm_b == 0.0 {
            x.fill(0.0);
            return Ok(CgSummary {
                iterations: 0,
                residual: 0.0,
            });
        }

        // r = b - A x.
        matrix.spmv_into(x, r)?;
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let mut residual = dot(r, r).sqrt() / norm_b;
        if residual <= self.tolerance {
            return Ok(CgSummary {
                iterations: 0,
                residual,
            });
        }

        preconditioner.apply(r, z);
        p.copy_from_slice(z);
        let mut rz = dot(r, z);

        for iteration in 1..=self.max_iterations {
            matrix.spmv_into(p, ap)?;
            let curvature = dot(p, ap);
            if curvature <= 0.0 || curvature.is_nan() {
                return Err(SparseError::NotPositiveDefinite {
                    pivot: iteration,
                    value: curvature,
                });
            }
            let alpha = rz / curvature;
            for ((xi, pi), (ri, api)) in x.iter_mut().zip(p.iter()).zip(r.iter_mut().zip(ap.iter()))
            {
                *xi += alpha * pi;
                *ri -= alpha * api;
            }
            residual = dot(r, r).sqrt() / norm_b;
            if residual <= self.tolerance {
                return Ok(CgSummary {
                    iterations: iteration,
                    residual,
                });
            }
            preconditioner.apply(r, z);
            let rz_next = dot(r, z);
            let beta = rz_next / rz;
            rz = rz_next;
            for (pi, zi) in p.iter_mut().zip(z.iter()) {
                *pi = zi + beta * *pi;
            }
        }
        Err(SparseError::NoConvergence {
            iterations: self.max_iterations,
            residual,
            tolerance: self.tolerance,
        })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::SpdBuilder;

    /// 2-D 5-point grid Laplacian + `shift * I` on an `nx x ny` grid.
    fn grid_matrix(nx: usize, ny: usize, shift: f64) -> CsrMatrix {
        let mut builder = SpdBuilder::new(nx * ny);
        for i in 0..nx * ny {
            builder.add_diagonal(i, shift).unwrap();
        }
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    builder.add_branch(i, i + 1, 1.0).unwrap();
                }
                if y + 1 < ny {
                    builder.add_branch(i, i + nx, 1.0).unwrap();
                }
            }
        }
        builder.build().unwrap()
    }

    fn solve(
        matrix: &CsrMatrix,
        preconditioner: &Preconditioner,
        b: &[f64],
    ) -> (Vec<f64>, CgSummary) {
        let solver = PcgSolver::new(10_000, 1e-12);
        let mut x = vec![0.0; matrix.n()];
        let mut workspace = CgWorkspace::new(matrix.n());
        let summary = solver
            .solve_into(matrix, preconditioner, b, &mut x, &mut workspace)
            .unwrap();
        (x, summary)
    }

    fn residual_norm(matrix: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let mut ax = vec![0.0; matrix.n()];
        matrix.spmv_into(x, &mut ax).unwrap();
        ax.iter()
            .zip(b)
            .map(|(a, bb)| (a - bb) * (a - bb))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn all_preconditioners_solve_the_grid_system() {
        let a = grid_matrix(8, 6, 0.05);
        let b: Vec<f64> = (0..a.n()).map(|i| (i % 7) as f64 - 3.0).collect();
        for preconditioner in [
            Preconditioner::Identity,
            Preconditioner::jacobi(&a).unwrap(),
            Preconditioner::ic0(&a).unwrap(),
        ] {
            let (x, summary) = solve(&a, &preconditioner, &b);
            assert!(residual_norm(&a, &x, &b) < 1e-9);
            assert!(summary.iterations > 0);
            assert!(summary.residual <= 1e-12);
        }
    }

    #[test]
    fn ic0_converges_faster_than_plain_cg() {
        let a = grid_matrix(16, 16, 0.01);
        let b: Vec<f64> = (0..a.n()).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
        let (_, plain) = solve(&a, &Preconditioner::Identity, &b);
        let (_, ic) = solve(&a, &Preconditioner::ic0(&a).unwrap(), &b);
        assert!(
            ic.iterations < plain.iterations,
            "IC(0) took {} iterations vs {} plain",
            ic.iterations,
            plain.iterations
        );
    }

    #[test]
    fn warm_start_from_the_solution_exits_immediately() {
        let a = grid_matrix(4, 4, 1.0);
        let b = vec![2.0; a.n()];
        let (x, _) = solve(&a, &Preconditioner::Identity, &b);
        let solver = PcgSolver::new(50, 1e-10);
        let mut warm = x.clone();
        let mut workspace = CgWorkspace::new(a.n());
        let summary = solver
            .solve_into(&a, &Preconditioner::Identity, &b, &mut warm, &mut workspace)
            .unwrap();
        assert_eq!(summary.iterations, 0);
    }

    #[test]
    fn zero_rhs_yields_zero_solution() {
        let a = grid_matrix(3, 3, 1.0);
        let solver = PcgSolver::new(10, 1e-10);
        let mut x = vec![7.0; a.n()];
        let mut workspace = CgWorkspace::default();
        let summary = solver
            .solve_into(
                &a,
                &Preconditioner::Identity,
                &vec![0.0; a.n()],
                &mut x,
                &mut workspace,
            )
            .unwrap();
        assert_eq!(summary.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn starved_budget_reports_achieved_residual() {
        let a = grid_matrix(12, 12, 0.01);
        let b: Vec<f64> = (0..a.n()).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let solver = PcgSolver::new(2, 1e-14);
        let mut x = vec![0.0; a.n()];
        let mut workspace = CgWorkspace::new(a.n());
        match solver.solve_into(&a, &Preconditioner::Identity, &b, &mut x, &mut workspace) {
            Err(SparseError::NoConvergence {
                iterations,
                residual,
                tolerance,
            }) => {
                assert_eq!(iterations, 2);
                assert!(residual > tolerance);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let a = grid_matrix(3, 3, 1.0);
        let solver = PcgSolver::new(10, 1e-10);
        let mut workspace = CgWorkspace::new(a.n());
        let mut x = vec![0.0; a.n()];
        assert!(solver
            .solve_into(
                &a,
                &Preconditioner::Identity,
                &[1.0],
                &mut x,
                &mut workspace
            )
            .is_err());
        let mut short = vec![0.0; 2];
        assert!(solver
            .solve_into(
                &a,
                &Preconditioner::Identity,
                &vec![1.0; a.n()],
                &mut short,
                &mut workspace
            )
            .is_err());
    }

    #[test]
    fn preconditioners_build_on_a_diagonal_only_matrix() {
        let mut builder = SpdBuilder::new(2);
        builder.add_diagonal(0, 1.0).unwrap();
        builder.add_diagonal(1, 1.0).unwrap();
        let a = builder.build().unwrap();
        assert!(Preconditioner::jacobi(&a).is_ok());
        // IC(0) on a structurally missing diagonal fails.
        assert!(matches!(
            Preconditioner::ic0(&a),
            Ok(Preconditioner::Ic0(_))
        ));
    }

    #[test]
    fn ic0_matches_exact_cholesky_on_tridiagonal() {
        // For a tridiagonal matrix the IC(0) pattern is the exact Cholesky
        // pattern, so M = A and PCG must converge in one iteration.
        let a = grid_matrix(10, 1, 0.5);
        let b: Vec<f64> = (0..a.n()).map(|i| i as f64).collect();
        let (x, summary) = solve(&a, &Preconditioner::ic0(&a).unwrap(), &b);
        assert!(summary.iterations <= 2);
        assert!(residual_norm(&a, &x, &b) < 1e-9);
    }
}
