//! Structural analyses used by list schedulers.
//!
//! The paper's allocation and scheduling procedure (ASP) orders ready tasks
//! by *static criticality* (SC): the maximum distance from a task to the end
//! task of the graph. This module computes SC together with the related
//! quantities used throughout the scheduler: bottom levels, top levels,
//! as-soon-as-possible (ASAP) and as-late-as-possible (ALAP) times, slack,
//! topological depth and the critical path.
//!
//! All weighted analyses accept one weight per task (e.g. the average WCET of
//! the task over all processing-element types), indexed by [`TaskId`].

use crate::error::GraphError;
use crate::graph::TaskGraph;
use crate::task::TaskId;

/// Result of the level/criticality analysis of a [`TaskGraph`].
///
/// Produced by [`GraphAnalysis::new`]. All vectors are indexed by
/// [`TaskId::index`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphAnalysis {
    weights: Vec<f64>,
    bottom_level: Vec<f64>,
    top_level: Vec<f64>,
    asap: Vec<f64>,
    alap: Vec<f64>,
    depth: Vec<usize>,
    makespan_lower_bound: f64,
}

impl GraphAnalysis {
    /// Analyses `graph` with one execution-time weight per task.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `weights.len()` differs
    /// from the task count or any weight is negative or non-finite.
    pub fn new(graph: &TaskGraph, weights: &[f64]) -> Result<Self, GraphError> {
        let n = graph.task_count();
        if weights.len() != n {
            return Err(GraphError::InvalidParameter(format!(
                "expected {n} weights, got {}",
                weights.len()
            )));
        }
        if let Some(w) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(GraphError::InvalidParameter(format!(
                "weights must be finite and non-negative, got {w}"
            )));
        }

        let topo = graph.topological_order().to_vec();

        // Bottom level: weight of the task plus the longest downstream chain.
        let mut bottom_level = vec![0.0_f64; n];
        for &t in topo.iter().rev() {
            let best_succ = graph
                .successors(t)
                .iter()
                .map(|s| bottom_level[s.index()])
                .fold(0.0_f64, f64::max);
            bottom_level[t.index()] = weights[t.index()] + best_succ;
        }

        // Top level / ASAP: longest chain strictly above the task.
        let mut top_level = vec![0.0_f64; n];
        for &t in &topo {
            let best_pred = graph
                .predecessors(t)
                .iter()
                .map(|p| top_level[p.index()] + weights[p.index()])
                .fold(0.0_f64, f64::max);
            top_level[t.index()] = best_pred;
        }
        let asap = top_level.clone();

        let makespan_lower_bound = (0..n).map(|i| asap[i] + weights[i]).fold(0.0_f64, f64::max);

        // ALAP relative to the critical-path length.
        let mut alap = vec![0.0_f64; n];
        for &t in topo.iter().rev() {
            let i = t.index();
            if graph.successors(t).is_empty() {
                alap[i] = makespan_lower_bound - weights[i];
            } else {
                let min_succ = graph
                    .successors(t)
                    .iter()
                    .map(|s| alap[s.index()])
                    .fold(f64::INFINITY, f64::min);
                alap[i] = min_succ - weights[i];
            }
        }

        // Topological depth in hops.
        let mut depth = vec![0_usize; n];
        for &t in &topo {
            let d = graph
                .predecessors(t)
                .iter()
                .map(|p| depth[p.index()] + 1)
                .max()
                .unwrap_or(0);
            depth[t.index()] = d;
        }

        Ok(GraphAnalysis {
            weights: weights.to_vec(),
            bottom_level,
            top_level,
            asap,
            alap,
            depth,
            makespan_lower_bound,
        })
    }

    /// Analyses `graph` with unit weights (every task counts as 1).
    ///
    /// # Errors
    ///
    /// Never fails for a valid graph; the `Result` mirrors [`GraphAnalysis::new`].
    pub fn unit(graph: &TaskGraph) -> Result<Self, GraphError> {
        Self::new(graph, &vec![1.0; graph.task_count()])
    }

    /// The per-task weights the analysis was computed with.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Static criticality of a task: its bottom level, i.e. the maximum
    /// weighted distance from the task (inclusive) to the end of the graph.
    pub fn static_criticality(&self, task: TaskId) -> f64 {
        self.bottom_level[task.index()]
    }

    /// Bottom level of a task (alias of [`GraphAnalysis::static_criticality`]).
    pub fn bottom_level(&self, task: TaskId) -> f64 {
        self.bottom_level[task.index()]
    }

    /// Top level of a task: the longest weighted chain strictly above it.
    pub fn top_level(&self, task: TaskId) -> f64 {
        self.top_level[task.index()]
    }

    /// Earliest possible start time assuming unlimited identical PEs.
    pub fn asap(&self, task: TaskId) -> f64 {
        self.asap[task.index()]
    }

    /// Latest start time that still meets the critical-path length.
    pub fn alap(&self, task: TaskId) -> f64 {
        self.alap[task.index()]
    }

    /// Scheduling slack of the task: `alap - asap`; zero on the critical path.
    pub fn slack(&self, task: TaskId) -> f64 {
        self.alap[task.index()] - self.asap[task.index()]
    }

    /// Topological depth of the task in hops from the sources.
    pub fn depth(&self, task: TaskId) -> usize {
        self.depth[task.index()]
    }

    /// Length of the critical path, a lower bound on any schedule makespan.
    pub fn makespan_lower_bound(&self) -> f64 {
        self.makespan_lower_bound
    }

    /// Tasks with (numerically) zero slack, in id order.
    pub fn critical_tasks(&self) -> Vec<TaskId> {
        (0..self.weights.len())
            .filter(|&i| (self.alap[i] - self.asap[i]).abs() < 1e-9)
            .map(TaskId)
            .collect()
    }

    /// One longest (critical) path through the graph, from a source to a sink.
    pub fn critical_path(&self, graph: &TaskGraph) -> Vec<TaskId> {
        // Start from the source with the largest bottom level, then greedily
        // follow the successor whose bottom level equals ours minus our weight.
        let start = graph
            .sources()
            .into_iter()
            .max_by(|a, b| {
                self.bottom_level[a.index()]
                    .partial_cmp(&self.bottom_level[b.index()])
                    .expect("bottom levels are finite")
            })
            .expect("valid graphs have at least one source");
        let mut path = vec![start];
        let mut current = start;
        loop {
            let remaining = self.bottom_level[current.index()] - self.weights[current.index()];
            let next = graph
                .successors(current)
                .iter()
                .copied()
                .find(|s| (self.bottom_level[s.index()] - remaining).abs() < 1e-9);
            match next {
                Some(s) => {
                    path.push(s);
                    current = s;
                }
                None => break,
            }
        }
        path
    }
}

/// Convenience helper returning the static criticality of every task using
/// the provided per-task weights.
///
/// # Errors
///
/// See [`GraphAnalysis::new`].
///
/// # Examples
///
/// ```
/// use tats_taskgraph::{analysis, TaskGraphBuilder, TaskKind};
///
/// # fn main() -> Result<(), tats_taskgraph::GraphError> {
/// let mut b = TaskGraphBuilder::new("chain", 10.0);
/// let a = b.add_task("a", TaskKind::Compute, 0);
/// let c = b.add_task("b", TaskKind::Compute, 1);
/// b.add_edge(a, c, 1.0)?;
/// let g = b.build()?;
/// let sc = analysis::static_criticalities(&g, &[2.0, 3.0])?;
/// assert_eq!(sc, vec![5.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn static_criticalities(graph: &TaskGraph, weights: &[f64]) -> Result<Vec<f64>, GraphError> {
    let analysis = GraphAnalysis::new(graph, weights)?;
    Ok(graph
        .task_ids()
        .map(|t| analysis.static_criticality(t))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TaskGraphBuilder;
    use crate::task::TaskKind;

    /// a -> b -> d, a -> c -> d with weights a=1 b=2 c=5 d=1.
    fn weighted_diamond() -> (TaskGraph, Vec<f64>) {
        let mut b = TaskGraphBuilder::new("d", 100.0);
        let a = b.add_task("a", TaskKind::Control, 0);
        let x = b.add_task("b", TaskKind::Compute, 1);
        let y = b.add_task("c", TaskKind::Dsp, 2);
        let z = b.add_task("d", TaskKind::Memory, 3);
        b.add_edge(a, x, 1.0).unwrap();
        b.add_edge(a, y, 1.0).unwrap();
        b.add_edge(x, z, 1.0).unwrap();
        b.add_edge(y, z, 1.0).unwrap();
        (b.build().unwrap(), vec![1.0, 2.0, 5.0, 1.0])
    }

    #[test]
    fn bottom_levels_on_diamond() {
        let (g, w) = weighted_diamond();
        let a = GraphAnalysis::new(&g, &w).unwrap();
        assert_eq!(a.static_criticality(TaskId(3)), 1.0);
        assert_eq!(a.static_criticality(TaskId(1)), 3.0);
        assert_eq!(a.static_criticality(TaskId(2)), 6.0);
        assert_eq!(a.static_criticality(TaskId(0)), 7.0);
    }

    #[test]
    fn top_levels_and_asap_on_diamond() {
        let (g, w) = weighted_diamond();
        let a = GraphAnalysis::new(&g, &w).unwrap();
        assert_eq!(a.top_level(TaskId(0)), 0.0);
        assert_eq!(a.asap(TaskId(1)), 1.0);
        assert_eq!(a.asap(TaskId(2)), 1.0);
        assert_eq!(a.asap(TaskId(3)), 6.0);
        assert_eq!(a.makespan_lower_bound(), 7.0);
    }

    #[test]
    fn slack_identifies_critical_path() {
        let (g, w) = weighted_diamond();
        let a = GraphAnalysis::new(&g, &w).unwrap();
        // Critical path is a -> c -> d.
        assert_eq!(a.slack(TaskId(0)), 0.0);
        assert_eq!(a.slack(TaskId(2)), 0.0);
        assert_eq!(a.slack(TaskId(3)), 0.0);
        assert!(a.slack(TaskId(1)) > 0.0);
        assert_eq!(a.critical_tasks(), vec![TaskId(0), TaskId(2), TaskId(3)]);
        assert_eq!(a.critical_path(&g), vec![TaskId(0), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn alap_never_precedes_asap() {
        let (g, w) = weighted_diamond();
        let a = GraphAnalysis::new(&g, &w).unwrap();
        for t in g.task_ids() {
            assert!(a.alap(t) + 1e-12 >= a.asap(t));
        }
    }

    #[test]
    fn depth_counts_hops() {
        let (g, w) = weighted_diamond();
        let a = GraphAnalysis::new(&g, &w).unwrap();
        assert_eq!(a.depth(TaskId(0)), 0);
        assert_eq!(a.depth(TaskId(1)), 1);
        assert_eq!(a.depth(TaskId(2)), 1);
        assert_eq!(a.depth(TaskId(3)), 2);
    }

    #[test]
    fn unit_analysis_counts_tasks_on_longest_chain() {
        let (g, _) = weighted_diamond();
        let a = GraphAnalysis::unit(&g).unwrap();
        assert_eq!(a.static_criticality(TaskId(0)), 3.0);
        assert_eq!(a.makespan_lower_bound(), 3.0);
    }

    #[test]
    fn wrong_weight_count_is_rejected() {
        let (g, _) = weighted_diamond();
        assert!(matches!(
            GraphAnalysis::new(&g, &[1.0, 2.0]),
            Err(GraphError::InvalidParameter(_))
        ));
    }

    #[test]
    fn negative_weight_is_rejected() {
        let (g, _) = weighted_diamond();
        assert!(matches!(
            GraphAnalysis::new(&g, &[1.0, -2.0, 1.0, 1.0]),
            Err(GraphError::InvalidParameter(_))
        ));
    }

    #[test]
    fn nan_weight_is_rejected() {
        let (g, _) = weighted_diamond();
        assert!(matches!(
            GraphAnalysis::new(&g, &[1.0, f64::NAN, 1.0, 1.0]),
            Err(GraphError::InvalidParameter(_))
        ));
    }

    #[test]
    fn static_criticalities_helper_matches_analysis() {
        let (g, w) = weighted_diamond();
        let a = GraphAnalysis::new(&g, &w).unwrap();
        let sc = static_criticalities(&g, &w).unwrap();
        for t in g.task_ids() {
            assert_eq!(sc[t.index()], a.static_criticality(t));
        }
    }

    #[test]
    fn chain_levels_accumulate() {
        let mut b = TaskGraphBuilder::new("chain", 100.0);
        let mut prev = b.add_task("t0", TaskKind::Compute, 0);
        for i in 1..6 {
            let t = b.add_task(format!("t{i}"), TaskKind::Compute, i);
            b.add_edge(prev, t, 1.0).unwrap();
            prev = t;
        }
        let g = b.build().unwrap();
        let a = GraphAnalysis::unit(&g).unwrap();
        assert_eq!(a.makespan_lower_bound(), 6.0);
        for (i, t) in g.task_ids().enumerate() {
            assert_eq!(a.asap(t), i as f64);
            assert_eq!(a.slack(t), 0.0);
        }
    }
}
