//! Incremental construction of task graphs.

use crate::edge::{Edge, EdgeId};
use crate::error::GraphError;
use crate::graph::TaskGraph;
use crate::task::{Task, TaskId, TaskKind};

/// Builder for [`TaskGraph`] values.
///
/// Tasks receive dense ids in insertion order. Edge insertion validates
/// endpoints and rejects self loops and duplicates eagerly; acyclicity and
/// non-emptiness are checked by [`TaskGraphBuilder::build`].
///
/// # Examples
///
/// ```
/// use tats_taskgraph::{TaskGraphBuilder, TaskKind};
///
/// # fn main() -> Result<(), tats_taskgraph::GraphError> {
/// let mut b = TaskGraphBuilder::new("two-stage", 20.0);
/// let first = b.add_task("produce", TaskKind::Compute, 0);
/// let second = b.add_task("consume", TaskKind::Compute, 1);
/// b.add_edge(first, second, 4.0)?;
/// let graph = b.build()?;
/// assert_eq!(graph.deadline(), 20.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TaskGraphBuilder {
    name: String,
    deadline: f64,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
}

impl TaskGraphBuilder {
    /// Starts a new builder for a graph with the given name and deadline.
    pub fn new(name: impl Into<String>, deadline: f64) -> Self {
        TaskGraphBuilder {
            name: name.into(),
            deadline,
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Overrides the deadline.
    pub fn set_deadline(&mut self, deadline: f64) -> &mut Self {
        self.deadline = deadline;
        self
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>, kind: TaskKind, type_id: usize) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task::new(id, name, kind, type_id));
        id
    }

    /// Adds a precedence edge carrying `data_volume` units of data.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`] if either endpoint has not been
    /// added, [`GraphError::SelfLoop`] if `src == dst`, and
    /// [`GraphError::DuplicateEdge`] if an edge between the same endpoints
    /// already exists.
    pub fn add_edge(
        &mut self,
        src: TaskId,
        dst: TaskId,
        data_volume: f64,
    ) -> Result<EdgeId, GraphError> {
        if src.index() >= self.tasks.len() {
            return Err(GraphError::UnknownTask(src));
        }
        if dst.index() >= self.tasks.len() {
            return Err(GraphError::UnknownTask(dst));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if self.edges.iter().any(|e| e.src() == src && e.dst() == dst) {
            return Err(GraphError::DuplicateEdge(src, dst));
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge::new(id, src, dst, data_volume));
        Ok(id)
    }

    /// Returns `true` if an edge between `src` and `dst` exists already.
    pub fn has_edge(&self, src: TaskId, dst: TaskId) -> bool {
        self.edges.iter().any(|e| e.src() == src && e.dst() == dst)
    }

    /// Finalises the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for a graph without tasks,
    /// [`GraphError::NonPositiveDeadline`] for an invalid deadline, and
    /// [`GraphError::CycleDetected`] if the edges form a cycle.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        TaskGraph::from_parts(self.name, self.deadline, self.tasks, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_in_insertion_order() {
        let mut b = TaskGraphBuilder::new("g", 10.0);
        for i in 0..5 {
            let id = b.add_task(format!("t{i}"), TaskKind::Compute, i);
            assert_eq!(id, TaskId(i));
        }
        assert_eq!(b.task_count(), 5);
    }

    #[test]
    fn edge_to_unknown_task_is_rejected() {
        let mut b = TaskGraphBuilder::new("g", 10.0);
        let a = b.add_task("a", TaskKind::Control, 0);
        let err = b.add_edge(a, TaskId(7), 1.0).unwrap_err();
        assert_eq!(err, GraphError::UnknownTask(TaskId(7)));
        let err = b.add_edge(TaskId(9), a, 1.0).unwrap_err();
        assert_eq!(err, GraphError::UnknownTask(TaskId(9)));
    }

    #[test]
    fn has_edge_reflects_insertions() {
        let mut b = TaskGraphBuilder::new("g", 10.0);
        let a = b.add_task("a", TaskKind::Control, 0);
        let c = b.add_task("b", TaskKind::Control, 0);
        assert!(!b.has_edge(a, c));
        b.add_edge(a, c, 1.0).unwrap();
        assert!(b.has_edge(a, c));
        assert!(!b.has_edge(c, a));
    }

    #[test]
    fn set_deadline_overrides() {
        let mut b = TaskGraphBuilder::new("g", 10.0);
        b.add_task("a", TaskKind::Control, 0);
        b.set_deadline(99.0);
        let g = b.build().unwrap();
        assert_eq!(g.deadline(), 99.0);
    }

    #[test]
    fn single_task_graph_builds() {
        let mut b = TaskGraphBuilder::new("one", 5.0);
        b.add_task("only", TaskKind::Compute, 0);
        let g = b.build().unwrap();
        assert_eq!(g.task_count(), 1);
        assert_eq!(g.sources(), g.sinks());
    }
}
