//! Graphviz DOT export for task graphs.

use std::fmt::Write as _;

use crate::graph::TaskGraph;

/// Renders a task graph in Graphviz DOT syntax.
///
/// Nodes are labelled with the task name, kind and type id; edges are
/// labelled with their data volume. The output can be piped to `dot -Tsvg`
/// for visual inspection of generated benchmarks.
///
/// # Examples
///
/// ```
/// use tats_taskgraph::{dot, TaskGraphBuilder, TaskKind};
///
/// # fn main() -> Result<(), tats_taskgraph::GraphError> {
/// let mut b = TaskGraphBuilder::new("g", 10.0);
/// let a = b.add_task("a", TaskKind::Compute, 0);
/// let c = b.add_task("b", TaskKind::Dsp, 1);
/// b.add_edge(a, c, 3.0)?;
/// let text = dot::to_dot(&b.build()?);
/// assert!(text.starts_with("digraph"));
/// assert!(text.contains("T0 -> T1"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(graph: &TaskGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  label=\"{} (deadline {})\";",
        graph.name(),
        graph.deadline()
    );
    for task in graph.tasks() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{} / type {}\"];",
            task.id(),
            task.name(),
            task.kind(),
            task.type_id()
        );
    }
    for edge in graph.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{:.1}\"];",
            edge.src(),
            edge.dst(),
            edge.data_volume()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::builder::TaskGraphBuilder;
    use crate::task::TaskKind;

    #[test]
    fn dot_contains_every_task_and_edge() {
        let g = Benchmark::Bm1.task_graph().unwrap();
        let text = to_dot(&g);
        for task in g.tasks() {
            assert!(text.contains(&task.id().to_string()));
        }
        assert_eq!(text.matches(" -> ").count(), g.edge_count());
    }

    #[test]
    fn dot_is_braced_and_named() {
        let mut b = TaskGraphBuilder::new("named", 10.0);
        b.add_task("only", TaskKind::Control, 0);
        let text = to_dot(&b.build().unwrap());
        assert!(text.starts_with("digraph \"named\""));
        assert!(text.trim_end().ends_with('}'));
    }
}
