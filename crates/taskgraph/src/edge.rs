//! Dependence edges between tasks.

use std::fmt;

use crate::task::TaskId;

/// Identifier of an edge inside a [`crate::TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(value: usize) -> Self {
        EdgeId(value)
    }
}

/// A precedence/data-dependence edge of the task graph.
///
/// `src` must complete before `dst` may start. The `data_volume` records the
/// amount of data communicated along the edge (abstract units); schedulers
/// that model inter-PE communication can translate it into a communication
/// delay, while intra-PE communication is assumed free, as in the paper's
/// co-synthesis substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    id: EdgeId,
    src: TaskId,
    dst: TaskId,
    data_volume: f64,
}

impl Edge {
    /// Creates a new edge.
    pub fn new(id: EdgeId, src: TaskId, dst: TaskId, data_volume: f64) -> Self {
        Edge {
            id,
            src,
            dst,
            data_volume,
        }
    }

    /// The edge identifier within its graph.
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// Source (producer) task.
    pub fn src(&self) -> TaskId {
        self.src
    }

    /// Destination (consumer) task.
    pub fn dst(&self) -> TaskId {
        self.dst
    }

    /// Amount of data communicated along the edge, in abstract units.
    pub fn data_volume(&self) -> f64 {
        self.data_volume
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({} units)",
            self.id, self.src, self.dst, self.data_volume
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_accessors() {
        let e = Edge::new(EdgeId(0), TaskId(1), TaskId(2), 64.0);
        assert_eq!(e.id(), EdgeId(0));
        assert_eq!(e.src(), TaskId(1));
        assert_eq!(e.dst(), TaskId(2));
        assert_eq!(e.data_volume(), 64.0);
    }

    #[test]
    fn edge_display_mentions_both_endpoints() {
        let e = Edge::new(EdgeId(3), TaskId(4), TaskId(9), 8.0);
        let s = e.to_string();
        assert!(s.contains("T4"));
        assert!(s.contains("T9"));
        assert!(s.contains("E3"));
    }

    #[test]
    fn edge_id_conversions() {
        assert_eq!(EdgeId::from(11).index(), 11);
        assert_eq!(EdgeId(11).to_string(), "E11");
    }
}
