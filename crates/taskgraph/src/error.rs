//! Error types for task-graph construction and analysis.

use std::fmt;

use crate::task::TaskId;

/// Errors produced while building or validating a [`crate::TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referred to a task id that does not exist in the graph.
    UnknownTask(TaskId),
    /// A duplicate task id was inserted.
    DuplicateTask(TaskId),
    /// A duplicate edge (same source and destination) was inserted.
    DuplicateEdge(TaskId, TaskId),
    /// An edge connects a task to itself.
    SelfLoop(TaskId),
    /// The graph contains a cycle, so it is not a valid task DAG.
    CycleDetected,
    /// The graph has no tasks.
    Empty,
    /// The deadline is not strictly positive.
    NonPositiveDeadline(f64),
    /// A generator or builder parameter was out of its valid range.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTask(id) => write!(f, "unknown task id {id}"),
            GraphError::DuplicateTask(id) => write!(f, "duplicate task id {id}"),
            GraphError::DuplicateEdge(s, d) => {
                write!(f, "duplicate edge from task {s} to task {d}")
            }
            GraphError::SelfLoop(id) => write!(f, "self loop on task {id}"),
            GraphError::CycleDetected => write!(f, "task graph contains a cycle"),
            GraphError::Empty => write!(f, "task graph has no tasks"),
            GraphError::NonPositiveDeadline(d) => {
                write!(f, "deadline must be positive, got {d}")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty_and_lowercase() {
        let errors = vec![
            GraphError::UnknownTask(TaskId(3)),
            GraphError::DuplicateTask(TaskId(1)),
            GraphError::DuplicateEdge(TaskId(0), TaskId(2)),
            GraphError::SelfLoop(TaskId(5)),
            GraphError::CycleDetected,
            GraphError::Empty,
            GraphError::NonPositiveDeadline(-1.0),
            GraphError::InvalidParameter("layers must be >= 1".to_string()),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
