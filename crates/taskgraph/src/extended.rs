//! Extended benchmark suite for scalability studies.
//!
//! The paper evaluates four graphs of 19–51 tasks.  The scalability bench
//! (and the ablation studies) additionally need a family of structurally
//! similar graphs spanning a wider size range; this module generates that
//! family deterministically so every run sweeps the same workloads.

use crate::error::GraphError;
use crate::generator::GeneratorConfig;
use crate::graph::TaskGraph;

/// Default task counts of the scalability family.
pub const DEFAULT_SCALABILITY_SIZES: [usize; 5] = [25, 50, 100, 200, 400];

/// Ratio of edges to tasks used by the extended graphs (matches the paper's
/// benchmarks, which carry roughly 1.1–1.2 edges per task).
pub const EDGE_RATIO: f64 = 1.15;

/// Deadline granted per task (time units); mirrors the paper's benchmarks,
/// whose deadlines are roughly 40 time units per task.
pub const DEADLINE_PER_TASK: f64 = 42.0;

/// Generates one extended benchmark with the given number of tasks.
///
/// Edges and deadline are derived from the task count via [`EDGE_RATIO`] and
/// [`DEADLINE_PER_TASK`]; the seed makes the graph reproducible.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for a task count below 2 and
/// propagates generator errors.
///
/// # Examples
///
/// ```
/// use tats_taskgraph::extended;
///
/// # fn main() -> Result<(), tats_taskgraph::GraphError> {
/// let graph = extended::graph_with_size(100, 7)?;
/// assert_eq!(graph.task_count(), 100);
/// assert!(graph.deadline() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn graph_with_size(tasks: usize, seed: u64) -> Result<TaskGraph, GraphError> {
    if tasks < 2 {
        return Err(GraphError::InvalidParameter(format!(
            "extended benchmarks need at least 2 tasks, got {tasks}"
        )));
    }
    let edges = ((tasks as f64) * EDGE_RATIO).round() as usize;
    let deadline = tasks as f64 * DEADLINE_PER_TASK;
    GeneratorConfig::new(format!("Ext{tasks}"), tasks, edges, deadline)
        .with_seed(seed ^ (tasks as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .with_type_count(10)
        .generate()
}

/// Generates the default scalability family (25–400 tasks).
///
/// # Errors
///
/// Propagates the first generation error, if any.
pub fn scalability_suite(seed: u64) -> Result<Vec<TaskGraph>, GraphError> {
    DEFAULT_SCALABILITY_SIZES
        .iter()
        .map(|&size| graph_with_size(size, seed))
        .collect()
}

/// Generates a custom-size family.
///
/// # Errors
///
/// Propagates the first generation error, if any.
pub fn suite_with_sizes(sizes: &[usize], seed: u64) -> Result<Vec<TaskGraph>, GraphError> {
    sizes
        .iter()
        .map(|&size| graph_with_size(size, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GraphAnalysis;

    #[test]
    fn suite_produces_requested_sizes() {
        let suite = scalability_suite(1).expect("suite");
        assert_eq!(suite.len(), DEFAULT_SCALABILITY_SIZES.len());
        for (graph, &size) in suite.iter().zip(DEFAULT_SCALABILITY_SIZES.iter()) {
            assert_eq!(graph.task_count(), size);
            assert!(
                graph.edge_count() >= size - 1,
                "graph must be connected enough"
            );
            assert!(graph.deadline() > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = graph_with_size(50, 3).expect("graph");
        let b = graph_with_size(50, 3).expect("graph");
        let c = graph_with_size(50, 4).expect("graph");
        assert_eq!(a.edge_count(), b.edge_count());
        let volumes_a: Vec<f64> = a.edges().map(|e| e.data_volume()).collect();
        let volumes_b: Vec<f64> = b.edges().map(|e| e.data_volume()).collect();
        assert_eq!(volumes_a, volumes_b);
        // Different seed should (overwhelmingly likely) differ somewhere.
        let volumes_c: Vec<f64> = c.edges().map(|e| e.data_volume()).collect();
        assert!(volumes_a != volumes_c || a.edge_count() != c.edge_count());
    }

    #[test]
    fn extended_graphs_are_valid_dags() {
        for graph in scalability_suite(9).expect("suite") {
            // Topological order covers every task exactly once.
            assert_eq!(graph.topological_order().len(), graph.task_count());
            // The unit-weight analysis succeeds (acyclic, connected indices).
            let analysis = GraphAnalysis::unit(&graph).expect("analysis");
            assert!(analysis.makespan_lower_bound() > 0.0);
        }
    }

    #[test]
    fn tiny_sizes_are_rejected() {
        assert!(graph_with_size(1, 0).is_err());
        assert!(graph_with_size(0, 0).is_err());
        assert!(suite_with_sizes(&[10, 1], 0).is_err());
    }

    #[test]
    fn custom_sizes_are_honoured() {
        let suite = suite_with_sizes(&[12, 34], 5).expect("suite");
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].task_count(), 12);
        assert_eq!(suite[1].task_count(), 34);
    }
}
