//! Seeded pseudo-random task-graph generation.
//!
//! The paper evaluates the schedulers on four synthetic benchmarks generated
//! with TGFF-style tooling; only the task count, edge count and deadline of
//! each benchmark are published. This module provides an equivalent layered
//! DAG generator: tasks are distributed over layers, every non-source task is
//! connected to an earlier layer, and additional forward edges are added
//! until the requested edge count is reached. Generation is fully
//! deterministic for a given [`GeneratorConfig`] (including the seed).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::TaskGraphBuilder;
use crate::error::GraphError;
use crate::graph::TaskGraph;
use crate::task::{TaskId, TaskKind};

/// Parameters of the layered random DAG generator.
///
/// # Examples
///
/// ```
/// use tats_taskgraph::GeneratorConfig;
///
/// # fn main() -> Result<(), tats_taskgraph::GraphError> {
/// let graph = GeneratorConfig::new("demo", 19, 19, 790.0)
///     .with_seed(42)
///     .generate()?;
/// assert_eq!(graph.task_count(), 19);
/// assert_eq!(graph.edge_count(), 19);
/// assert_eq!(graph.deadline(), 790.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    name: String,
    tasks: usize,
    edges: usize,
    deadline: f64,
    layers: Option<usize>,
    type_count: usize,
    data_volume_range: (f64, f64),
    seed: u64,
}

impl GeneratorConfig {
    /// Creates a configuration for a graph with exactly `tasks` tasks,
    /// `edges` edges and the given deadline.
    pub fn new(name: impl Into<String>, tasks: usize, edges: usize, deadline: f64) -> Self {
        GeneratorConfig {
            name: name.into(),
            tasks,
            edges,
            deadline,
            layers: None,
            type_count: 8,
            data_volume_range: (8.0, 128.0),
            seed: 0xC0FFEE,
        }
    }

    /// Fixes the number of layers instead of deriving it from the task count.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = Some(layers);
        self
    }

    /// Number of distinct task types (rows of the technology-library tables).
    pub fn with_type_count(mut self, type_count: usize) -> Self {
        self.type_count = type_count;
        self
    }

    /// Range of per-edge data volumes, sampled uniformly.
    pub fn with_data_volume_range(mut self, min: f64, max: f64) -> Self {
        self.data_volume_range = (min, max);
        self
    }

    /// Seed of the pseudo-random generator; equal configurations generate
    /// byte-identical graphs.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Requested task count.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Requested edge count.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Requested deadline.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// Generates the task graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] when the requested edge count
    /// cannot be realised as a simple DAG over `tasks` tasks, when `tasks` is
    /// zero, or when the configured ranges are malformed; construction errors
    /// from the underlying builder are propagated unchanged.
    pub fn generate(&self) -> Result<TaskGraph, GraphError> {
        if self.tasks == 0 {
            return Err(GraphError::InvalidParameter(
                "task count must be at least 1".to_string(),
            ));
        }
        let max_edges = self.tasks * (self.tasks - 1) / 2;
        if self.edges > max_edges {
            return Err(GraphError::InvalidParameter(format!(
                "{} edges requested but a simple DAG over {} tasks has at most {max_edges}",
                self.edges, self.tasks
            )));
        }
        if self.type_count == 0 {
            return Err(GraphError::InvalidParameter(
                "type count must be at least 1".to_string(),
            ));
        }
        let (dv_min, dv_max) = self.data_volume_range;
        if !(dv_min.is_finite() && dv_max.is_finite()) || dv_min < 0.0 || dv_max < dv_min {
            return Err(GraphError::InvalidParameter(format!(
                "malformed data volume range [{dv_min}, {dv_max}]"
            )));
        }
        if let Some(layers) = self.layers {
            if layers == 0 || layers > self.tasks {
                return Err(GraphError::InvalidParameter(format!(
                    "layer count {layers} must be in 1..={}",
                    self.tasks
                )));
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let layer_count = self
            .layers
            .unwrap_or_else(|| ((self.tasks as f64).sqrt().round() as usize).clamp(1, self.tasks));

        // Distribute tasks over layers: each layer receives at least one.
        let mut layer_of = vec![0usize; self.tasks];
        for (i, layer) in layer_of.iter_mut().enumerate().take(layer_count) {
            *layer = i;
        }
        for layer in layer_of.iter_mut().skip(layer_count) {
            *layer = rng.gen_range(0..layer_count);
        }
        layer_of.shuffle(&mut rng);
        // Normalise: sort task indices by layer so task ids grow with depth,
        // which keeps generated graphs easy to read in DOT dumps.
        layer_of.sort_unstable();

        let mut builder = TaskGraphBuilder::new(self.name.clone(), self.deadline);
        for (i, &layer) in layer_of.iter().enumerate() {
            let kind = TaskKind::ALL[rng.gen_range(0..TaskKind::ALL.len())];
            let type_id = rng.gen_range(0..self.type_count);
            builder.add_task(format!("{}_t{}", self.name, i), kind, type_id);
            debug_assert!(layer < layer_count);
        }

        // Mandatory connectivity edges: every task beyond layer 0 receives one
        // predecessor from an earlier layer, as long as the edge budget lasts.
        let mut edges_added = 0usize;
        let mut candidates_by_layer: Vec<Vec<usize>> = vec![Vec::new(); layer_count];
        for (i, &layer) in layer_of.iter().enumerate() {
            candidates_by_layer[layer].push(i);
        }
        let mut connect_order: Vec<usize> = (0..self.tasks).filter(|&i| layer_of[i] > 0).collect();
        connect_order.shuffle(&mut rng);
        for &dst in &connect_order {
            if edges_added >= self.edges {
                break;
            }
            let dst_layer = layer_of[dst];
            let src_layer = rng.gen_range(0..dst_layer);
            let src = candidates_by_layer[src_layer]
                [rng.gen_range(0..candidates_by_layer[src_layer].len())];
            if !builder.has_edge(TaskId(src), TaskId(dst)) {
                let dv = rng.gen_range(dv_min..=dv_max);
                builder.add_edge(TaskId(src), TaskId(dst), dv)?;
                edges_added += 1;
            }
        }

        // Fill up with random forward edges between distinct layers.
        let mut attempts = 0usize;
        let attempt_limit = 50 * self.edges.max(self.tasks) + 1000;
        while edges_added < self.edges && attempts < attempt_limit {
            attempts += 1;
            let a = rng.gen_range(0..self.tasks);
            let b = rng.gen_range(0..self.tasks);
            if a == b || layer_of[a] == layer_of[b] {
                continue;
            }
            let (src, dst) = if layer_of[a] < layer_of[b] {
                (a, b)
            } else {
                (b, a)
            };
            if builder.has_edge(TaskId(src), TaskId(dst)) {
                continue;
            }
            let dv = rng.gen_range(dv_min..=dv_max);
            builder.add_edge(TaskId(src), TaskId(dst), dv)?;
            edges_added += 1;
        }

        // Deterministic fall-back: exhaustive scan over all id-ordered pairs.
        // Task ids are sorted by layer, so an edge from a lower id to a higher
        // id can never create a cycle even when both tasks share a layer.
        if edges_added < self.edges {
            'outer: for src in 0..self.tasks {
                for dst in (src + 1)..self.tasks {
                    if !builder.has_edge(TaskId(src), TaskId(dst)) {
                        let dv = rng.gen_range(dv_min..=dv_max);
                        builder.add_edge(TaskId(src), TaskId(dst), dv)?;
                        edges_added += 1;
                        if edges_added == self.edges {
                            break 'outer;
                        }
                    }
                }
            }
        }

        debug_assert_eq!(
            edges_added, self.edges,
            "edge budget is validated against the complete-DAG bound upfront"
        );

        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_matches_requested_counts() {
        for &(t, e) in &[(19usize, 19usize), (35, 40), (39, 43), (51, 60), (10, 9)] {
            let g = GeneratorConfig::new("g", t, e, 1000.0)
                .with_seed(7)
                .generate()
                .unwrap();
            assert_eq!(g.task_count(), t);
            assert_eq!(g.edge_count(), e);
        }
    }

    #[test]
    fn generation_is_deterministic_for_equal_seeds() {
        let a = GeneratorConfig::new("g", 30, 45, 500.0)
            .with_seed(11)
            .generate()
            .unwrap();
        let b = GeneratorConfig::new("g", 30, 45, 500.0)
            .with_seed(11)
            .generate()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = GeneratorConfig::new("g", 30, 45, 500.0)
            .with_seed(1)
            .generate()
            .unwrap();
        let b = GeneratorConfig::new("g", 30, 45, 500.0)
            .with_seed(2)
            .generate()
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_tasks_rejected() {
        assert!(matches!(
            GeneratorConfig::new("g", 0, 0, 10.0).generate(),
            Err(GraphError::InvalidParameter(_))
        ));
    }

    #[test]
    fn too_many_edges_rejected() {
        assert!(matches!(
            GeneratorConfig::new("g", 4, 7, 10.0).generate(),
            Err(GraphError::InvalidParameter(_))
        ));
    }

    #[test]
    fn malformed_data_volume_range_rejected() {
        assert!(matches!(
            GeneratorConfig::new("g", 5, 4, 10.0)
                .with_data_volume_range(10.0, 1.0)
                .generate(),
            Err(GraphError::InvalidParameter(_))
        ));
    }

    #[test]
    fn zero_layers_rejected() {
        assert!(matches!(
            GeneratorConfig::new("g", 5, 4, 10.0)
                .with_layers(0)
                .generate(),
            Err(GraphError::InvalidParameter(_))
        ));
    }

    #[test]
    fn type_ids_stay_below_type_count() {
        let g = GeneratorConfig::new("g", 40, 60, 100.0)
            .with_type_count(3)
            .generate()
            .unwrap();
        assert!(g.tasks().all(|t| t.type_id() < 3));
    }

    #[test]
    fn data_volumes_stay_in_range() {
        let g = GeneratorConfig::new("g", 40, 60, 100.0)
            .with_data_volume_range(2.0, 4.0)
            .generate()
            .unwrap();
        assert!(g
            .edges()
            .all(|e| e.data_volume() >= 2.0 && e.data_volume() <= 4.0));
    }

    #[test]
    fn dense_graph_with_single_fallback_path() {
        // Forces the exhaustive fall-back: 2 layers over 6 tasks can host at
        // most 9 cross-layer edges with a 3/3 split, but the generator may
        // need the deterministic scan to find the last few.
        let g = GeneratorConfig::new("g", 6, 8, 10.0)
            .with_layers(2)
            .with_seed(3)
            .generate()
            .unwrap();
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn single_task_graph_generates() {
        let g = GeneratorConfig::new("one", 1, 0, 10.0).generate().unwrap();
        assert_eq!(g.task_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
