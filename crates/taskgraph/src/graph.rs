//! The task-graph container.

use std::collections::HashSet;
use std::fmt;

use crate::edge::{Edge, EdgeId};
use crate::error::GraphError;
use crate::task::{Task, TaskId};

/// A directed acyclic task graph with a real-time deadline.
///
/// A `TaskGraph` is the unit of work handed to the allocation and scheduling
/// procedure: every task must be mapped to a processing element and scheduled
/// such that all precedence edges are respected and the sink task finishes no
/// later than [`TaskGraph::deadline`].
///
/// Graphs are constructed through [`crate::TaskGraphBuilder`], which
/// validates acyclicity and referential integrity, so every `TaskGraph`
/// instance is a well-formed DAG by construction.
///
/// # Examples
///
/// ```
/// use tats_taskgraph::{TaskGraphBuilder, TaskKind};
///
/// # fn main() -> Result<(), tats_taskgraph::GraphError> {
/// let mut b = TaskGraphBuilder::new("pipeline", 100.0);
/// let src = b.add_task("read", TaskKind::Memory, 0);
/// let mid = b.add_task("fft", TaskKind::Dsp, 1);
/// let dst = b.add_task("emit", TaskKind::Control, 2);
/// b.add_edge(src, mid, 16.0)?;
/// b.add_edge(mid, dst, 16.0)?;
/// let graph = b.build()?;
/// assert_eq!(graph.task_count(), 3);
/// assert_eq!(graph.edge_count(), 2);
/// assert_eq!(graph.sources(), vec![src]);
/// assert_eq!(graph.sinks(), vec![dst]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    name: String,
    deadline: f64,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    successors: Vec<Vec<TaskId>>,
    predecessors: Vec<Vec<TaskId>>,
    topo_order: Vec<TaskId>,
}

impl TaskGraph {
    /// Assembles a graph from parts; used by the builder after validation.
    pub(crate) fn from_parts(
        name: String,
        deadline: f64,
        tasks: Vec<Task>,
        edges: Vec<Edge>,
    ) -> Result<Self, GraphError> {
        if tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        if deadline <= 0.0 || !deadline.is_finite() {
            return Err(GraphError::NonPositiveDeadline(deadline));
        }
        let n = tasks.len();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        let mut seen = HashSet::new();
        for e in &edges {
            let (s, d) = (e.src(), e.dst());
            if s.index() >= n {
                return Err(GraphError::UnknownTask(s));
            }
            if d.index() >= n {
                return Err(GraphError::UnknownTask(d));
            }
            if s == d {
                return Err(GraphError::SelfLoop(s));
            }
            if !seen.insert((s, d)) {
                return Err(GraphError::DuplicateEdge(s, d));
            }
            successors[s.index()].push(d);
            predecessors[d.index()].push(s);
        }
        let topo_order = topological_order(n, &successors, &predecessors)?;
        Ok(TaskGraph {
            name,
            deadline,
            tasks,
            edges,
            successors,
            predecessors,
            topo_order,
        })
    }

    /// Name of the graph (e.g. `"Bm1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The real-time deadline by which the whole graph must complete.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Returns the task with the given id, or `None` if it is out of range.
    pub fn get_task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// Returns the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all tasks in id order.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Iterates over all task ids in id order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Iterates over all edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Direct successors (consumers) of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.successors[id.index()]
    }

    /// Direct predecessors (producers) of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.predecessors[id.index()]
    }

    /// The edge connecting `src` to `dst`, if any.
    pub fn edge_between(&self, src: TaskId, dst: TaskId) -> Option<&Edge> {
        self.edges.iter().find(|e| e.src() == src && e.dst() == dst)
    }

    /// Tasks with no predecessors, in id order.
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.predecessors[t.index()].is_empty())
            .collect()
    }

    /// Tasks with no successors, in id order.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.successors[t.index()].is_empty())
            .collect()
    }

    /// A topological ordering of the tasks (stable across calls).
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo_order
    }

    /// Returns `true` if `ancestor` can reach `descendant` through directed
    /// edges (including the trivial case `ancestor == descendant`).
    pub fn reaches(&self, ancestor: TaskId, descendant: TaskId) -> bool {
        if ancestor == descendant {
            return true;
        }
        let mut stack = vec![ancestor];
        let mut visited = vec![false; self.tasks.len()];
        while let Some(t) = stack.pop() {
            if t == descendant {
                return true;
            }
            if visited[t.index()] {
                continue;
            }
            visited[t.index()] = true;
            stack.extend(self.successors[t.index()].iter().copied());
        }
        false
    }
}

impl fmt::Display for TaskGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} tasks, {} edges, deadline {})",
            self.name,
            self.task_count(),
            self.edge_count(),
            self.deadline
        )
    }
}

/// Kahn's algorithm; returns an error when a cycle exists.
fn topological_order(
    n: usize,
    successors: &[Vec<TaskId>],
    predecessors: &[Vec<TaskId>],
) -> Result<Vec<TaskId>, GraphError> {
    let mut indegree: Vec<usize> = predecessors.iter().map(|p| p.len()).collect();
    // Use a sorted frontier so the order is deterministic.
    let mut frontier: Vec<TaskId> = (0..n).filter(|&i| indegree[i] == 0).map(TaskId).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(t) = frontier.pop() {
        order.push(t);
        for &s in &successors[t.index()] {
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                frontier.push(s);
            }
        }
        // Keep the frontier sorted descending so `pop` yields the smallest id.
        frontier.sort_unstable_by(|a, b| b.cmp(a));
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(GraphError::CycleDetected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TaskGraphBuilder;
    use crate::task::TaskKind;

    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("diamond", 50.0);
        let a = b.add_task("a", TaskKind::Control, 0);
        let l = b.add_task("left", TaskKind::Compute, 1);
        let r = b.add_task("right", TaskKind::Dsp, 2);
        let z = b.add_task("z", TaskKind::Memory, 3);
        b.add_edge(a, l, 1.0).unwrap();
        b.add_edge(a, r, 2.0).unwrap();
        b.add_edge(l, z, 3.0).unwrap();
        b.add_edge(r, z, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
        assert_eq!(g.successors(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert_eq!(g.predecessors(TaskId(3)), &[TaskId(1), TaskId(2)]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        assert_eq!(order.len(), 4);
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        for e in g.edges() {
            assert!(pos(e.src()) < pos(e.dst()), "edge {} violated", e);
        }
    }

    #[test]
    fn reaches_is_transitive_on_diamond() {
        let g = diamond();
        assert!(g.reaches(TaskId(0), TaskId(3)));
        assert!(g.reaches(TaskId(0), TaskId(1)));
        assert!(g.reaches(TaskId(1), TaskId(3)));
        assert!(!g.reaches(TaskId(1), TaskId(2)));
        assert!(!g.reaches(TaskId(3), TaskId(0)));
        assert!(g.reaches(TaskId(2), TaskId(2)));
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = TaskGraphBuilder::new("cycle", 10.0);
        let a = b.add_task("a", TaskKind::Control, 0);
        let c = b.add_task("b", TaskKind::Control, 0);
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, a, 1.0).unwrap();
        assert_eq!(b.build().unwrap_err(), GraphError::CycleDetected);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let b = TaskGraphBuilder::new("empty", 10.0);
        assert_eq!(b.build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn non_positive_deadline_is_rejected() {
        let mut b = TaskGraphBuilder::new("bad", 0.0);
        b.add_task("a", TaskKind::Control, 0);
        assert_eq!(b.build().unwrap_err(), GraphError::NonPositiveDeadline(0.0));
    }

    #[test]
    fn self_loop_is_rejected_eagerly() {
        let mut b = TaskGraphBuilder::new("loop", 10.0);
        let a = b.add_task("a", TaskKind::Control, 0);
        assert_eq!(b.add_edge(a, a, 1.0).unwrap_err(), GraphError::SelfLoop(a));
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = TaskGraphBuilder::new("dup", 10.0);
        let a = b.add_task("a", TaskKind::Control, 0);
        let c = b.add_task("b", TaskKind::Control, 0);
        b.add_edge(a, c, 1.0).unwrap();
        assert_eq!(
            b.add_edge(a, c, 2.0).unwrap_err(),
            GraphError::DuplicateEdge(a, c)
        );
    }

    #[test]
    fn edge_between_finds_the_edge() {
        let g = diamond();
        let e = g.edge_between(TaskId(0), TaskId(2)).unwrap();
        assert_eq!(e.data_volume(), 2.0);
        assert!(g.edge_between(TaskId(2), TaskId(0)).is_none());
    }

    #[test]
    fn display_contains_counts() {
        let g = diamond();
        let s = g.to_string();
        assert!(s.contains("4 tasks"));
        assert!(s.contains("4 edges"));
    }

    #[test]
    fn get_task_handles_out_of_range() {
        let g = diamond();
        assert!(g.get_task(TaskId(0)).is_some());
        assert!(g.get_task(TaskId(99)).is_none());
    }

    #[test]
    fn topo_order_is_deterministic() {
        let g1 = diamond();
        let g2 = diamond();
        assert_eq!(g1.topological_order(), g2.topological_order());
    }
}
