//! Task-graph substrate for thermal-aware task allocation and scheduling.
//!
//! This crate provides the directed-acyclic task graphs consumed by the
//! allocation and scheduling procedure (ASP) of
//! *Hung et al., "Thermal-Aware Task Allocation and Scheduling for Embedded
//! Systems", DATE 2005*:
//!
//! * [`TaskGraph`] / [`TaskGraphBuilder`] — validated DAG container with a
//!   real-time deadline,
//! * [`analysis::GraphAnalysis`] — static criticality, ASAP/ALAP levels,
//!   slack and critical paths,
//! * [`GeneratorConfig`] — seeded TGFF-style layered graph generator,
//! * [`Benchmark`] — the paper's four benchmarks (`Bm1`–`Bm4`),
//! * [`extended`] — a deterministic scalability family (25–400 tasks),
//! * [`tgff`] — a TGFF-inspired text interchange format,
//! * [`dot`] — Graphviz export.
//!
//! # Examples
//!
//! Build the first paper benchmark and compute static criticalities:
//!
//! ```
//! use tats_taskgraph::{analysis::GraphAnalysis, Benchmark};
//!
//! # fn main() -> Result<(), tats_taskgraph::GraphError> {
//! let graph = Benchmark::Bm1.task_graph()?;
//! let analysis = GraphAnalysis::unit(&graph)?;
//! let most_critical = graph
//!     .task_ids()
//!     .max_by(|a, b| {
//!         analysis
//!             .static_criticality(*a)
//!             .total_cmp(&analysis.static_criticality(*b))
//!     })
//!     .expect("benchmark graphs are non-empty");
//! assert!(analysis.static_criticality(most_critical) >= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod benchmarks;
mod builder;
pub mod dot;
mod edge;
mod error;
pub mod extended;
mod generator;
mod graph;
mod task;
pub mod tgff;

pub use benchmarks::{all_benchmarks, Benchmark};
pub use builder::TaskGraphBuilder;
pub use edge::{Edge, EdgeId};
pub use error::GraphError;
pub use generator::GeneratorConfig;
pub use graph::TaskGraph;
pub use task::{Task, TaskId, TaskKind};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    prop_compose! {
        fn config_strategy()(tasks in 1usize..40, extra in 0usize..30, seed in any::<u64>())
            -> GeneratorConfig {
            let max_edges = tasks * (tasks.saturating_sub(1)) / 2;
            let edges = (tasks.saturating_sub(1) + extra).min(max_edges);
            GeneratorConfig::new("prop", tasks, edges, 1000.0).with_seed(seed)
        }
    }

    proptest! {
        /// Generated graphs are always acyclic DAGs with the requested sizes.
        #[test]
        fn generated_graphs_are_well_formed(config in config_strategy()) {
            let graph = config.generate().unwrap();
            prop_assert_eq!(graph.task_count(), config.tasks());
            prop_assert_eq!(graph.edge_count(), config.edges());
            // Topological order covers every task exactly once.
            let order = graph.topological_order();
            prop_assert_eq!(order.len(), graph.task_count());
            let pos: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            for edge in graph.edges() {
                prop_assert!(pos[&edge.src()] < pos[&edge.dst()]);
            }
        }

        /// Static criticality of a task is always at least its own weight and
        /// at least the criticality of each successor plus its own weight.
        #[test]
        fn static_criticality_dominates_successors(config in config_strategy()) {
            let graph = config.generate().unwrap();
            let weights: Vec<f64> =
                (0..graph.task_count()).map(|i| 1.0 + (i % 5) as f64).collect();
            let analysis = analysis::GraphAnalysis::new(&graph, &weights).unwrap();
            for t in graph.task_ids() {
                let sc = analysis.static_criticality(t);
                prop_assert!(sc >= weights[t.index()]);
                for &s in graph.successors(t) {
                    prop_assert!(
                        sc >= analysis.static_criticality(s) + weights[t.index()] - 1e-9
                    );
                }
            }
        }

        /// ASAP never exceeds ALAP and the critical path bound is consistent.
        #[test]
        fn asap_alap_are_consistent(config in config_strategy()) {
            let graph = config.generate().unwrap();
            let analysis = analysis::GraphAnalysis::unit(&graph).unwrap();
            for t in graph.task_ids() {
                prop_assert!(analysis.asap(t) <= analysis.alap(t) + 1e-9);
                prop_assert!(
                    analysis.asap(t) + 1.0 <= analysis.makespan_lower_bound() + 1e-9
                );
            }
        }

        /// Every generated graph survives a TGFF round trip with its
        /// structure, kinds, type ids and data volumes intact.
        #[test]
        fn tgff_round_trip_is_lossless(config in config_strategy()) {
            let graph = config.generate().unwrap();
            let back = tgff::from_tgff(&tgff::to_tgff(&graph)).unwrap();
            prop_assert_eq!(back.task_count(), graph.task_count());
            prop_assert_eq!(back.edge_count(), graph.edge_count());
            prop_assert!((back.deadline() - graph.deadline()).abs() < 1e-9);
            for (a, b) in graph.tasks().zip(back.tasks()) {
                prop_assert_eq!(a.kind(), b.kind());
                prop_assert_eq!(a.type_id(), b.type_id());
            }
            for (a, b) in graph.edges().zip(back.edges()) {
                prop_assert_eq!(a.src(), b.src());
                prop_assert_eq!(a.dst(), b.dst());
                prop_assert!((a.data_volume() - b.data_volume()).abs() < 1e-9);
            }
        }
    }
}
