//! Task identifiers and task metadata.

use std::fmt;

/// Identifier of a task inside a [`crate::TaskGraph`].
///
/// Task ids are dense indices assigned by the graph builder in insertion
/// order; they can be used to index per-task vectors directly via
/// [`TaskId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl TaskId {
    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(value: usize) -> Self {
        TaskId(value)
    }
}

/// Functional class of a task.
///
/// The technology library uses the kind to bias which processing elements
/// execute a task efficiently (e.g. a DSP is fast on signal-processing
/// kernels, an ASIC-like accelerator on its dedicated kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Control-dominated task (branching, bookkeeping).
    Control,
    /// Data-parallel / signal-processing kernel.
    Dsp,
    /// Memory-bound streaming task.
    Memory,
    /// Generic compute task.
    Compute,
}

impl TaskKind {
    /// All task kinds, in a stable order.
    pub const ALL: [TaskKind; 4] = [
        TaskKind::Control,
        TaskKind::Dsp,
        TaskKind::Memory,
        TaskKind::Compute,
    ];

    /// Returns a stable small integer used to index per-kind tables.
    pub fn index(self) -> usize {
        match self {
            TaskKind::Control => 0,
            TaskKind::Dsp => 1,
            TaskKind::Memory => 2,
            TaskKind::Compute => 3,
        }
    }

    /// Returns the kind with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TaskKind::Control => "control",
            TaskKind::Dsp => "dsp",
            TaskKind::Memory => "memory",
            TaskKind::Compute => "compute",
        };
        f.write_str(name)
    }
}

/// A node of the task graph.
///
/// A task carries a symbolic name, a [`TaskKind`] used by the technology
/// library, and a *type id*: tasks with the same type id share one row in
/// the worst-case execution time / power tables (mirroring TGFF's task
/// types).
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    id: TaskId,
    name: String,
    kind: TaskKind,
    type_id: usize,
}

impl Task {
    /// Creates a new task.
    pub fn new(id: TaskId, name: impl Into<String>, kind: TaskKind, type_id: usize) -> Self {
        Task {
            id,
            name: name.into(),
            kind,
            type_id,
        }
    }

    /// The task's identifier within its graph.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Functional class of the task.
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// Type id indexing the technology-library tables.
    pub fn type_id(&self) -> usize {
        self.type_id
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} '{}' ({}, type {})",
            self.id, self.name, self.kind, self.type_id
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_display_and_index() {
        let id = TaskId(7);
        assert_eq!(id.to_string(), "T7");
        assert_eq!(id.index(), 7);
        assert_eq!(TaskId::from(7), id);
    }

    #[test]
    fn task_kind_index_roundtrip() {
        for kind in TaskKind::ALL {
            assert_eq!(TaskKind::from_index(kind.index()), kind);
        }
    }

    #[test]
    fn task_kind_indices_are_dense() {
        let mut seen = [false; 4];
        for kind in TaskKind::ALL {
            assert!(!seen[kind.index()]);
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn task_accessors() {
        let t = Task::new(TaskId(2), "fft", TaskKind::Dsp, 5);
        assert_eq!(t.id(), TaskId(2));
        assert_eq!(t.name(), "fft");
        assert_eq!(t.kind(), TaskKind::Dsp);
        assert_eq!(t.type_id(), 5);
        assert!(t.to_string().contains("fft"));
    }

    #[test]
    fn task_ids_order_by_index() {
        assert!(TaskId(1) < TaskId(2));
        assert!(TaskId(10) > TaskId(9));
    }
}
