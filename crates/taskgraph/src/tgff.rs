//! A TGFF-inspired plain-text interchange format for task graphs.
//!
//! The paper's benchmarks are TGFF-style pseudo-random graphs; real projects
//! keep such graphs in small text files under version control.  This module
//! provides a deliberately simple line-oriented format that round-trips
//! every [`TaskGraph`] exactly:
//!
//! ```text
//! @GRAPH Bm1 deadline 790
//! @TASK 0 src control 3
//! @TASK 1 fir dsp 5
//! @EDGE 0 1 64
//! @END
//! ```
//!
//! * `@TASK <index> <name> <kind> <type_id>` — tasks must appear in index
//!   order; names may not contain whitespace.
//! * `@EDGE <src_index> <dst_index> <data_volume>`.
//! * Blank lines and lines starting with `#` are ignored.

use std::error::Error;
use std::fmt;

use crate::builder::TaskGraphBuilder;
use crate::error::GraphError;
use crate::graph::TaskGraph;
use crate::task::{TaskId, TaskKind};

/// Errors produced while parsing the TGFF-like format.
#[derive(Debug, Clone, PartialEq)]
pub enum TgffError {
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what was expected.
        message: String,
    },
    /// The document did not contain a `@GRAPH` header.
    MissingHeader,
    /// The document ended without the `@END` terminator.
    MissingTerminator,
    /// The parsed structure violated a task-graph invariant.
    Graph(GraphError),
}

impl fmt::Display for TgffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgffError::Parse { line, message } => write!(f, "line {line}: {message}"),
            TgffError::MissingHeader => write!(f, "missing @GRAPH header"),
            TgffError::MissingTerminator => write!(f, "missing @END terminator"),
            TgffError::Graph(source) => write!(f, "invalid task graph: {source}"),
        }
    }
}

impl Error for TgffError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TgffError::Graph(source) => Some(source),
            _ => None,
        }
    }
}

impl From<GraphError> for TgffError {
    fn from(source: GraphError) -> Self {
        TgffError::Graph(source)
    }
}

fn kind_keyword(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::Control => "control",
        TaskKind::Dsp => "dsp",
        TaskKind::Memory => "memory",
        TaskKind::Compute => "compute",
    }
}

fn parse_kind(keyword: &str, line: usize) -> Result<TaskKind, TgffError> {
    match keyword {
        "control" => Ok(TaskKind::Control),
        "dsp" => Ok(TaskKind::Dsp),
        "memory" => Ok(TaskKind::Memory),
        "compute" => Ok(TaskKind::Compute),
        other => Err(TgffError::Parse {
            line,
            message: format!("unknown task kind '{other}'"),
        }),
    }
}

/// Serialises a task graph to the TGFF-like text format.
///
/// Task names containing whitespace are written with the whitespace replaced
/// by underscores so the document stays line-oriented.
///
/// # Examples
///
/// ```
/// use tats_taskgraph::{tgff, Benchmark};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = Benchmark::Bm1.task_graph()?;
/// let text = tgff::to_tgff(&graph);
/// assert!(text.starts_with("@GRAPH Bm1 deadline 790"));
/// let back = tgff::from_tgff(&text)?;
/// assert_eq!(back.task_count(), graph.task_count());
/// # Ok(())
/// # }
/// ```
pub fn to_tgff(graph: &TaskGraph) -> String {
    let mut out = String::new();
    let name = sanitise(graph.name());
    out.push_str(&format!("@GRAPH {} deadline {}\n", name, graph.deadline()));
    for task in graph.tasks() {
        out.push_str(&format!(
            "@TASK {} {} {} {}\n",
            task.id().index(),
            sanitise(task.name()),
            kind_keyword(task.kind()),
            task.type_id()
        ));
    }
    for edge in graph.edges() {
        out.push_str(&format!(
            "@EDGE {} {} {}\n",
            edge.src().index(),
            edge.dst().index(),
            edge.data_volume()
        ));
    }
    out.push_str("@END\n");
    out
}

fn sanitise(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "unnamed".to_string()
    } else {
        cleaned
    }
}

/// Parses a task graph from the TGFF-like text format.
///
/// # Errors
///
/// Returns [`TgffError::Parse`] with the offending line for malformed input,
/// [`TgffError::MissingHeader`] / [`TgffError::MissingTerminator`] for
/// truncated documents and [`TgffError::Graph`] when the parsed structure is
/// not a valid DAG.
pub fn from_tgff(text: &str) -> Result<TaskGraph, TgffError> {
    let mut builder: Option<TaskGraphBuilder> = None;
    let mut expected_task_index = 0usize;
    let mut terminated = false;

    for (offset, raw_line) in text.lines().enumerate() {
        let line_number = offset + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if terminated {
            return Err(TgffError::Parse {
                line: line_number,
                message: "content after @END".into(),
            });
        }
        let mut fields = line.split_whitespace();
        let keyword = fields.next().expect("non-empty line has a first token");
        match keyword {
            "@GRAPH" => {
                let name = fields.next().ok_or_else(|| TgffError::Parse {
                    line: line_number,
                    message: "expected '@GRAPH <name> deadline <value>'".into(),
                })?;
                let deadline = match (fields.next(), fields.next()) {
                    (Some("deadline"), Some(value)) => {
                        value.parse::<f64>().map_err(|_| TgffError::Parse {
                            line: line_number,
                            message: format!("deadline '{value}' is not a number"),
                        })?
                    }
                    _ => {
                        return Err(TgffError::Parse {
                            line: line_number,
                            message: "expected 'deadline <value>' after the graph name".into(),
                        })
                    }
                };
                builder = Some(TaskGraphBuilder::new(name, deadline));
            }
            "@TASK" => {
                let builder = builder.as_mut().ok_or(TgffError::MissingHeader)?;
                let index: usize = next_parsed(&mut fields, line_number, "task index")?;
                if index != expected_task_index {
                    return Err(TgffError::Parse {
                        line: line_number,
                        message: format!(
                            "task index {index} out of order (expected {expected_task_index})"
                        ),
                    });
                }
                expected_task_index += 1;
                let name = fields.next().ok_or_else(|| TgffError::Parse {
                    line: line_number,
                    message: "missing task name".into(),
                })?;
                let kind_word = fields.next().ok_or_else(|| TgffError::Parse {
                    line: line_number,
                    message: "missing task kind".into(),
                })?;
                let kind = parse_kind(kind_word, line_number)?;
                let type_id: usize = next_parsed(&mut fields, line_number, "task type id")?;
                builder.add_task(name, kind, type_id);
            }
            "@EDGE" => {
                let builder = builder.as_mut().ok_or(TgffError::MissingHeader)?;
                let src: usize = next_parsed(&mut fields, line_number, "edge source")?;
                let dst: usize = next_parsed(&mut fields, line_number, "edge destination")?;
                let volume: f64 = next_parsed(&mut fields, line_number, "edge data volume")?;
                builder.add_edge(TaskId(src), TaskId(dst), volume)?;
            }
            "@END" => {
                terminated = true;
            }
            other => {
                return Err(TgffError::Parse {
                    line: line_number,
                    message: format!("unknown directive '{other}'"),
                });
            }
        }
    }

    if !terminated {
        return Err(TgffError::MissingTerminator);
    }
    let builder = builder.ok_or(TgffError::MissingHeader)?;
    Ok(builder.build()?)
}

fn next_parsed<'a, T, I>(fields: &mut I, line: usize, what: &str) -> Result<T, TgffError>
where
    T: std::str::FromStr,
    I: Iterator<Item = &'a str>,
{
    let token = fields.next().ok_or_else(|| TgffError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    token.parse::<T>().map_err(|_| TgffError::Parse {
        line,
        message: format!("{what} '{token}' could not be parsed"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::generator::GeneratorConfig;

    fn graphs_equivalent(a: &TaskGraph, b: &TaskGraph) -> bool {
        if a.task_count() != b.task_count()
            || a.edge_count() != b.edge_count()
            || (a.deadline() - b.deadline()).abs() > 1e-12
        {
            return false;
        }
        for (ta, tb) in a.tasks().zip(b.tasks()) {
            if ta.kind() != tb.kind() || ta.type_id() != tb.type_id() {
                return false;
            }
        }
        for (ea, eb) in a.edges().zip(b.edges()) {
            if ea.src() != eb.src()
                || ea.dst() != eb.dst()
                || (ea.data_volume() - eb.data_volume()).abs() > 1e-9
            {
                return false;
            }
        }
        true
    }

    #[test]
    fn benchmark_round_trips_exactly() {
        for benchmark in Benchmark::ALL {
            let graph = benchmark.task_graph().expect("benchmark");
            let text = to_tgff(&graph);
            let back = from_tgff(&text).expect("parse");
            assert!(graphs_equivalent(&graph, &back), "{benchmark:?} round trip");
        }
    }

    #[test]
    fn hand_written_document_parses() {
        let text = "\
# tiny pipeline
@GRAPH demo deadline 100

@TASK 0 source control 0
@TASK 1 filter dsp 1
@TASK 2 sink memory 2
@EDGE 0 1 16
@EDGE 1 2 8
@END
";
        let graph = from_tgff(text).expect("parse");
        assert_eq!(graph.task_count(), 3);
        assert_eq!(graph.edge_count(), 2);
        assert_eq!(graph.deadline(), 100.0);
        assert_eq!(graph.task(TaskId(1)).kind(), TaskKind::Dsp);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let missing_deadline = "@GRAPH demo\n@END\n";
        match from_tgff(missing_deadline) {
            Err(TgffError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected a parse error, got {other:?}"),
        }

        let bad_kind = "@GRAPH demo deadline 10\n@TASK 0 a robot 0\n@END\n";
        match from_tgff(bad_kind) {
            Err(TgffError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("robot"));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }

        let out_of_order = "@GRAPH demo deadline 10\n@TASK 1 a control 0\n@END\n";
        assert!(matches!(
            from_tgff(out_of_order),
            Err(TgffError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn structural_errors_surface_as_graph_errors() {
        let cyclic = "\
@GRAPH demo deadline 10
@TASK 0 a control 0
@TASK 1 b control 0
@EDGE 0 1 1
@EDGE 1 0 1
@END
";
        assert!(matches!(from_tgff(cyclic), Err(TgffError::Graph(_))));

        let dangling = "@GRAPH demo deadline 10\n@TASK 0 a control 0\n@EDGE 0 5 1\n@END\n";
        assert!(matches!(from_tgff(dangling), Err(TgffError::Graph(_))));
    }

    #[test]
    fn missing_header_and_terminator_are_reported() {
        assert!(matches!(
            from_tgff("@TASK 0 a control 0\n@END\n"),
            Err(TgffError::MissingHeader)
        ));
        assert!(matches!(
            from_tgff("@GRAPH demo deadline 10\n@TASK 0 a control 0\n"),
            Err(TgffError::MissingTerminator)
        ));
        assert!(matches!(
            from_tgff("@GRAPH d deadline 10\n@TASK 0 a control 0\n@END\nextra\n"),
            Err(TgffError::Parse { .. })
        ));
    }

    #[test]
    fn names_with_whitespace_are_sanitised() {
        let mut builder = TaskGraphBuilder::new("two words", 50.0);
        builder.add_task("task one", TaskKind::Compute, 0);
        let graph = builder.build().expect("graph");
        let text = to_tgff(&graph);
        assert!(text.contains("@GRAPH two_words"));
        assert!(text.contains("task_one"));
        assert!(from_tgff(&text).is_ok());
    }

    #[test]
    fn generated_graphs_round_trip() {
        let graph = GeneratorConfig::new("random", 40, 55, 1200.0)
            .with_seed(7)
            .generate()
            .expect("generated");
        let back = from_tgff(&to_tgff(&graph)).expect("parse");
        assert!(graphs_equivalent(&graph, &back));
    }
}
