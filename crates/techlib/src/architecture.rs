//! Target architectures: collections of PE instances.

use std::fmt;

use crate::error::LibraryError;
use crate::library::TechLibrary;
use crate::pe::{PeId, PeInstance, PeTypeId};

/// A target architecture: an ordered set of processing-element instances.
///
/// In the paper two kinds of architectures appear:
///
/// * **platform-based** — a pre-defined architecture, e.g. four identical
///   PEs ([`Architecture::platform`]);
/// * **customised** — produced by the co-synthesis loop, which adds and
///   removes instances from the technology library while the ASP evaluates
///   each candidate.
///
/// An architecture only stores *which* PE types are instantiated; geometric
/// placement is the floorplanner's job and timing/power lookups go through
/// the [`TechLibrary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    name: String,
    instances: Vec<PeInstance>,
}

impl Architecture {
    /// Creates an empty architecture with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Architecture {
            name: name.into(),
            instances: Vec::new(),
        }
    }

    /// Creates a platform-based architecture with `count` identical instances
    /// of the given PE type, as used by the paper's platform experiments
    /// ("using four identical PEs").
    ///
    /// # Examples
    ///
    /// ```
    /// use tats_techlib::{Architecture, PeTypeId};
    ///
    /// let platform = Architecture::platform("quad", PeTypeId(0), 4);
    /// assert_eq!(platform.pe_count(), 4);
    /// ```
    pub fn platform(name: impl Into<String>, pe_type: PeTypeId, count: usize) -> Self {
        let mut arch = Architecture::new(name);
        for _ in 0..count {
            arch.add_instance(pe_type);
        }
        arch
    }

    /// Name of the architecture.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of PE instances.
    pub fn pe_count(&self) -> usize {
        self.instances.len()
    }

    /// Returns `true` if the architecture has no PEs.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Adds an instance of `pe_type` and returns its instance id.
    pub fn add_instance(&mut self, pe_type: PeTypeId) -> PeId {
        let id = PeId(self.instances.len());
        self.instances.push(PeInstance::new(id, pe_type));
        id
    }

    /// Removes the last instance, if any, and returns it.
    ///
    /// Only the most recently added instance can be removed so instance ids
    /// stay dense; the co-synthesis loop exploits this by exploring
    /// architectures in a stack-like fashion.
    pub fn pop_instance(&mut self) -> Option<PeInstance> {
        self.instances.pop()
    }

    /// All instances in id order.
    pub fn instances(&self) -> &[PeInstance] {
        &self.instances
    }

    /// Iterates over the instance ids in order.
    pub fn pe_ids(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.instances.len()).map(PeId)
    }

    /// Returns the instance with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPe`] when the id is out of range.
    pub fn instance(&self, id: PeId) -> Result<&PeInstance, LibraryError> {
        self.instances
            .get(id.index())
            .ok_or(LibraryError::UnknownPe(id.index()))
    }

    /// Returns the PE type of the given instance.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPe`] when the id is out of range.
    pub fn pe_type_of(&self, id: PeId) -> Result<PeTypeId, LibraryError> {
        Ok(self.instance(id)?.type_id())
    }

    /// Checks that every instance refers to a type present in `library`.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPeType`] for the first dangling
    /// reference found.
    pub fn validate(&self, library: &TechLibrary) -> Result<(), LibraryError> {
        for inst in &self.instances {
            if inst.type_id().index() >= library.pe_type_count() {
                return Err(LibraryError::UnknownPeType(inst.type_id().index()));
            }
        }
        Ok(())
    }

    /// Total co-synthesis cost of the architecture.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPeType`] if an instance refers to a
    /// type that `library` does not define.
    pub fn total_cost(&self, library: &TechLibrary) -> Result<f64, LibraryError> {
        self.instances
            .iter()
            .map(|inst| library.pe_type(inst.type_id()).map(|t| t.cost()))
            .sum()
    }

    /// Total silicon area of the architecture in square millimetres.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPeType`] if an instance refers to a
    /// type that `library` does not define.
    pub fn total_area_mm2(&self, library: &TechLibrary) -> Result<f64, LibraryError> {
        self.instances
            .iter()
            .map(|inst| library.pe_type(inst.type_id()).map(|t| t.area_mm2()))
            .sum()
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} PEs)", self.name, self.instances.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::TechLibraryBuilder;
    use crate::pe::PeClass;

    fn library() -> TechLibrary {
        let mut b = TechLibraryBuilder::new(2);
        b.add_pe_type(
            "a",
            PeClass::GppFast,
            6.0,
            6.0,
            50.0,
            0.5,
            vec![10.0, 12.0],
            vec![5.0, 6.0],
        )
        .unwrap();
        b.add_pe_type(
            "b",
            PeClass::GppSlow,
            4.0,
            5.0,
            20.0,
            0.1,
            vec![20.0, 25.0],
            vec![1.5, 1.8],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn platform_creates_identical_instances() {
        let arch = Architecture::platform("quad", PeTypeId(1), 4);
        assert_eq!(arch.pe_count(), 4);
        assert!(arch
            .instances()
            .iter()
            .all(|inst| inst.type_id() == PeTypeId(1)));
    }

    #[test]
    fn add_and_pop_keep_ids_dense() {
        let mut arch = Architecture::new("custom");
        let a = arch.add_instance(PeTypeId(0));
        let b = arch.add_instance(PeTypeId(1));
        assert_eq!(a, PeId(0));
        assert_eq!(b, PeId(1));
        assert_eq!(arch.pop_instance().unwrap().id(), PeId(1));
        let c = arch.add_instance(PeTypeId(0));
        assert_eq!(c, PeId(1));
    }

    #[test]
    fn cost_and_area_accumulate() {
        let lib = library();
        let mut arch = Architecture::new("mix");
        arch.add_instance(PeTypeId(0));
        arch.add_instance(PeTypeId(1));
        assert_eq!(arch.total_cost(&lib).unwrap(), 70.0);
        assert_eq!(arch.total_area_mm2(&lib).unwrap(), 36.0 + 20.0);
    }

    #[test]
    fn validate_catches_dangling_type() {
        let lib = library();
        let mut arch = Architecture::new("bad");
        arch.add_instance(PeTypeId(7));
        assert_eq!(
            arch.validate(&lib).unwrap_err(),
            LibraryError::UnknownPeType(7)
        );
        assert!(arch.total_cost(&lib).is_err());
    }

    #[test]
    fn instance_lookup_errors_when_out_of_range() {
        let arch = Architecture::platform("quad", PeTypeId(0), 2);
        assert!(arch.instance(PeId(1)).is_ok());
        assert_eq!(
            arch.instance(PeId(2)).unwrap_err(),
            LibraryError::UnknownPe(2)
        );
        assert_eq!(
            arch.pe_type_of(PeId(9)).unwrap_err(),
            LibraryError::UnknownPe(9)
        );
    }

    #[test]
    fn empty_architecture_reports_empty() {
        let arch = Architecture::new("empty");
        assert!(arch.is_empty());
        assert_eq!(arch.pe_count(), 0);
        assert_eq!(arch.total_cost(&library()).unwrap(), 0.0);
    }

    #[test]
    fn display_contains_name_and_count() {
        let arch = Architecture::platform("quad", PeTypeId(0), 4);
        assert_eq!(arch.to_string(), "quad (4 PEs)");
    }
}
