//! Power and energy bookkeeping during scheduling.
//!
//! The power-aware heuristics of the paper need two running quantities while
//! the list scheduler executes:
//!
//! * the power/energy of the *candidate* task on the *candidate* PE
//!   (heuristics 1 and 3), straight from the [`crate::TechLibrary`];
//! * the *cumulative average power* of a PE (heuristic 2), i.e. the energy it
//!   has consumed so far divided by the elapsed schedule time.
//!
//! The thermal-aware policy additionally needs the average power of every PE
//! over the schedule horizon, which is what the thermal model consumes as
//! per-block power. [`PowerTracker`] maintains all of this incrementally.

use std::fmt;

use crate::error::LibraryError;
use crate::pe::PeId;

/// Incremental per-PE energy/power accounting for a schedule under
/// construction.
///
/// # Examples
///
/// ```
/// use tats_techlib::{PeId, PowerTracker};
///
/// # fn main() -> Result<(), tats_techlib::LibraryError> {
/// let mut tracker = PowerTracker::new(2);
/// // Task on PE0: runs 0..10 at 4 W.
/// tracker.record_execution(PeId(0), 0.0, 10.0, 4.0)?;
/// assert_eq!(tracker.busy_energy(PeId(0))?, 40.0);
/// // Average power of PE0 over the first 20 time units is 2 W.
/// assert_eq!(tracker.average_power(PeId(0), 20.0)?, 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTracker {
    busy_energy: Vec<f64>,
    busy_time: Vec<f64>,
    executions: Vec<usize>,
}

impl PowerTracker {
    /// Creates a tracker for an architecture with `pe_count` PEs.
    pub fn new(pe_count: usize) -> Self {
        PowerTracker {
            busy_energy: vec![0.0; pe_count],
            busy_time: vec![0.0; pe_count],
            executions: vec![0; pe_count],
        }
    }

    /// Number of PEs tracked.
    pub fn pe_count(&self) -> usize {
        self.busy_energy.len()
    }

    /// Records the execution of one task on `pe` from `start` to `end` at
    /// `power` watts.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPe`] for an out-of-range PE and
    /// [`LibraryError::InvalidParameter`] when `end < start` or `power` is
    /// negative or non-finite.
    pub fn record_execution(
        &mut self,
        pe: PeId,
        start: f64,
        end: f64,
        power: f64,
    ) -> Result<(), LibraryError> {
        let idx = self.index(pe)?;
        if end < start || !start.is_finite() || !end.is_finite() {
            return Err(LibraryError::InvalidParameter(format!(
                "invalid execution interval [{start}, {end}]"
            )));
        }
        if power < 0.0 || !power.is_finite() {
            return Err(LibraryError::InvalidParameter(format!(
                "power must be non-negative and finite, got {power}"
            )));
        }
        let duration = end - start;
        self.busy_energy[idx] += power * duration;
        self.busy_time[idx] += duration;
        self.executions[idx] += 1;
        Ok(())
    }

    /// Total energy consumed by tasks on `pe` so far.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPe`] for an out-of-range PE.
    pub fn busy_energy(&self, pe: PeId) -> Result<f64, LibraryError> {
        Ok(self.busy_energy[self.index(pe)?])
    }

    /// Total busy time of `pe` so far.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPe`] for an out-of-range PE.
    pub fn busy_time(&self, pe: PeId) -> Result<f64, LibraryError> {
        Ok(self.busy_time[self.index(pe)?])
    }

    /// Number of task executions recorded on `pe`.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPe`] for an out-of-range PE.
    pub fn execution_count(&self, pe: PeId) -> Result<usize, LibraryError> {
        Ok(self.executions[self.index(pe)?])
    }

    /// Average power of `pe` over the window `[0, horizon]`.
    ///
    /// This is the "cumulative average power of processing element" used by
    /// the paper's heuristic 2 and the per-block power handed to the thermal
    /// model. A zero horizon yields zero power.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPe`] for an out-of-range PE and
    /// [`LibraryError::InvalidParameter`] for a negative or non-finite
    /// horizon.
    pub fn average_power(&self, pe: PeId, horizon: f64) -> Result<f64, LibraryError> {
        let idx = self.index(pe)?;
        if horizon < 0.0 || !horizon.is_finite() {
            return Err(LibraryError::InvalidParameter(format!(
                "horizon must be non-negative and finite, got {horizon}"
            )));
        }
        if horizon == 0.0 {
            return Ok(0.0);
        }
        Ok(self.busy_energy[idx] / horizon)
    }

    /// Average power of every PE over `[0, horizon]`, indexed by PE id.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::InvalidParameter`] for a negative or
    /// non-finite horizon.
    pub fn average_power_vector(&self, horizon: f64) -> Result<Vec<f64>, LibraryError> {
        (0..self.pe_count())
            .map(|i| self.average_power(PeId(i), horizon))
            .collect()
    }

    /// Average *utilisation* of `pe` (busy time / horizon), clamped to `[0, 1]`
    /// only by the physics of a correct schedule, not by this method.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPe`] for an out-of-range PE and
    /// [`LibraryError::InvalidParameter`] for a non-positive horizon.
    pub fn utilisation(&self, pe: PeId, horizon: f64) -> Result<f64, LibraryError> {
        let idx = self.index(pe)?;
        if horizon <= 0.0 || !horizon.is_finite() {
            return Err(LibraryError::InvalidParameter(format!(
                "horizon must be positive and finite, got {horizon}"
            )));
        }
        Ok(self.busy_time[idx] / horizon)
    }

    /// Sum of the average powers of all PEs over `[0, horizon]` — the
    /// "Total Pow." column of the paper's tables.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::InvalidParameter`] for a negative or
    /// non-finite horizon.
    pub fn total_average_power(&self, horizon: f64) -> Result<f64, LibraryError> {
        Ok(self.average_power_vector(horizon)?.iter().sum())
    }

    /// Total energy consumed across all PEs.
    pub fn total_energy(&self) -> f64 {
        self.busy_energy.iter().sum()
    }

    fn index(&self, pe: PeId) -> Result<usize, LibraryError> {
        if pe.index() >= self.busy_energy.len() {
            Err(LibraryError::UnknownPe(pe.index()))
        } else {
            Ok(pe.index())
        }
    }
}

impl fmt::Display for PowerTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "power tracker: {} PEs, {:.2} J total",
            self.pe_count(),
            self.total_energy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_and_time_accumulate_per_pe() {
        let mut t = PowerTracker::new(2);
        t.record_execution(PeId(0), 0.0, 10.0, 3.0).unwrap();
        t.record_execution(PeId(0), 10.0, 15.0, 2.0).unwrap();
        t.record_execution(PeId(1), 0.0, 4.0, 5.0).unwrap();
        assert_eq!(t.busy_energy(PeId(0)).unwrap(), 40.0);
        assert_eq!(t.busy_time(PeId(0)).unwrap(), 15.0);
        assert_eq!(t.execution_count(PeId(0)).unwrap(), 2);
        assert_eq!(t.busy_energy(PeId(1)).unwrap(), 20.0);
        assert_eq!(t.total_energy(), 60.0);
    }

    #[test]
    fn average_power_divides_by_horizon() {
        let mut t = PowerTracker::new(1);
        t.record_execution(PeId(0), 0.0, 10.0, 4.0).unwrap();
        assert_eq!(t.average_power(PeId(0), 40.0).unwrap(), 1.0);
        assert_eq!(t.average_power(PeId(0), 0.0).unwrap(), 0.0);
        assert_eq!(t.total_average_power(40.0).unwrap(), 1.0);
    }

    #[test]
    fn average_power_vector_covers_all_pes() {
        let mut t = PowerTracker::new(3);
        t.record_execution(PeId(1), 0.0, 5.0, 2.0).unwrap();
        let v = t.average_power_vector(10.0).unwrap();
        assert_eq!(v, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn utilisation_is_busy_fraction() {
        let mut t = PowerTracker::new(1);
        t.record_execution(PeId(0), 0.0, 25.0, 1.0).unwrap();
        assert_eq!(t.utilisation(PeId(0), 100.0).unwrap(), 0.25);
        assert!(t.utilisation(PeId(0), 0.0).is_err());
    }

    #[test]
    fn invalid_intervals_and_power_are_rejected() {
        let mut t = PowerTracker::new(1);
        assert!(t.record_execution(PeId(0), 5.0, 4.0, 1.0).is_err());
        assert!(t.record_execution(PeId(0), 0.0, 1.0, -1.0).is_err());
        assert!(t.record_execution(PeId(0), 0.0, 1.0, f64::NAN).is_err());
        assert!(t.record_execution(PeId(5), 0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn negative_horizon_is_rejected() {
        let t = PowerTracker::new(1);
        assert!(t.average_power(PeId(0), -1.0).is_err());
        assert!(t.average_power_vector(f64::INFINITY).is_err());
    }

    #[test]
    fn zero_duration_execution_adds_no_energy() {
        let mut t = PowerTracker::new(1);
        t.record_execution(PeId(0), 3.0, 3.0, 10.0).unwrap();
        assert_eq!(t.busy_energy(PeId(0)).unwrap(), 0.0);
        assert_eq!(t.execution_count(PeId(0)).unwrap(), 1);
    }

    #[test]
    fn display_reports_totals() {
        let mut t = PowerTracker::new(2);
        t.record_execution(PeId(0), 0.0, 2.0, 3.0).unwrap();
        assert!(t.to_string().contains("2 PEs"));
        assert!(t.to_string().contains("6.00 J"));
    }
}
