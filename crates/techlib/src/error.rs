//! Error types for technology-library construction and lookups.

use std::fmt;

/// Errors produced while building or querying a [`crate::TechLibrary`].
#[derive(Debug, Clone, PartialEq)]
pub enum LibraryError {
    /// A processing-element type id was not found in the library.
    UnknownPeType(usize),
    /// A task type id exceeds the library's task-type count.
    UnknownTaskType(usize),
    /// A processing-element instance id was not found in the architecture.
    UnknownPe(usize),
    /// The library has no processing-element types.
    NoPeTypes,
    /// The library covers zero task types.
    NoTaskTypes,
    /// A table entry was negative, zero where positivity is required, or
    /// non-finite.
    InvalidEntry {
        /// Row (task type) of the offending entry.
        task_type: usize,
        /// Column (PE type) of the offending entry.
        pe_type: usize,
        /// Description of what is wrong with the value.
        reason: String,
    },
    /// A builder or generator parameter was out of its valid range.
    InvalidParameter(String),
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::UnknownPeType(id) => write!(f, "unknown PE type id {id}"),
            LibraryError::UnknownTaskType(id) => write!(f, "unknown task type id {id}"),
            LibraryError::UnknownPe(id) => write!(f, "unknown PE instance id {id}"),
            LibraryError::NoPeTypes => write!(f, "technology library has no PE types"),
            LibraryError::NoTaskTypes => write!(f, "technology library covers no task types"),
            LibraryError::InvalidEntry {
                task_type,
                pe_type,
                reason,
            } => write!(
                f,
                "invalid table entry for task type {task_type} on PE type {pe_type}: {reason}"
            ),
            LibraryError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for LibraryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LibraryError::InvalidEntry {
            task_type: 3,
            pe_type: 1,
            reason: "wcet must be positive".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("task type 3"));
        assert!(msg.contains("PE type 1"));
        assert!(msg.contains("wcet must be positive"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync>() {}
        assert_bounds::<LibraryError>();
    }

    #[test]
    fn all_variants_display_without_panicking() {
        for e in [
            LibraryError::UnknownPeType(0),
            LibraryError::UnknownTaskType(1),
            LibraryError::UnknownPe(2),
            LibraryError::NoPeTypes,
            LibraryError::NoTaskTypes,
            LibraryError::InvalidParameter("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
