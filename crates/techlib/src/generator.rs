//! Seeded synthetic technology-library generation.
//!
//! The authors' technology library is not published; only its role is: it
//! stores the worst-case power consumption (WCPC) and worst-case execution
//! time (WCET) of every task type on every PE type, and it must expose a
//! power/performance trade-off wide enough that the power heuristics and the
//! thermal-aware policy can make different choices than the baseline.
//! [`LibraryGenerator`] synthesises such a library deterministically from a
//! seed, with per-class parameter ranges that mirror typical embedded PEs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::LibraryError;
use crate::library::{TechLibrary, TechLibraryBuilder};
use crate::pe::PeClass;

/// Per-class count of PE types to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassMix {
    /// Number of high-performance general-purpose processors.
    pub gpp_fast: usize,
    /// Number of energy-efficient general-purpose processors.
    pub gpp_slow: usize,
    /// Number of DSPs.
    pub dsp: usize,
    /// Number of application-specific accelerators.
    pub accelerator: usize,
}

impl ClassMix {
    /// Total number of PE types across all classes.
    pub fn total(&self) -> usize {
        self.gpp_fast + self.gpp_slow + self.dsp + self.accelerator
    }
}

impl Default for ClassMix {
    fn default() -> Self {
        ClassMix {
            gpp_fast: 2,
            gpp_slow: 2,
            dsp: 1,
            accelerator: 1,
        }
    }
}

/// Seeded generator of synthetic [`TechLibrary`] instances.
///
/// # Examples
///
/// ```
/// use tats_techlib::LibraryGenerator;
///
/// # fn main() -> Result<(), tats_techlib::LibraryError> {
/// let library = LibraryGenerator::new(10).with_seed(7).generate()?;
/// assert_eq!(library.task_type_count(), 10);
/// assert!(library.pe_type_count() >= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryGenerator {
    task_type_count: usize,
    mix: ClassMix,
    base_time_range: (f64, f64),
    seed: u64,
}

impl LibraryGenerator {
    /// Creates a generator for a library covering `task_type_count` task
    /// types with the default class mix.
    pub fn new(task_type_count: usize) -> Self {
        LibraryGenerator {
            task_type_count,
            mix: ClassMix::default(),
            // Chosen so that the paper's benchmark deadlines require a small
            // multi-PE architecture (roughly 3-4 fast PEs of parallelism):
            // a single PE cannot meet them, the 4-PE platform can.
            base_time_range: (130.0, 220.0),
            seed: 0x7EC4,
        }
    }

    /// Overrides the per-class PE type counts.
    pub fn with_mix(mut self, mix: ClassMix) -> Self {
        self.mix = mix;
        self
    }

    /// Overrides the nominal (reference-PE) execution-time range per task type.
    pub fn with_base_time_range(mut self, min: f64, max: f64) -> Self {
        self.base_time_range = (min, max);
        self
    }

    /// Overrides the seed; equal configurations generate identical libraries.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the library.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::InvalidParameter`] when the task-type count or
    /// the class mix is zero or the base-time range is malformed; builder
    /// errors are propagated unchanged.
    pub fn generate(&self) -> Result<TechLibrary, LibraryError> {
        if self.task_type_count == 0 {
            return Err(LibraryError::InvalidParameter(
                "task type count must be at least 1".to_string(),
            ));
        }
        if self.mix.total() == 0 {
            return Err(LibraryError::InvalidParameter(
                "class mix must contain at least one PE type".to_string(),
            ));
        }
        let (bt_min, bt_max) = self.base_time_range;
        if !(bt_min.is_finite() && bt_max.is_finite()) || bt_min <= 0.0 || bt_max < bt_min {
            return Err(LibraryError::InvalidParameter(format!(
                "malformed base time range [{bt_min}, {bt_max}]"
            )));
        }

        let mut rng = StdRng::seed_from_u64(self.seed);

        // Nominal execution time of each task type on a hypothetical
        // reference PE; every real PE scales this by a class-specific factor.
        let base_time: Vec<f64> = (0..self.task_type_count)
            .map(|_| rng.gen_range(bt_min..=bt_max))
            .collect();

        let mut builder = TechLibraryBuilder::new(self.task_type_count);
        let add_class = |builder: &mut TechLibraryBuilder,
                         rng: &mut StdRng,
                         class: PeClass,
                         index: usize|
         -> Result<(), LibraryError> {
            let (name_prefix, width, height, cost, idle) = match class {
                PeClass::GppFast => ("gpp-fast", 7.0, 7.0, rng.gen_range(60.0..80.0), 0.40),
                PeClass::GppSlow => ("gpp-slow", 5.0, 5.0, rng.gen_range(25.0..35.0), 0.15),
                PeClass::Dsp => ("dsp", 5.0, 6.0, rng.gen_range(38.0..46.0), 0.20),
                PeClass::Accelerator => ("accel", 4.0, 4.0, rng.gen_range(45.0..60.0), 0.10),
            };
            let mut wcet = Vec::with_capacity(self.task_type_count);
            let mut wcpc = Vec::with_capacity(self.task_type_count);
            for &bt in &base_time {
                let (speed, power) = match class {
                    PeClass::GppFast => (rng.gen_range(0.55..0.75), rng.gen_range(4.0..6.5)),
                    PeClass::GppSlow => (rng.gen_range(1.20..1.60), rng.gen_range(1.4..2.4)),
                    PeClass::Dsp => (rng.gen_range(0.60..1.20), rng.gen_range(2.0..3.5)),
                    PeClass::Accelerator => {
                        // Accelerators are excellent for roughly a third of
                        // the task types and mediocre for the rest.
                        if rng.gen_bool(0.35) {
                            (rng.gen_range(0.35..0.55), rng.gen_range(0.8..1.6))
                        } else {
                            (rng.gen_range(1.50..2.50), rng.gen_range(2.5..3.5))
                        }
                    }
                };
                wcet.push(bt * speed);
                wcpc.push(power);
            }
            builder.add_pe_type(
                format!("{name_prefix}-{index}"),
                class,
                width,
                height,
                cost,
                idle,
                wcet,
                wcpc,
            )?;
            Ok(())
        };

        for i in 0..self.mix.gpp_fast {
            add_class(&mut builder, &mut rng, PeClass::GppFast, i)?;
        }
        for i in 0..self.mix.gpp_slow {
            add_class(&mut builder, &mut rng, PeClass::GppSlow, i)?;
        }
        for i in 0..self.mix.dsp {
            add_class(&mut builder, &mut rng, PeClass::Dsp, i)?;
        }
        for i in 0..self.mix.accelerator {
            add_class(&mut builder, &mut rng, PeClass::Accelerator, i)?;
        }

        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::PeTypeId;

    #[test]
    fn generated_library_has_requested_shape() {
        let lib = LibraryGenerator::new(12).with_seed(3).generate().unwrap();
        assert_eq!(lib.task_type_count(), 12);
        assert_eq!(lib.pe_type_count(), ClassMix::default().total());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = LibraryGenerator::new(8).with_seed(5).generate().unwrap();
        let b = LibraryGenerator::new(8).with_seed(5).generate().unwrap();
        assert_eq!(a, b);
        let c = LibraryGenerator::new(8).with_seed(6).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn every_entry_is_positive_and_finite() {
        let lib = LibraryGenerator::new(10).generate().unwrap();
        for tt in 0..lib.task_type_count() {
            for pe in 0..lib.pe_type_count() {
                let wcet = lib.wcet(tt, PeTypeId(pe)).unwrap();
                let wcpc = lib.wcpc(tt, PeTypeId(pe)).unwrap();
                assert!(wcet.is_finite() && wcet > 0.0);
                assert!(wcpc.is_finite() && wcpc > 0.0);
            }
        }
    }

    #[test]
    fn fast_gpps_are_faster_and_hungrier_than_slow_gpps() {
        let lib = LibraryGenerator::new(16).with_seed(11).generate().unwrap();
        let fast: Vec<_> = lib
            .pe_types()
            .iter()
            .filter(|t| t.class() == PeClass::GppFast)
            .collect();
        let slow: Vec<_> = lib
            .pe_types()
            .iter()
            .filter(|t| t.class() == PeClass::GppSlow)
            .collect();
        assert!(!fast.is_empty() && !slow.is_empty());
        for tt in 0..lib.task_type_count() {
            for f in &fast {
                for s in &slow {
                    assert!(lib.wcet(tt, f.id()).unwrap() < lib.wcet(tt, s.id()).unwrap());
                    assert!(lib.wcpc(tt, f.id()).unwrap() > lib.wcpc(tt, s.id()).unwrap());
                }
            }
        }
    }

    #[test]
    fn trade_off_exists_between_speed_and_energy() {
        // For most task types the fastest PE should not also be the most
        // energy-efficient one, otherwise the power heuristics degenerate.
        let lib = LibraryGenerator::new(20).with_seed(2).generate().unwrap();
        let mut differing = 0;
        for tt in 0..lib.task_type_count() {
            if lib.fastest_pe_type(tt).unwrap() != lib.most_efficient_pe_type(tt).unwrap() {
                differing += 1;
            }
        }
        assert!(differing >= lib.task_type_count() / 2);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(LibraryGenerator::new(0).generate().is_err());
        assert!(LibraryGenerator::new(4)
            .with_mix(ClassMix {
                gpp_fast: 0,
                gpp_slow: 0,
                dsp: 0,
                accelerator: 0
            })
            .generate()
            .is_err());
        assert!(LibraryGenerator::new(4)
            .with_base_time_range(10.0, 5.0)
            .generate()
            .is_err());
        assert!(LibraryGenerator::new(4)
            .with_base_time_range(0.0, 5.0)
            .generate()
            .is_err());
    }

    #[test]
    fn custom_mix_is_respected() {
        let mix = ClassMix {
            gpp_fast: 1,
            gpp_slow: 3,
            dsp: 0,
            accelerator: 2,
        };
        let lib = LibraryGenerator::new(5).with_mix(mix).generate().unwrap();
        assert_eq!(lib.pe_type_count(), 6);
        let slow_count = lib
            .pe_types()
            .iter()
            .filter(|t| t.class() == PeClass::GppSlow)
            .count();
        assert_eq!(slow_count, 3);
    }
}
