//! Technology-library substrate for thermal-aware co-synthesis.
//!
//! The allocation and scheduling procedure (ASP) of *Hung et al., DATE 2005*
//! consults a *technology library* that stores, for every task type and every
//! processing-element (PE) type, the worst-case execution time (WCET) and the
//! worst-case power consumption (WCPC). This crate provides:
//!
//! * [`TechLibrary`] / [`TechLibraryBuilder`] — the WCET/WCPC tables plus the
//!   PE-type catalogue (geometry, cost, idle power),
//! * [`Architecture`] — a concrete set of PE instances (platform-based or
//!   produced by co-synthesis),
//! * [`PowerTracker`] — incremental energy/average-power accounting used by
//!   the power heuristics and by the thermal model interface,
//! * [`LibraryGenerator`] and [`profiles`] — seeded synthetic libraries and
//!   the standard experiment configuration.
//!
//! # Examples
//!
//! ```
//! use tats_techlib::{profiles, PeId, PowerTracker};
//!
//! # fn main() -> Result<(), tats_techlib::LibraryError> {
//! let library = profiles::standard_library(10)?;
//! let platform = profiles::platform_architecture(&library)?;
//!
//! // Account for one task execution on the first platform PE.
//! let pe_type = platform.pe_type_of(PeId(0))?;
//! let wcet = library.wcet(3, pe_type)?;
//! let wcpc = library.wcpc(3, pe_type)?;
//! let mut tracker = PowerTracker::new(platform.pe_count());
//! tracker.record_execution(PeId(0), 0.0, wcet, wcpc)?;
//! assert!(tracker.total_energy() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod architecture;
mod energy;
mod error;
mod generator;
mod library;
mod pe;
pub mod profiles;

pub use architecture::Architecture;
pub use energy::PowerTracker;
pub use error::LibraryError;
pub use generator::{ClassMix, LibraryGenerator};
pub use library::{TechLibrary, TechLibraryBuilder};
pub use pe::{PeClass, PeId, PeInstance, PeType, PeTypeId};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Energy is always the product of the WCET and WCPC table entries,
        /// and the most efficient PE type indeed minimises it.
        #[test]
        fn most_efficient_pe_minimises_energy(
            task_types in 1usize..12,
            seed in any::<u64>()
        ) {
            let lib = LibraryGenerator::new(task_types).with_seed(seed).generate().unwrap();
            for tt in 0..lib.task_type_count() {
                let best = lib.most_efficient_pe_type(tt).unwrap();
                let best_energy = lib.energy(tt, best).unwrap();
                for pe in 0..lib.pe_type_count() {
                    let pe = PeTypeId(pe);
                    let e = lib.energy(tt, pe).unwrap();
                    prop_assert!(best_energy <= e + 1e-12);
                    prop_assert!(
                        (e - lib.wcet(tt, pe).unwrap() * lib.wcpc(tt, pe).unwrap()).abs() < 1e-12
                    );
                }
            }
        }

        /// The power tracker's total average power equals the sum of the
        /// per-PE average powers for any horizon.
        #[test]
        fn tracker_total_is_sum_of_parts(
            executions in proptest::collection::vec(
                (0usize..4, 0.0f64..100.0, 0.1f64..50.0, 0.1f64..8.0), 1..30),
            horizon in 1.0f64..10_000.0
        ) {
            let mut tracker = PowerTracker::new(4);
            for (pe, start, duration, power) in executions {
                tracker
                    .record_execution(PeId(pe), start, start + duration, power)
                    .unwrap();
            }
            let total = tracker.total_average_power(horizon).unwrap();
            let sum: f64 = (0..4)
                .map(|i| tracker.average_power(PeId(i), horizon).unwrap())
                .sum();
            prop_assert!((total - sum).abs() < 1e-9);
            prop_assert!((tracker.total_energy() - total * horizon).abs() < 1e-6);
        }
    }
}
