//! The technology library: worst-case execution time and power tables.

use std::fmt;

use crate::error::LibraryError;
use crate::pe::{PeClass, PeType, PeTypeId};

/// Technology library mapping `(task type, PE type)` pairs to worst-case
/// execution times (WCET) and worst-case power consumptions (WCPC).
///
/// The paper's ASP "retrieves the WCET of this task executed on PE_j from the
/// technology library"; the WCPC table likewise supplies the power term of
/// the power-aware heuristics and the per-block power handed to the thermal
/// model. Rows are task types (as carried by
/// [`tats_taskgraph::Task::type_id`]), columns are [`PeType`]s.
///
/// Libraries are immutable once built; use [`TechLibraryBuilder`] to
/// construct one, or [`crate::profiles::standard_library`] /
/// [`crate::LibraryGenerator`] for ready-made synthetic libraries.
///
/// [`tats_taskgraph::Task::type_id`]: https://docs.rs/tats-taskgraph
#[derive(Debug, Clone, PartialEq)]
pub struct TechLibrary {
    pe_types: Vec<PeType>,
    task_type_count: usize,
    /// `wcet[task_type][pe_type]`, time units.
    wcet: Vec<Vec<f64>>,
    /// `wcpc[task_type][pe_type]`, watts.
    wcpc: Vec<Vec<f64>>,
}

impl TechLibrary {
    /// Number of PE types in the library.
    pub fn pe_type_count(&self) -> usize {
        self.pe_types.len()
    }

    /// Number of task types covered by the tables.
    pub fn task_type_count(&self) -> usize {
        self.task_type_count
    }

    /// All PE types, ordered by id.
    pub fn pe_types(&self) -> &[PeType] {
        &self.pe_types
    }

    /// Returns the PE type with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownPeType`] if the id is out of range.
    pub fn pe_type(&self, id: PeTypeId) -> Result<&PeType, LibraryError> {
        self.pe_types
            .get(id.index())
            .ok_or(LibraryError::UnknownPeType(id.index()))
    }

    /// Worst-case execution time of a task type on a PE type, in time units.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownTaskType`] or
    /// [`LibraryError::UnknownPeType`] when an index is out of range.
    pub fn wcet(&self, task_type: usize, pe_type: PeTypeId) -> Result<f64, LibraryError> {
        self.check(task_type, pe_type)?;
        Ok(self.wcet[task_type][pe_type.index()])
    }

    /// Worst-case power consumption of a task type on a PE type, in watts.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownTaskType`] or
    /// [`LibraryError::UnknownPeType`] when an index is out of range.
    pub fn wcpc(&self, task_type: usize, pe_type: PeTypeId) -> Result<f64, LibraryError> {
        self.check(task_type, pe_type)?;
        Ok(self.wcpc[task_type][pe_type.index()])
    }

    /// Energy of executing a task type on a PE type: `WCET × WCPC`.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`TechLibrary::wcet`].
    pub fn energy(&self, task_type: usize, pe_type: PeTypeId) -> Result<f64, LibraryError> {
        Ok(self.wcet(task_type, pe_type)? * self.wcpc(task_type, pe_type)?)
    }

    /// Mean WCET of a task type over all PE types.
    ///
    /// Used as the per-task weight when computing static criticalities, so
    /// the priority ordering does not depend on any particular mapping.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownTaskType`] when the row is out of range.
    pub fn average_wcet(&self, task_type: usize) -> Result<f64, LibraryError> {
        if task_type >= self.task_type_count {
            return Err(LibraryError::UnknownTaskType(task_type));
        }
        let row = &self.wcet[task_type];
        Ok(row.iter().sum::<f64>() / row.len() as f64)
    }

    /// PE type with the smallest WCET for the task type.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownTaskType`] when the row is out of range.
    pub fn fastest_pe_type(&self, task_type: usize) -> Result<PeTypeId, LibraryError> {
        self.argmin_over_pe(task_type, &self.wcet)
    }

    /// PE type with the smallest energy (`WCET × WCPC`) for the task type.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnknownTaskType`] when the row is out of range.
    pub fn most_efficient_pe_type(&self, task_type: usize) -> Result<PeTypeId, LibraryError> {
        if task_type >= self.task_type_count {
            return Err(LibraryError::UnknownTaskType(task_type));
        }
        let best = (0..self.pe_types.len())
            .min_by(|&a, &b| {
                let ea = self.wcet[task_type][a] * self.wcpc[task_type][a];
                let eb = self.wcet[task_type][b] * self.wcpc[task_type][b];
                ea.total_cmp(&eb)
            })
            .expect("libraries always have at least one PE type");
        Ok(PeTypeId(best))
    }

    fn argmin_over_pe(
        &self,
        task_type: usize,
        table: &[Vec<f64>],
    ) -> Result<PeTypeId, LibraryError> {
        if task_type >= self.task_type_count {
            return Err(LibraryError::UnknownTaskType(task_type));
        }
        let row = &table[task_type];
        let best = (0..row.len())
            .min_by(|&a, &b| row[a].total_cmp(&row[b]))
            .expect("libraries always have at least one PE type");
        Ok(PeTypeId(best))
    }

    fn check(&self, task_type: usize, pe_type: PeTypeId) -> Result<(), LibraryError> {
        if task_type >= self.task_type_count {
            return Err(LibraryError::UnknownTaskType(task_type));
        }
        if pe_type.index() >= self.pe_types.len() {
            return Err(LibraryError::UnknownPeType(pe_type.index()));
        }
        Ok(())
    }
}

impl fmt::Display for TechLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "technology library: {} PE types x {} task types",
            self.pe_types.len(),
            self.task_type_count
        )
    }
}

/// Builder for [`TechLibrary`].
///
/// Every call to [`TechLibraryBuilder::add_pe_type`] supplies the full WCET
/// and WCPC column for the new PE type, so a built library is always
/// complete.
///
/// # Examples
///
/// ```
/// use tats_techlib::{PeClass, TechLibraryBuilder};
///
/// # fn main() -> Result<(), tats_techlib::LibraryError> {
/// let mut b = TechLibraryBuilder::new(2);
/// let gpp = b.add_pe_type(
///     "gpp", PeClass::GppFast, 6.0, 6.0, 40.0, 0.3,
///     vec![10.0, 20.0],       // WCET per task type
///     vec![4.0, 5.0],         // WCPC per task type
/// )?;
/// let lib = b.build()?;
/// assert_eq!(lib.wcet(1, gpp)?, 20.0);
/// assert_eq!(lib.energy(0, gpp)?, 40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TechLibraryBuilder {
    task_type_count: usize,
    pe_types: Vec<PeType>,
    wcet_columns: Vec<Vec<f64>>,
    wcpc_columns: Vec<Vec<f64>>,
}

impl TechLibraryBuilder {
    /// Starts a builder for a library covering `task_type_count` task types.
    pub fn new(task_type_count: usize) -> Self {
        TechLibraryBuilder {
            task_type_count,
            pe_types: Vec::new(),
            wcet_columns: Vec::new(),
            wcpc_columns: Vec::new(),
        }
    }

    /// Number of PE types added so far.
    pub fn pe_type_count(&self) -> usize {
        self.pe_types.len()
    }

    /// Adds a PE type together with its WCET and WCPC columns (one entry per
    /// task type) and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::InvalidParameter`] if the column lengths do
    /// not match the task-type count or the geometry is non-positive, and
    /// [`LibraryError::InvalidEntry`] if any WCET/WCPC value is not strictly
    /// positive and finite.
    #[allow(clippy::too_many_arguments)]
    pub fn add_pe_type(
        &mut self,
        name: impl Into<String>,
        class: PeClass,
        width_mm: f64,
        height_mm: f64,
        cost: f64,
        idle_power: f64,
        wcet: Vec<f64>,
        wcpc: Vec<f64>,
    ) -> Result<PeTypeId, LibraryError> {
        if wcet.len() != self.task_type_count || wcpc.len() != self.task_type_count {
            return Err(LibraryError::InvalidParameter(format!(
                "expected {} WCET/WCPC entries, got {}/{}",
                self.task_type_count,
                wcet.len(),
                wcpc.len()
            )));
        }
        if width_mm <= 0.0 || height_mm <= 0.0 || !width_mm.is_finite() || !height_mm.is_finite() {
            return Err(LibraryError::InvalidParameter(format!(
                "PE dimensions must be positive, got {width_mm}x{height_mm}"
            )));
        }
        if cost < 0.0 || idle_power < 0.0 {
            return Err(LibraryError::InvalidParameter(
                "cost and idle power must be non-negative".to_string(),
            ));
        }
        let id = PeTypeId(self.pe_types.len());
        for (task_type, (&t, &p)) in wcet.iter().zip(wcpc.iter()).enumerate() {
            if !(t.is_finite() && t > 0.0) {
                return Err(LibraryError::InvalidEntry {
                    task_type,
                    pe_type: id.index(),
                    reason: format!("wcet must be positive and finite, got {t}"),
                });
            }
            if !(p.is_finite() && p > 0.0) {
                return Err(LibraryError::InvalidEntry {
                    task_type,
                    pe_type: id.index(),
                    reason: format!("wcpc must be positive and finite, got {p}"),
                });
            }
        }
        self.pe_types.push(PeType::new(
            id, name, class, width_mm, height_mm, cost, idle_power,
        ));
        self.wcet_columns.push(wcet);
        self.wcpc_columns.push(wcpc);
        Ok(id)
    }

    /// Finalises the library.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::NoPeTypes`] or [`LibraryError::NoTaskTypes`]
    /// when the library would be empty in either dimension.
    pub fn build(self) -> Result<TechLibrary, LibraryError> {
        if self.pe_types.is_empty() {
            return Err(LibraryError::NoPeTypes);
        }
        if self.task_type_count == 0 {
            return Err(LibraryError::NoTaskTypes);
        }
        // Transpose the per-PE columns into per-task-type rows.
        let mut wcet = vec![vec![0.0; self.pe_types.len()]; self.task_type_count];
        let mut wcpc = vec![vec![0.0; self.pe_types.len()]; self.task_type_count];
        for (pe, (wcol, pcol)) in self
            .wcet_columns
            .iter()
            .zip(self.wcpc_columns.iter())
            .enumerate()
        {
            for task_type in 0..self.task_type_count {
                wcet[task_type][pe] = wcol[task_type];
                wcpc[task_type][pe] = pcol[task_type];
            }
        }
        Ok(TechLibrary {
            pe_types: self.pe_types,
            task_type_count: self.task_type_count,
            wcet,
            wcpc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pe_library() -> TechLibrary {
        let mut b = TechLibraryBuilder::new(3);
        b.add_pe_type(
            "fast",
            PeClass::GppFast,
            6.0,
            6.0,
            50.0,
            0.5,
            vec![10.0, 12.0, 8.0],
            vec![5.0, 6.0, 4.0],
        )
        .unwrap();
        b.add_pe_type(
            "slow",
            PeClass::GppSlow,
            4.0,
            4.0,
            20.0,
            0.1,
            vec![20.0, 25.0, 18.0],
            vec![1.5, 1.8, 1.2],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn tables_round_trip() {
        let lib = two_pe_library();
        assert_eq!(lib.pe_type_count(), 2);
        assert_eq!(lib.task_type_count(), 3);
        assert_eq!(lib.wcet(0, PeTypeId(0)).unwrap(), 10.0);
        assert_eq!(lib.wcet(2, PeTypeId(1)).unwrap(), 18.0);
        assert_eq!(lib.wcpc(1, PeTypeId(0)).unwrap(), 6.0);
        assert_eq!(lib.energy(0, PeTypeId(1)).unwrap(), 30.0);
    }

    #[test]
    fn average_wcet_is_mean_over_pe_types() {
        let lib = two_pe_library();
        assert_eq!(lib.average_wcet(0).unwrap(), 15.0);
        assert_eq!(lib.average_wcet(1).unwrap(), 18.5);
    }

    #[test]
    fn fastest_and_most_efficient_differ_when_tradeoff_exists() {
        let lib = two_pe_library();
        // Fast PE wins on time, slow PE wins on energy for every task type.
        for task_type in 0..3 {
            assert_eq!(lib.fastest_pe_type(task_type).unwrap(), PeTypeId(0));
            assert_eq!(lib.most_efficient_pe_type(task_type).unwrap(), PeTypeId(1));
        }
    }

    #[test]
    fn out_of_range_queries_error() {
        let lib = two_pe_library();
        assert_eq!(
            lib.wcet(9, PeTypeId(0)).unwrap_err(),
            LibraryError::UnknownTaskType(9)
        );
        assert_eq!(
            lib.wcet(0, PeTypeId(9)).unwrap_err(),
            LibraryError::UnknownPeType(9)
        );
        assert_eq!(
            lib.pe_type(PeTypeId(5)).unwrap_err(),
            LibraryError::UnknownPeType(5)
        );
        assert_eq!(
            lib.average_wcet(7).unwrap_err(),
            LibraryError::UnknownTaskType(7)
        );
    }

    #[test]
    fn builder_rejects_wrong_column_lengths() {
        let mut b = TechLibraryBuilder::new(3);
        let err = b
            .add_pe_type(
                "bad",
                PeClass::Dsp,
                4.0,
                4.0,
                10.0,
                0.1,
                vec![1.0, 2.0],
                vec![1.0, 2.0, 3.0],
            )
            .unwrap_err();
        assert!(matches!(err, LibraryError::InvalidParameter(_)));
    }

    #[test]
    fn builder_rejects_non_positive_entries() {
        let mut b = TechLibraryBuilder::new(2);
        let err = b
            .add_pe_type(
                "bad",
                PeClass::Dsp,
                4.0,
                4.0,
                10.0,
                0.1,
                vec![1.0, 0.0],
                vec![1.0, 2.0],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            LibraryError::InvalidEntry { task_type: 1, .. }
        ));

        let mut b = TechLibraryBuilder::new(1);
        let err = b
            .add_pe_type(
                "bad",
                PeClass::Dsp,
                4.0,
                4.0,
                10.0,
                0.1,
                vec![1.0],
                vec![f64::NAN],
            )
            .unwrap_err();
        assert!(matches!(err, LibraryError::InvalidEntry { .. }));
    }

    #[test]
    fn builder_rejects_bad_geometry() {
        let mut b = TechLibraryBuilder::new(1);
        let err = b
            .add_pe_type(
                "bad",
                PeClass::Dsp,
                0.0,
                4.0,
                10.0,
                0.1,
                vec![1.0],
                vec![1.0],
            )
            .unwrap_err();
        assert!(matches!(err, LibraryError::InvalidParameter(_)));
    }

    #[test]
    fn empty_library_is_rejected() {
        assert_eq!(
            TechLibraryBuilder::new(3).build().unwrap_err(),
            LibraryError::NoPeTypes
        );
        let mut b = TechLibraryBuilder::new(0);
        assert!(b
            .add_pe_type(
                "x",
                PeClass::Dsp,
                1.0,
                1.0,
                1.0,
                0.0,
                Vec::new(),
                Vec::new()
            )
            .is_ok());
        assert_eq!(b.build().unwrap_err(), LibraryError::NoTaskTypes);
    }

    #[test]
    fn display_mentions_dimensions() {
        let lib = two_pe_library();
        assert!(lib.to_string().contains("2 PE types"));
        assert!(lib.to_string().contains("3 task types"));
    }
}
