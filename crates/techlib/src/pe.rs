//! Processing-element types and instances.

use std::fmt;

/// Identifier of a processing-element *type* in a [`crate::TechLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeTypeId(pub usize);

impl PeTypeId {
    /// Dense index of the PE type within its library.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PeTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PEType{}", self.0)
    }
}

impl From<usize> for PeTypeId {
    fn from(value: usize) -> Self {
        PeTypeId(value)
    }
}

/// Identifier of a processing-element *instance* in an
/// [`crate::Architecture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeId(pub usize);

impl PeId {
    /// Dense index of the PE instance within its architecture.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

impl From<usize> for PeId {
    fn from(value: usize) -> Self {
        PeId(value)
    }
}

/// Broad family of a processing element.
///
/// The class determines the qualitative power/performance trade-off baked
/// into the synthetic technology libraries: general-purpose processors are
/// flexible but power hungry, DSPs excel at signal-processing kernels,
/// accelerators are fast and efficient for their dedicated task types, and
/// low-power cores trade speed for energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeClass {
    /// High-performance general-purpose processor.
    GppFast,
    /// Energy-efficient (slower) general-purpose processor.
    GppSlow,
    /// Digital signal processor.
    Dsp,
    /// Application-specific accelerator.
    Accelerator,
}

impl PeClass {
    /// All PE classes in a stable order.
    pub const ALL: [PeClass; 4] = [
        PeClass::GppFast,
        PeClass::GppSlow,
        PeClass::Dsp,
        PeClass::Accelerator,
    ];
}

impl fmt::Display for PeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PeClass::GppFast => "gpp-fast",
            PeClass::GppSlow => "gpp-slow",
            PeClass::Dsp => "dsp",
            PeClass::Accelerator => "accelerator",
        };
        f.write_str(name)
    }
}

/// A processing-element type available in the technology library.
///
/// The geometric fields (width/height in millimetres) are consumed by the
/// floorplanner and the thermal model; `cost` is the co-synthesis price of
/// instantiating the PE; `idle_power` is dissipated whenever the PE is
/// powered but not executing a task.
#[derive(Debug, Clone, PartialEq)]
pub struct PeType {
    id: PeTypeId,
    name: String,
    class: PeClass,
    width_mm: f64,
    height_mm: f64,
    cost: f64,
    idle_power: f64,
}

impl PeType {
    /// Creates a new PE type description.
    pub fn new(
        id: PeTypeId,
        name: impl Into<String>,
        class: PeClass,
        width_mm: f64,
        height_mm: f64,
        cost: f64,
        idle_power: f64,
    ) -> Self {
        PeType {
            id,
            name: name.into(),
            class,
            width_mm,
            height_mm,
            cost,
            idle_power,
        }
    }

    /// Identifier of the type within its library.
    pub fn id(&self) -> PeTypeId {
        self.id
    }

    /// Human-readable name, e.g. `"arm9-fast"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Family of the PE.
    pub fn class(&self) -> PeClass {
        self.class
    }

    /// Die width in millimetres.
    pub fn width_mm(&self) -> f64 {
        self.width_mm
    }

    /// Die height in millimetres.
    pub fn height_mm(&self) -> f64 {
        self.height_mm
    }

    /// Silicon area in square millimetres.
    pub fn area_mm2(&self) -> f64 {
        self.width_mm * self.height_mm
    }

    /// Co-synthesis cost of instantiating this PE.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Idle (static) power dissipation in watts.
    pub fn idle_power(&self) -> f64 {
        self.idle_power
    }
}

impl fmt::Display for PeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} '{}' ({}, {:.1}x{:.1} mm, cost {:.1})",
            self.id, self.name, self.class, self.width_mm, self.height_mm, self.cost
        )
    }
}

/// A processing-element instance placed in an architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeInstance {
    id: PeId,
    type_id: PeTypeId,
}

impl PeInstance {
    /// Creates an instance of the given type.
    pub fn new(id: PeId, type_id: PeTypeId) -> Self {
        PeInstance { id, type_id }
    }

    /// Instance identifier within its architecture.
    pub fn id(&self) -> PeId {
        self.id
    }

    /// Type of the instance within the technology library.
    pub fn type_id(&self) -> PeTypeId {
        self.type_id
    }
}

impl fmt::Display for PeInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} of {}", self.id, self.type_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_type_geometry_and_accessors() {
        let t = PeType::new(PeTypeId(1), "dsp0", PeClass::Dsp, 4.0, 5.0, 20.0, 0.2);
        assert_eq!(t.id(), PeTypeId(1));
        assert_eq!(t.name(), "dsp0");
        assert_eq!(t.class(), PeClass::Dsp);
        assert_eq!(t.area_mm2(), 20.0);
        assert_eq!(t.cost(), 20.0);
        assert_eq!(t.idle_power(), 0.2);
        assert!(t.to_string().contains("dsp0"));
    }

    #[test]
    fn ids_display_distinctly() {
        assert_eq!(PeTypeId(2).to_string(), "PEType2");
        assert_eq!(PeId(2).to_string(), "PE2");
        assert_eq!(PeTypeId::from(3).index(), 3);
        assert_eq!(PeId::from(4).index(), 4);
    }

    #[test]
    fn instance_links_type() {
        let inst = PeInstance::new(PeId(0), PeTypeId(3));
        assert_eq!(inst.id(), PeId(0));
        assert_eq!(inst.type_id(), PeTypeId(3));
        assert!(inst.to_string().contains("PE0"));
        assert!(inst.to_string().contains("PEType3"));
    }

    #[test]
    fn pe_class_display_is_stable() {
        let names: Vec<String> = PeClass::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names, vec!["gpp-fast", "gpp-slow", "dsp", "accelerator"]);
    }
}
