//! Ready-made libraries and architectures used by the experiments.
//!
//! All experiment drivers (Tables 1–3, the examples and the benches) share
//! the same deterministic technology library so that results are directly
//! comparable across policies and flows.

use crate::architecture::Architecture;
use crate::error::LibraryError;
use crate::generator::LibraryGenerator;
use crate::library::TechLibrary;
use crate::pe::{PeClass, PeTypeId};

/// Seed of the standard experiment library.
pub const STANDARD_LIBRARY_SEED: u64 = 0xDA7E_2005;

/// Number of identical PEs in the paper's platform-based architecture.
pub const PLATFORM_PE_COUNT: usize = 4;

/// Builds the standard deterministic technology library covering
/// `task_type_count` task types.
///
/// The library contains two fast GPPs, two slow GPPs, one DSP and one
/// accelerator, generated with a fixed seed (see
/// [`STANDARD_LIBRARY_SEED`]).
///
/// # Errors
///
/// Returns [`LibraryError::InvalidParameter`] when `task_type_count` is zero.
///
/// # Examples
///
/// ```
/// use tats_techlib::profiles;
///
/// # fn main() -> Result<(), tats_techlib::LibraryError> {
/// let library = profiles::standard_library(10)?;
/// assert_eq!(library.pe_type_count(), 6);
/// # Ok(())
/// # }
/// ```
pub fn standard_library(task_type_count: usize) -> Result<TechLibrary, LibraryError> {
    LibraryGenerator::new(task_type_count)
        .with_seed(STANDARD_LIBRARY_SEED)
        .generate()
}

/// Returns the PE type used for the platform-based architecture: the first
/// fast general-purpose processor of the library.
///
/// The paper's platform experiments use "four identical PEs"; a fast GPP
/// guarantees the deadline can be met on every benchmark, leaving the choice
/// of *where* to place each task to the scheduling policy under test.
///
/// # Errors
///
/// Returns [`LibraryError::NoPeTypes`] if the library contains no fast GPP.
pub fn platform_pe_type(library: &TechLibrary) -> Result<PeTypeId, LibraryError> {
    library
        .pe_types()
        .iter()
        .find(|t| t.class() == PeClass::GppFast)
        .map(|t| t.id())
        .ok_or(LibraryError::NoPeTypes)
}

/// Builds the paper's platform-based architecture: [`PLATFORM_PE_COUNT`]
/// identical instances of [`platform_pe_type`].
///
/// # Errors
///
/// Propagates [`platform_pe_type`] errors.
pub fn platform_architecture(library: &TechLibrary) -> Result<Architecture, LibraryError> {
    let pe_type = platform_pe_type(library)?;
    Ok(Architecture::platform(
        "platform-4xGPP",
        pe_type,
        PLATFORM_PE_COUNT,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_is_deterministic() {
        assert_eq!(standard_library(10).unwrap(), standard_library(10).unwrap());
    }

    #[test]
    fn standard_library_has_six_pe_types() {
        let lib = standard_library(10).unwrap();
        assert_eq!(lib.pe_type_count(), 6);
        assert_eq!(lib.task_type_count(), 10);
    }

    #[test]
    fn platform_pe_type_is_a_fast_gpp() {
        let lib = standard_library(10).unwrap();
        let pe_type = platform_pe_type(&lib).unwrap();
        assert_eq!(lib.pe_type(pe_type).unwrap().class(), PeClass::GppFast);
    }

    #[test]
    fn platform_architecture_has_four_identical_pes() {
        let lib = standard_library(10).unwrap();
        let arch = platform_architecture(&lib).unwrap();
        assert_eq!(arch.pe_count(), PLATFORM_PE_COUNT);
        let first = arch.instances()[0].type_id();
        assert!(arch.instances().iter().all(|i| i.type_id() == first));
        assert!(arch.validate(&lib).is_ok());
    }

    #[test]
    fn zero_task_types_is_rejected() {
        assert!(standard_library(0).is_err());
    }
}
