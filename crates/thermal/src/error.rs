//! Error types for the compact thermal model.

use std::fmt;

/// Errors produced while building floorplans or solving thermal networks.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// A block index was out of range for the floorplan.
    UnknownBlock(usize),
    /// The floorplan contains no blocks.
    EmptyFloorplan,
    /// A block has non-positive width or height.
    DegenerateBlock {
        /// Index of the offending block.
        block: usize,
        /// Offending width in metres.
        width: f64,
        /// Offending height in metres.
        height: f64,
    },
    /// Two blocks overlap geometrically.
    OverlappingBlocks(usize, usize),
    /// The power vector length does not match the number of blocks.
    PowerLengthMismatch {
        /// Number of blocks in the model.
        expected: usize,
        /// Number of power entries supplied.
        actual: usize,
    },
    /// A power entry was negative or non-finite.
    InvalidPower(usize, f64),
    /// The linear system was singular or numerically unsolvable.
    SingularSystem,
    /// An iterative solver did not converge within its iteration budget.
    /// Carries the achieved residual so callers can tell "nearly there"
    /// from "diverging" and retry with a bigger budget or looser tolerance.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
        /// The residual the solver was asked to reach.
        tolerance: f64,
    },
    /// A configuration or solver parameter was out of its valid range.
    InvalidParameter(String),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::UnknownBlock(i) => write!(f, "unknown block index {i}"),
            ThermalError::EmptyFloorplan => write!(f, "floorplan has no blocks"),
            ThermalError::DegenerateBlock {
                block,
                width,
                height,
            } => write!(
                f,
                "block {block} has degenerate dimensions {width} x {height}"
            ),
            ThermalError::OverlappingBlocks(a, b) => {
                write!(f, "blocks {a} and {b} overlap")
            }
            ThermalError::PowerLengthMismatch { expected, actual } => {
                write!(f, "expected {expected} power entries, got {actual}")
            }
            ThermalError::InvalidPower(i, p) => {
                write!(
                    f,
                    "power of block {i} must be non-negative and finite, got {p}"
                )
            }
            ThermalError::SingularSystem => write!(f, "thermal network is singular"),
            ThermalError::NoConvergence {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations: \
                 achieved residual {residual:.3e} vs requested {tolerance:.3e}"
            ),
            ThermalError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_have_nonempty_messages() {
        let errors = vec![
            ThermalError::UnknownBlock(1),
            ThermalError::EmptyFloorplan,
            ThermalError::DegenerateBlock {
                block: 0,
                width: 0.0,
                height: 1.0,
            },
            ThermalError::OverlappingBlocks(0, 1),
            ThermalError::PowerLengthMismatch {
                expected: 4,
                actual: 2,
            },
            ThermalError::InvalidPower(3, f64::NAN),
            ThermalError::SingularSystem,
            ThermalError::NoConvergence {
                iterations: 100,
                residual: 1e-3,
                tolerance: 1e-7,
            },
            ThermalError::InvalidParameter("bad".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn no_convergence_reports_achieved_and_requested_residual() {
        let message = ThermalError::NoConvergence {
            iterations: 42,
            residual: 3.5e-4,
            tolerance: 1e-9,
        }
        .to_string();
        assert!(message.contains("42"));
        assert!(message.contains("3.500e-4"));
        assert!(message.contains("1.000e-9"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync>() {}
        assert_bounds::<ThermalError>();
    }
}
