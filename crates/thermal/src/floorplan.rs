//! Floorplan geometry consumed by the thermal model.
//!
//! A [`Floorplan`] is a set of rectangular, axis-aligned, non-overlapping
//! blocks (one per processing element or functional unit). The thermal model
//! derives lateral heat-flow paths from block adjacency and vertical paths
//! from block areas, exactly as HotSpot's block model does.

use std::fmt;

use crate::error::ThermalError;

/// An axis-aligned rectangular block of the die.
///
/// Coordinates and dimensions are in metres; use [`Block::from_mm`] for the
/// millimetre-denominated geometry stored in technology libraries.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    name: String,
    x: f64,
    y: f64,
    width: f64,
    height: f64,
}

impl Block {
    /// Creates a block from metre-denominated geometry.
    pub fn new(name: impl Into<String>, x: f64, y: f64, width: f64, height: f64) -> Self {
        Block {
            name: name.into(),
            x,
            y,
            width,
            height,
        }
    }

    /// Creates a block from millimetre-denominated geometry.
    pub fn from_mm(name: impl Into<String>, x: f64, y: f64, width: f64, height: f64) -> Self {
        Block::new(name, x * 1e-3, y * 1e-3, width * 1e-3, height * 1e-3)
    }

    /// Block name (typically the PE instance name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Left edge, metres.
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Bottom edge, metres.
    pub fn y(&self) -> f64 {
        self.y
    }

    /// Width, metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height, metres.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The block's bare geometry (no name), as consumed by the cached
    /// thermal kernel. The geometric predicates below delegate to
    /// [`crate::Rect`] so the numerics have a single definition.
    pub fn rect(&self) -> crate::Rect {
        crate::Rect::new(self.x, self.y, self.width, self.height)
    }

    /// Area, square metres.
    pub fn area(&self) -> f64 {
        self.rect().area()
    }

    /// Centre coordinates, metres.
    pub fn center(&self) -> (f64, f64) {
        self.rect().center()
    }

    /// Returns `true` if the interiors of `self` and `other` overlap.
    pub fn overlaps(&self, other: &Block) -> bool {
        let eps = 1e-12;
        self.x + eps < other.x + other.width
            && other.x + eps < self.x + self.width
            && self.y + eps < other.y + other.height
            && other.y + eps < self.y + self.height
    }

    /// Length of the edge shared with `other`, in metres; zero when the
    /// blocks do not abut.
    pub fn shared_edge_length(&self, other: &Block) -> f64 {
        self.rect().shared_edge_length(&other.rect())
    }

    /// Euclidean distance between block centres, metres.
    pub fn center_distance(&self, other: &Block) -> f64 {
        self.rect().center_distance(&other.rect())
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @({:.1},{:.1})mm {:.1}x{:.1}mm",
            self.name,
            self.x * 1e3,
            self.y * 1e3,
            self.width * 1e3,
            self.height * 1e3
        )
    }
}

/// A validated collection of non-overlapping blocks.
///
/// # Examples
///
/// ```
/// use tats_thermal::{Block, Floorplan};
///
/// # fn main() -> Result<(), tats_thermal::ThermalError> {
/// let plan = Floorplan::new(vec![
///     Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0),
///     Block::from_mm("pe1", 7.0, 0.0, 7.0, 7.0),
/// ])?;
/// assert_eq!(plan.block_count(), 2);
/// assert!(plan.shared_edge_length(0, 1)? > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    blocks: Vec<Block>,
}

impl Floorplan {
    /// Validates and wraps a set of blocks.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyFloorplan`] for an empty input,
    /// [`ThermalError::DegenerateBlock`] for blocks with non-positive or
    /// non-finite dimensions, and [`ThermalError::OverlappingBlocks`] when
    /// any two blocks overlap.
    pub fn new(blocks: Vec<Block>) -> Result<Self, ThermalError> {
        if blocks.is_empty() {
            return Err(ThermalError::EmptyFloorplan);
        }
        for (i, b) in blocks.iter().enumerate() {
            let finite =
                b.width.is_finite() && b.height.is_finite() && b.x.is_finite() && b.y.is_finite();
            if !finite || b.width <= 0.0 || b.height <= 0.0 {
                return Err(ThermalError::DegenerateBlock {
                    block: i,
                    width: b.width,
                    height: b.height,
                });
            }
        }
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                if blocks[i].overlaps(&blocks[j]) {
                    return Err(ThermalError::OverlappingBlocks(i, j));
                }
            }
        }
        Ok(Floorplan { blocks })
    }

    /// Lays out `widths_heights` (metre pairs) on a near-square grid with the
    /// given spacing, producing a simple non-overlapping placement.
    ///
    /// This is the placement used for the platform-based architecture (e.g.
    /// four identical PEs in a 2×2 arrangement) and as the initial solution
    /// of the floorplanner.
    ///
    /// # Errors
    ///
    /// Propagates [`Floorplan::new`] validation errors.
    pub fn grid_layout(
        names: &[String],
        widths_heights: &[(f64, f64)],
        spacing: f64,
    ) -> Result<Self, ThermalError> {
        if names.len() != widths_heights.len() {
            return Err(ThermalError::InvalidParameter(format!(
                "{} names vs {} dimensions",
                names.len(),
                widths_heights.len()
            )));
        }
        let n = names.len();
        if n == 0 {
            return Err(ThermalError::EmptyFloorplan);
        }
        let columns = (n as f64).sqrt().ceil() as usize;
        let cell_w = widths_heights
            .iter()
            .map(|&(w, _)| w)
            .fold(0.0_f64, f64::max)
            + spacing;
        let cell_h = widths_heights
            .iter()
            .map(|&(_, h)| h)
            .fold(0.0_f64, f64::max)
            + spacing;
        let blocks = names
            .iter()
            .zip(widths_heights.iter())
            .enumerate()
            .map(|(i, (name, &(w, h)))| {
                let col = i % columns;
                let row = i / columns;
                Block::new(name.clone(), col as f64 * cell_w, row as f64 * cell_h, w, h)
            })
            .collect();
        Floorplan::new(blocks)
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// All blocks in index order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Returns the block at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownBlock`] for an out-of-range index.
    pub fn block(&self, index: usize) -> Result<&Block, ThermalError> {
        self.blocks
            .get(index)
            .ok_or(ThermalError::UnknownBlock(index))
    }

    /// Total silicon area, m².
    pub fn total_area(&self) -> f64 {
        self.blocks.iter().map(Block::area).sum()
    }

    /// Width and height of the bounding box enclosing all blocks, metres.
    pub fn bounding_box(&self) -> (f64, f64) {
        let min_x = self
            .blocks
            .iter()
            .map(|b| b.x)
            .fold(f64::INFINITY, f64::min);
        let min_y = self
            .blocks
            .iter()
            .map(|b| b.y)
            .fold(f64::INFINITY, f64::min);
        let max_x = self
            .blocks
            .iter()
            .map(|b| b.x + b.width)
            .fold(f64::NEG_INFINITY, f64::max);
        let max_y = self
            .blocks
            .iter()
            .map(|b| b.y + b.height)
            .fold(f64::NEG_INFINITY, f64::max);
        (max_x - min_x, max_y - min_y)
    }

    /// Area of the bounding box, m².
    pub fn bounding_area(&self) -> f64 {
        let (w, h) = self.bounding_box();
        w * h
    }

    /// Fraction of the bounding box covered by blocks, in `(0, 1]`.
    pub fn utilisation(&self) -> f64 {
        self.total_area() / self.bounding_area()
    }

    /// Length of the edge shared between blocks `a` and `b`, metres.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownBlock`] for out-of-range indices.
    pub fn shared_edge_length(&self, a: usize, b: usize) -> Result<f64, ThermalError> {
        Ok(self.block(a)?.shared_edge_length(self.block(b)?))
    }
}

impl fmt::Display for Floorplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (w, h) = self.bounding_box();
        write!(
            f,
            "floorplan: {} blocks, {:.1}x{:.1} mm bounding box",
            self.blocks.len(),
            w * 1e3,
            h * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_geometry_helpers() {
        let b = Block::from_mm("b", 1.0, 2.0, 3.0, 4.0);
        assert!((b.area() - 12e-6).abs() < 1e-12);
        let (cx, cy) = b.center();
        assert!((cx - 2.5e-3).abs() < 1e-12);
        assert!((cy - 4.0e-3).abs() < 1e-12);
        assert!(b.to_string().contains("3.0x4.0mm"));
    }

    #[test]
    fn overlap_detection() {
        let a = Block::from_mm("a", 0.0, 0.0, 5.0, 5.0);
        let b = Block::from_mm("b", 4.0, 4.0, 5.0, 5.0);
        let c = Block::from_mm("c", 5.0, 0.0, 5.0, 5.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        // Touching blocks do not count as overlapping.
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn shared_edges_are_symmetric_and_zero_for_distant_blocks() {
        let a = Block::from_mm("a", 0.0, 0.0, 5.0, 5.0);
        let right = Block::from_mm("r", 5.0, 2.0, 5.0, 5.0);
        let above = Block::from_mm("u", 1.0, 5.0, 5.0, 5.0);
        let far = Block::from_mm("f", 20.0, 20.0, 5.0, 5.0);
        assert!((a.shared_edge_length(&right) - 3e-3).abs() < 1e-9);
        assert!((right.shared_edge_length(&a) - 3e-3).abs() < 1e-9);
        assert!((a.shared_edge_length(&above) - 4e-3).abs() < 1e-9);
        assert_eq!(a.shared_edge_length(&far), 0.0);
        // Corner contact only: shares no edge length.
        let corner = Block::from_mm("c", 5.0, 5.0, 5.0, 5.0);
        assert_eq!(a.shared_edge_length(&corner), 0.0);
    }

    #[test]
    fn floorplan_rejects_bad_inputs() {
        assert_eq!(
            Floorplan::new(vec![]).unwrap_err(),
            ThermalError::EmptyFloorplan
        );
        let degenerate = Block::from_mm("d", 0.0, 0.0, 0.0, 5.0);
        assert!(matches!(
            Floorplan::new(vec![degenerate]).unwrap_err(),
            ThermalError::DegenerateBlock { block: 0, .. }
        ));
        let a = Block::from_mm("a", 0.0, 0.0, 5.0, 5.0);
        let b = Block::from_mm("b", 1.0, 1.0, 5.0, 5.0);
        assert_eq!(
            Floorplan::new(vec![a, b]).unwrap_err(),
            ThermalError::OverlappingBlocks(0, 1)
        );
    }

    #[test]
    fn grid_layout_places_four_blocks_without_overlap() {
        let names: Vec<String> = (0..4).map(|i| format!("pe{i}")).collect();
        let dims = vec![(7e-3, 7e-3); 4];
        let plan = Floorplan::grid_layout(&names, &dims, 0.5e-3).unwrap();
        assert_eq!(plan.block_count(), 4);
        let (w, h) = plan.bounding_box();
        assert!(w < 16e-3 && h < 16e-3);
        assert!(plan.utilisation() > 0.5);
    }

    #[test]
    fn grid_layout_rejects_mismatched_inputs() {
        let names = vec!["a".to_string()];
        assert!(matches!(
            Floorplan::grid_layout(&names, &[], 0.0),
            Err(ThermalError::InvalidParameter(_))
        ));
        assert!(matches!(
            Floorplan::grid_layout(&[], &[], 0.0),
            Err(ThermalError::EmptyFloorplan)
        ));
    }

    #[test]
    fn bounding_box_and_areas() {
        let plan = Floorplan::new(vec![
            Block::from_mm("a", 0.0, 0.0, 4.0, 4.0),
            Block::from_mm("b", 6.0, 0.0, 4.0, 4.0),
        ])
        .unwrap();
        let (w, h) = plan.bounding_box();
        assert!((w - 10e-3).abs() < 1e-9);
        assert!((h - 4e-3).abs() < 1e-9);
        assert!((plan.total_area() - 32e-6).abs() < 1e-12);
        assert!((plan.utilisation() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn block_lookup_errors_out_of_range() {
        let plan = Floorplan::new(vec![Block::from_mm("a", 0.0, 0.0, 4.0, 4.0)]).unwrap();
        assert!(plan.block(0).is_ok());
        assert_eq!(plan.block(3).unwrap_err(), ThermalError::UnknownBlock(3));
        assert!(plan.shared_edge_length(0, 3).is_err());
    }
}
