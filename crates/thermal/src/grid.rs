//! Grid-refined steady-state thermal model.
//!
//! The block-level compact model (one node per PE) is what the scheduler
//! queries, matching the paper's use of HotSpot's block mode. For validation
//! and for the ablation benches this module also provides a finer grid model:
//! the floorplan bounding box is discretised into `nx × ny` cells, block
//! power is distributed over the cells it covers, and the resulting sparse
//! system is solved with one of three interchangeable solvers (see
//! [`GridSolver`]).
//!
//! # Solver selection
//!
//! | solver | per-query cost | when it wins |
//! |---|---|---|
//! | [`GridSolver::GaussSeidel`] | `O(iterations · cells)`, thousands of sweeps | reference path; tiny grids; no extra setup |
//! | [`GridSolver::Pcg`] (IC(0)) | tens of sparse sweeps | single queries on large grids; lowest setup cost |
//! | [`GridSolver::PcgJacobi`] | hundreds of sparse sweeps | diagnostics; preconditioner ablations |
//! | [`GridSolver::BandedCholesky`] | one banded sweep (`O(cells · nx)`) after an `O(cells · nx²)` factorisation cached at construction | repeated right-hand sides: sweeps, ablations, transient stepping |
//!
//! The three paths agree to solver tolerance; the equivalence tests in this
//! module pin them together within `1e-6`.

use crate::error::ThermalError;
use crate::floorplan::Floorplan;
use crate::materials::ThermalConfig;
use tats_sparse::{
    BandedMatrix, BorderedBandedCholesky, CgWorkspace, CsrMatrix, PcgSolver, Preconditioner,
    SparseError, SpdBuilder,
};

/// Banded cell core, dense border columns and corner block of the grid
/// system in the form [`BorderedBandedCholesky`] consumes.
pub(crate) type BorderedSystem = (BandedMatrix, Vec<Vec<f64>>, Vec<Vec<f64>>);

/// Converts a sparse-subsystem failure into the thermal error vocabulary.
pub(crate) fn from_sparse(error: SparseError) -> ThermalError {
    match error {
        SparseError::NoConvergence {
            iterations,
            residual,
            tolerance,
        } => ThermalError::NoConvergence {
            iterations,
            residual,
            tolerance,
        },
        SparseError::NotPositiveDefinite { .. } => ThermalError::SingularSystem,
        other => ThermalError::InvalidParameter(other.to_string()),
    }
}

/// Per-cell steady-state temperatures produced by [`GridModel::steady_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridTemperatures {
    nx: usize,
    ny: usize,
    cell_c: Vec<f64>,
    block_avg_c: Vec<f64>,
    block_max_c: Vec<f64>,
}

impl GridTemperatures {
    /// Grid resolution `(nx, ny)`.
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Temperature of the cell at `(ix, iy)`, °C.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for out-of-range indices.
    pub fn cell(&self, ix: usize, iy: usize) -> Result<f64, ThermalError> {
        if ix >= self.nx || iy >= self.ny {
            return Err(ThermalError::InvalidParameter(format!(
                "cell ({ix}, {iy}) outside {}x{} grid",
                self.nx, self.ny
            )));
        }
        Ok(self.cell_c[iy * self.nx + ix])
    }

    /// All cell temperatures in row-major order, °C.
    pub fn cells(&self) -> &[f64] {
        &self.cell_c
    }

    /// Mean temperature of the cells covered by each block, °C.
    pub fn block_average_c(&self) -> &[f64] {
        &self.block_avg_c
    }

    /// Maximum temperature of the cells covered by each block, °C.
    pub fn block_max_c(&self) -> &[f64] {
        &self.block_max_c
    }

    /// Hottest cell temperature on the whole die, °C.
    pub fn max_c(&self) -> f64 {
        self.cell_c
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Steady-state solution strategy of a [`GridModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridSolver {
    /// Point-wise Gauss–Seidel relaxation — the reference implementation.
    #[default]
    GaussSeidel,
    /// Conjugate gradients with a zero-fill incomplete Cholesky (IC(0))
    /// preconditioner over the assembled sparse system.
    Pcg,
    /// Conjugate gradients with the cheaper Jacobi (diagonal)
    /// preconditioner.
    PcgJacobi,
    /// Direct banded Cholesky factorisation of the cell Laplacian
    /// (bandwidth `nx`) with the dense spreader/sink rows handled by block
    /// elimination; the factor is computed once at selection time and
    /// cached for every subsequent right-hand side.
    BandedCholesky,
}

impl GridSolver {
    /// Stable textual name (accepted back by the CLI's `--solver` option).
    pub fn name(&self) -> &'static str {
        match self {
            GridSolver::GaussSeidel => "gauss-seidel",
            GridSolver::Pcg => "pcg",
            GridSolver::PcgJacobi => "pcg-jacobi",
            GridSolver::BandedCholesky => "cholesky",
        }
    }
}

impl std::fmt::Display for GridSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Solver-specific cached artefacts, built once per [`GridModel`].
#[derive(Debug, Clone)]
enum SolverEngine {
    GaussSeidel,
    Pcg {
        matrix: CsrMatrix,
        preconditioner: Preconditioner,
    },
    Cholesky {
        factor: BorderedBandedCholesky,
    },
}

/// Reusable buffers for repeated [`GridModel::steady_state_with`] queries:
/// the node temperature vector doubles as the warm start of iterative
/// solves, so parameter sweeps converge in a handful of iterations.
#[derive(Debug, Clone)]
pub struct GridWorkspace {
    /// Node temperatures: cells, then spreader, then sink.
    t: Vec<f64>,
    /// Heat input per node.
    q: Vec<f64>,
    cg: CgWorkspace,
    /// Iterations of the most recent solve (0 for the direct Cholesky
    /// path, which has no iteration count).
    last_iterations: usize,
    /// Residual the most recent solve achieved (0.0 for the direct path).
    last_residual: f64,
}

impl GridWorkspace {
    /// Iterations the most recent [`GridModel::steady_state_with`] call
    /// took: Gauss–Seidel sweeps or PCG iterations. Zero before the first
    /// solve and for the direct banded-Cholesky path.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// Residual the most recent solve achieved (max temperature change
    /// for Gauss–Seidel, relative residual for PCG). Zero before the
    /// first solve and for the direct banded-Cholesky path.
    pub fn last_residual(&self) -> f64 {
        self.last_residual
    }
}

/// Grid-based steady-state thermal solver.
///
/// # Examples
///
/// ```
/// use tats_thermal::{Block, Floorplan, GridModel, GridSolver, ThermalConfig};
///
/// # fn main() -> Result<(), tats_thermal::ThermalError> {
/// let plan = Floorplan::new(vec![
///     Block::from_mm("hot", 0.0, 0.0, 7.0, 7.0),
///     Block::from_mm("cold", 7.0, 0.0, 7.0, 7.0),
/// ])?;
/// let grid = GridModel::new(&plan, ThermalConfig::default(), 16, 8)?
///     .with_solver(GridSolver::BandedCholesky)?;
/// let temps = grid.steady_state(&[8.0, 0.5])?;
/// assert!(temps.block_average_c()[0] > temps.block_average_c()[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridModel {
    config: ThermalConfig,
    nx: usize,
    ny: usize,
    cell_area: f64,
    /// Fraction of each cell covered by each block: `coverage[block][cell]`.
    coverage: Vec<Vec<f64>>,
    /// Lateral conductance between horizontally adjacent cells, W/K.
    g_lateral_x: f64,
    /// Lateral conductance between vertically adjacent cells, W/K.
    g_lateral_y: f64,
    /// Vertical conductance of one cell towards the spreader, W/K.
    g_vertical: f64,
    solver: GridSolver,
    engine: SolverEngine,
    max_iterations: usize,
    tolerance: f64,
}

impl GridModel {
    /// Builds a grid model over the floorplan bounding box, defaulting to
    /// the Gauss–Seidel reference solver (see [`GridModel::with_solver`]).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a zero-sized grid and
    /// propagates configuration validation errors.
    pub fn new(
        floorplan: &Floorplan,
        config: ThermalConfig,
        nx: usize,
        ny: usize,
    ) -> Result<Self, ThermalError> {
        config.validate()?;
        if nx == 0 || ny == 0 {
            return Err(ThermalError::InvalidParameter(
                "grid resolution must be at least 1x1".to_string(),
            ));
        }
        let (width, height) = floorplan.bounding_box();
        let min_x = floorplan
            .blocks()
            .iter()
            .map(|b| b.x())
            .fold(f64::INFINITY, f64::min);
        let min_y = floorplan
            .blocks()
            .iter()
            .map(|b| b.y())
            .fold(f64::INFINITY, f64::min);
        let cell_w = width / nx as f64;
        let cell_h = height / ny as f64;
        let cell_area = cell_w * cell_h;

        // Coverage of each cell by each block.
        let mut coverage = vec![vec![0.0; nx * ny]; floorplan.block_count()];
        for (b, block) in floorplan.blocks().iter().enumerate() {
            for iy in 0..ny {
                for ix in 0..nx {
                    let cx0 = min_x + ix as f64 * cell_w;
                    let cy0 = min_y + iy as f64 * cell_h;
                    let cx1 = cx0 + cell_w;
                    let cy1 = cy0 + cell_h;
                    let ox = (block.x() + block.width()).min(cx1) - block.x().max(cx0);
                    let oy = (block.y() + block.height()).min(cy1) - block.y().max(cy0);
                    if ox > 0.0 && oy > 0.0 {
                        coverage[b][iy * nx + ix] = (ox * oy) / cell_area;
                    }
                }
            }
        }

        let g_lateral_x = config.lateral_conductance(cell_w, cell_h);
        let g_lateral_y = config.lateral_conductance(cell_h, cell_w);
        let g_vertical = config.vertical_conductance(cell_area);

        Ok(GridModel {
            config,
            nx,
            ny,
            cell_area,
            coverage,
            g_lateral_x,
            g_lateral_y,
            g_vertical,
            solver: GridSolver::GaussSeidel,
            engine: SolverEngine::GaussSeidel,
            max_iterations: 20_000,
            tolerance: 1e-7,
        })
    }

    /// Selects the steady-state solver, building and caching its artefacts
    /// (assembled sparse system, preconditioner or banded factorisation).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] if the assembled system is
    /// not positive definite (cannot happen for validated configurations).
    pub fn with_solver(mut self, solver: GridSolver) -> Result<Self, ThermalError> {
        self.engine = match solver {
            GridSolver::GaussSeidel => SolverEngine::GaussSeidel,
            GridSolver::Pcg | GridSolver::PcgJacobi => {
                let matrix = self.assemble_csr()?;
                let preconditioner = if solver == GridSolver::Pcg {
                    Preconditioner::ic0(&matrix)
                } else {
                    Preconditioner::jacobi(&matrix)
                }
                .map_err(from_sparse)?;
                SolverEngine::Pcg {
                    matrix,
                    preconditioner,
                }
            }
            GridSolver::BandedCholesky => {
                let (core, border, corner) = self.assemble_bordered(0.0, 0.0, 0.0)?;
                let factor =
                    BorderedBandedCholesky::new(&core, &border, &corner).map_err(from_sparse)?;
                SolverEngine::Cholesky { factor }
            }
        };
        self.solver = solver;
        Ok(self)
    }

    /// The selected steady-state solver.
    pub fn solver(&self) -> GridSolver {
        self.solver
    }

    /// Overrides the iteration budget and tolerance of the iterative
    /// solvers (Gauss–Seidel: maximum per-sweep temperature change; PCG:
    /// relative residual). The banded Cholesky path is direct and ignores
    /// both.
    pub fn with_solver_limits(mut self, max_iterations: usize, tolerance: f64) -> Self {
        self.max_iterations = max_iterations;
        self.tolerance = tolerance;
        self
    }

    /// Grid resolution `(nx, ny)`.
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Area of one grid cell, m².
    pub fn cell_area(&self) -> f64 {
        self.cell_area
    }

    /// Number of unknowns of the assembled system (cells + spreader + sink).
    pub fn node_count(&self) -> usize {
        self.nx * self.ny + 2
    }

    /// Assembles the full steady-state conductance matrix (cells, then
    /// spreader, then sink) as a CSR matrix — the system the PCG path
    /// solves and the object the symmetry/diagonal-dominance validation
    /// tests inspect.
    ///
    /// # Errors
    ///
    /// Propagates assembly failures from the sparse builder.
    pub fn system_matrix(&self) -> Result<CsrMatrix, ThermalError> {
        self.assemble_csr()
    }

    fn assemble_csr(&self) -> Result<CsrMatrix, ThermalError> {
        let cells = self.nx * self.ny;
        let spreader = cells;
        let sink = cells + 1;
        let mut builder = SpdBuilder::new(cells + 2);
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let idx = iy * self.nx + ix;
                builder
                    .add_branch(idx, spreader, self.g_vertical)
                    .map_err(from_sparse)?;
                if ix + 1 < self.nx {
                    builder
                        .add_branch(idx, idx + 1, self.g_lateral_x)
                        .map_err(from_sparse)?;
                }
                if iy + 1 < self.ny {
                    builder
                        .add_branch(idx, idx + self.nx, self.g_lateral_y)
                        .map_err(from_sparse)?;
                }
            }
        }
        builder
            .add_branch(
                spreader,
                sink,
                1.0 / self.config.spreader_to_sink_resistance,
            )
            .map_err(from_sparse)?;
        // The convection branch to the (grounded) ambient only touches the
        // sink diagonal; the ambient temperature enters through the rhs.
        builder
            .add_diagonal(sink, 1.0 / self.config.convection_resistance)
            .map_err(from_sparse)?;
        builder.build().map_err(from_sparse)
    }

    /// Assembles the bordered-banded form of the system: the banded cell
    /// Laplacian (bandwidth `nx`), the dense spreader/sink border and the
    /// 2×2 corner. The `*_shift` arguments add to the respective diagonals,
    /// which is how the implicit transient stepper injects `C/dt`.
    pub(crate) fn assemble_bordered(
        &self,
        cell_diagonal_shift: f64,
        spreader_shift: f64,
        sink_shift: f64,
    ) -> Result<BorderedSystem, ThermalError> {
        let cells = self.nx * self.ny;
        let g_sp_sink = 1.0 / self.config.spreader_to_sink_resistance;
        let g_conv = 1.0 / self.config.convection_resistance;
        let mut core = BandedMatrix::zeros(cells, self.nx.min(cells.saturating_sub(1)).max(1));
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let idx = iy * self.nx + ix;
                core.add(idx, idx, self.g_vertical + cell_diagonal_shift)
                    .map_err(from_sparse)?;
                if ix + 1 < self.nx {
                    core.add(idx, idx, self.g_lateral_x).map_err(from_sparse)?;
                    core.add(idx + 1, idx + 1, self.g_lateral_x)
                        .map_err(from_sparse)?;
                    core.add(idx + 1, idx, -self.g_lateral_x)
                        .map_err(from_sparse)?;
                }
                if iy + 1 < self.ny {
                    core.add(idx, idx, self.g_lateral_y).map_err(from_sparse)?;
                    core.add(idx + self.nx, idx + self.nx, self.g_lateral_y)
                        .map_err(from_sparse)?;
                    core.add(idx + self.nx, idx, -self.g_lateral_y)
                        .map_err(from_sparse)?;
                }
            }
        }
        let border = vec![vec![-self.g_vertical; cells], vec![0.0; cells]];
        let corner = vec![
            vec![
                cells as f64 * self.g_vertical + g_sp_sink + spreader_shift,
                -g_sp_sink,
            ],
            vec![-g_sp_sink, g_sp_sink + g_conv + sink_shift],
        ];
        Ok((core, border, corner))
    }

    pub(crate) fn validate_power(&self, block_power: &[f64]) -> Result<(), ThermalError> {
        let block_count = self.coverage.len();
        if block_power.len() != block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: block_count,
                actual: block_power.len(),
            });
        }
        if let Some((i, &p)) = block_power
            .iter()
            .enumerate()
            .find(|(_, p)| !p.is_finite() || **p < 0.0)
        {
            return Err(ThermalError::InvalidPower(i, p));
        }
        Ok(())
    }

    /// Distributes block power over covered cells proportionally to the
    /// covered area and fills the spreader/sink right-hand-side entries.
    pub(crate) fn heat_input_into(&self, block_power: &[f64], q: &mut [f64]) {
        let cells = self.nx * self.ny;
        q.fill(0.0);
        for (b, &p) in block_power.iter().enumerate() {
            let covered: f64 = self.coverage[b].iter().sum();
            if covered <= 0.0 {
                continue;
            }
            for (c, &frac) in self.coverage[b].iter().enumerate() {
                q[c] += p * frac / covered;
            }
        }
        q[cells] = 0.0;
        q[cells + 1] = self.config.ambient_c / self.config.convection_resistance;
    }

    /// Creates a workspace sized for this model, with every node at the
    /// ambient temperature (the iterative solvers' initial guess).
    pub fn workspace(&self) -> GridWorkspace {
        let n = self.node_count();
        GridWorkspace {
            t: vec![self.config.ambient_c; n],
            q: vec![0.0; n],
            cg: CgWorkspace::new(n),
            last_iterations: 0,
            last_residual: 0.0,
        }
    }

    /// Solves the steady-state grid system for the given per-block powers.
    ///
    /// Convenience wrapper around [`GridModel::steady_state_with`] that
    /// creates a fresh workspace per call.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] /
    /// [`ThermalError::InvalidPower`] for malformed input and
    /// [`ThermalError::NoConvergence`] (carrying the achieved residual and
    /// iteration count) if an iterative solver stalls.
    pub fn steady_state(&self, block_power: &[f64]) -> Result<GridTemperatures, ThermalError> {
        self.steady_state_with(block_power, &mut self.workspace())
    }

    /// Solves the steady-state grid system reusing caller-owned buffers.
    /// After the first call no heap allocation occurs on the solve path
    /// (the returned [`GridTemperatures`] owns fresh statistics vectors);
    /// iterative solvers warm-start from the workspace's previous solution.
    ///
    /// # Errors
    ///
    /// See [`GridModel::steady_state`].
    pub fn steady_state_with(
        &self,
        block_power: &[f64],
        workspace: &mut GridWorkspace,
    ) -> Result<GridTemperatures, ThermalError> {
        self.validate_power(block_power)?;
        let n = self.node_count();
        if workspace.t.len() != n {
            workspace.t = vec![self.config.ambient_c; n];
            workspace.q = vec![0.0; n];
            workspace.cg = CgWorkspace::new(n);
        }
        self.heat_input_into(block_power, &mut workspace.q);

        match &self.engine {
            SolverEngine::GaussSeidel => {
                let (iterations, residual) = self.gauss_seidel(&workspace.q, &mut workspace.t)?;
                workspace.last_iterations = iterations;
                workspace.last_residual = residual;
            }
            SolverEngine::Pcg {
                matrix,
                preconditioner,
            } => {
                let summary = PcgSolver::new(self.max_iterations, self.tolerance)
                    .solve_into(
                        matrix,
                        preconditioner,
                        &workspace.q,
                        &mut workspace.t,
                        &mut workspace.cg,
                    )
                    .map_err(from_sparse)?;
                workspace.last_iterations = summary.iterations;
                workspace.last_residual = summary.residual;
            }
            SolverEngine::Cholesky { factor } => {
                workspace.t.copy_from_slice(&workspace.q);
                factor.solve_into(&mut workspace.t).map_err(from_sparse)?;
                workspace.last_iterations = 0;
                workspace.last_residual = 0.0;
            }
        }

        Ok(self.temperatures_from_cells(&workspace.t))
    }

    /// Builds the per-block statistics from a node temperature vector
    /// (cells first; trailing spreader/sink entries are ignored).
    pub(crate) fn temperatures_from_cells(&self, t: &[f64]) -> GridTemperatures {
        let cells = self.nx * self.ny;
        let block_count = self.coverage.len();
        let mut block_avg = vec![0.0; block_count];
        let mut block_max = vec![f64::NEG_INFINITY; block_count];
        for (b, cover) in self.coverage.iter().enumerate() {
            let mut weight = 0.0;
            let mut acc = 0.0;
            for (c, &frac) in cover.iter().enumerate() {
                if frac > 0.0 {
                    acc += frac * t[c];
                    weight += frac;
                    block_max[b] = block_max[b].max(t[c]);
                }
            }
            block_avg[b] = if weight > 0.0 {
                acc / weight
            } else {
                self.config.ambient_c
            };
            if !block_max[b].is_finite() {
                block_max[b] = self.config.ambient_c;
            }
        }

        GridTemperatures {
            nx: self.nx,
            ny: self.ny,
            cell_c: t[..cells].to_vec(),
            block_avg_c: block_avg,
            block_max_c: block_max,
        }
    }

    /// The Gauss–Seidel reference sweep over cells + spreader + sink.
    /// Returns the iteration count and achieved residual on convergence.
    fn gauss_seidel(&self, q: &[f64], t: &mut [f64]) -> Result<(usize, f64), ThermalError> {
        let cells = self.nx * self.ny;
        let spreader = cells;
        let sink = cells + 1;
        let g_sp_sink = 1.0 / self.config.spreader_to_sink_resistance;
        let g_conv = 1.0 / self.config.convection_resistance;

        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        while iterations < self.max_iterations {
            iterations += 1;
            let mut max_change: f64 = 0.0;

            for iy in 0..self.ny {
                for ix in 0..self.nx {
                    let idx = iy * self.nx + ix;
                    let mut num = q[idx] + self.g_vertical * t[spreader];
                    let mut den = self.g_vertical;
                    if ix > 0 {
                        num += self.g_lateral_x * t[idx - 1];
                        den += self.g_lateral_x;
                    }
                    if ix + 1 < self.nx {
                        num += self.g_lateral_x * t[idx + 1];
                        den += self.g_lateral_x;
                    }
                    if iy > 0 {
                        num += self.g_lateral_y * t[idx - self.nx];
                        den += self.g_lateral_y;
                    }
                    if iy + 1 < self.ny {
                        num += self.g_lateral_y * t[idx + self.nx];
                        den += self.g_lateral_y;
                    }
                    let new_t = num / den;
                    max_change = max_change.max((new_t - t[idx]).abs());
                    t[idx] = new_t;
                }
            }

            // Spreader node: connected to every cell and to the sink.
            let mut num = g_sp_sink * t[sink];
            let mut den = g_sp_sink;
            for temp in t.iter().take(cells) {
                num += self.g_vertical * temp;
                den += self.g_vertical;
            }
            let new_spreader = num / den;
            max_change = max_change.max((new_spreader - t[spreader]).abs());
            t[spreader] = new_spreader;

            // Sink node: spreader on one side, ambient on the other.
            let new_sink =
                (g_sp_sink * t[spreader] + g_conv * self.config.ambient_c) / (g_sp_sink + g_conv);
            max_change = max_change.max((new_sink - t[sink]).abs());
            t[sink] = new_sink;

            residual = max_change;
            if residual < self.tolerance {
                return Ok((iterations, residual));
            }
        }
        Err(ThermalError::NoConvergence {
            iterations,
            residual,
            tolerance: self.tolerance,
        })
    }

    /// Thermal configuration the model was built with.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Number of floorplan blocks the model distributes power over.
    pub fn block_count(&self) -> usize {
        self.coverage.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Block;
    use crate::model::ThermalModel;

    fn two_block_plan() -> Floorplan {
        Floorplan::new(vec![
            Block::from_mm("hot", 0.0, 0.0, 7.0, 7.0),
            Block::from_mm("cold", 7.0, 0.0, 7.0, 7.0),
        ])
        .unwrap()
    }

    const ALL_SOLVERS: [GridSolver; 4] = [
        GridSolver::GaussSeidel,
        GridSolver::Pcg,
        GridSolver::PcgJacobi,
        GridSolver::BandedCholesky,
    ];

    #[test]
    fn hot_block_cells_are_hotter_with_every_solver() {
        for solver in ALL_SOLVERS {
            let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 14, 7)
                .unwrap()
                .with_solver(solver)
                .unwrap();
            assert_eq!(grid.solver(), solver);
            let temps = grid.steady_state(&[8.0, 0.5]).unwrap();
            assert!(
                temps.block_average_c()[0] > temps.block_average_c()[1],
                "{solver}"
            );
            assert!(temps.block_max_c()[0] >= temps.block_average_c()[0]);
            assert_eq!(temps.resolution(), (14, 7));
            assert_eq!(temps.cells().len(), 14 * 7);
        }
    }

    #[test]
    fn workspace_reports_solver_telemetry() {
        for solver in ALL_SOLVERS {
            let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 14, 7)
                .unwrap()
                .with_solver(solver)
                .unwrap();
            let mut workspace = grid.workspace();
            assert_eq!(workspace.last_iterations(), 0);
            assert_eq!(workspace.last_residual(), 0.0);
            grid.steady_state_with(&[8.0, 0.5], &mut workspace).unwrap();
            if solver == GridSolver::BandedCholesky {
                // Direct solve: no iteration count, exact residual.
                assert_eq!(workspace.last_iterations(), 0);
                assert_eq!(workspace.last_residual(), 0.0);
            } else {
                assert!(workspace.last_iterations() > 0, "{solver}");
                assert!(
                    workspace.last_residual().is_finite() && workspace.last_residual() >= 0.0,
                    "{solver}: {}",
                    workspace.last_residual()
                );
            }
            // A warm restart of the same solve converges at least as fast.
            let cold = workspace.last_iterations();
            grid.steady_state_with(&[8.0, 0.5], &mut workspace).unwrap();
            assert!(workspace.last_iterations() <= cold, "{solver}");
        }
    }

    #[test]
    fn grid_and_block_models_agree_qualitatively() {
        let plan = two_block_plan();
        let config = ThermalConfig::default();
        let block_model = ThermalModel::new(&plan, config).unwrap();
        let grid = GridModel::new(&plan, config, 16, 8).unwrap();
        let power = [6.0, 2.0];
        let block_temps = block_model.steady_state(&power).unwrap();
        let grid_temps = grid.steady_state(&power).unwrap();
        // Same ordering and the averages agree within a few degrees.
        assert!(grid_temps.block_average_c()[0] > grid_temps.block_average_c()[1]);
        for i in 0..2 {
            let diff = (grid_temps.block_average_c()[i] - block_temps.block(i).unwrap()).abs();
            assert!(diff < 10.0, "block {i} differs by {diff} C");
        }
    }

    #[test]
    fn zero_power_settles_at_ambient_everywhere() {
        for solver in ALL_SOLVERS {
            let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 8, 4)
                .unwrap()
                .with_solver(solver)
                .unwrap();
            let temps = grid.steady_state(&[0.0, 0.0]).unwrap();
            for &c in temps.cells() {
                assert!((c - 45.0).abs() < 1e-3, "{solver}: {c}");
            }
            assert!((temps.max_c() - 45.0).abs() < 1e-3);
        }
    }

    #[test]
    fn hotspot_is_inside_the_powered_block() {
        let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 14, 7).unwrap();
        let temps = grid.steady_state(&[10.0, 0.0]).unwrap();
        // The hottest cell must lie in the left half of the grid.
        let (nx, ny) = temps.resolution();
        let mut best = (0usize, 0usize);
        let mut best_t = f64::MIN;
        for iy in 0..ny {
            for ix in 0..nx {
                let t = temps.cell(ix, iy).unwrap();
                if t > best_t {
                    best_t = t;
                    best = (ix, iy);
                }
            }
        }
        assert!(
            best.0 < nx / 2,
            "hottest cell {best:?} not in the hot block"
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 8, 4).unwrap();
        assert!(grid.steady_state(&[1.0]).is_err());
        assert!(grid.steady_state(&[1.0, -1.0]).is_err());
        assert!(GridModel::new(&two_block_plan(), ThermalConfig::default(), 0, 4).is_err());
        let temps = grid.steady_state(&[1.0, 1.0]).unwrap();
        assert!(temps.cell(99, 0).is_err());
    }

    #[test]
    fn starved_solvers_report_achieved_residual() {
        for solver in [GridSolver::GaussSeidel, GridSolver::PcgJacobi] {
            let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 16, 8)
                .unwrap()
                .with_solver(solver)
                .unwrap()
                .with_solver_limits(2, 1e-12);
            match grid.steady_state(&[5.0, 5.0]) {
                Err(ThermalError::NoConvergence {
                    iterations,
                    residual,
                    tolerance,
                }) => {
                    assert_eq!(iterations, 2, "{solver}");
                    assert!(residual > tolerance);
                }
                other => panic!("{solver}: expected NoConvergence, got {other:?}"),
            }
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 12, 6)
            .unwrap()
            .with_solver(GridSolver::BandedCholesky)
            .unwrap();
        let mut workspace = grid.workspace();
        for power in [[3.0, 1.0], [0.5, 9.0], [2.0, 2.0]] {
            let reused = grid.steady_state_with(&power, &mut workspace).unwrap();
            let fresh = grid.steady_state(&power).unwrap();
            for (a, b) in reused.cells().iter().zip(fresh.cells()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn system_matrix_shape_matches_node_count() {
        let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 6, 3).unwrap();
        let matrix = grid.system_matrix().unwrap();
        assert_eq!(matrix.n(), grid.node_count());
        assert_eq!(matrix.n(), 6 * 3 + 2);
        // 5-point stencil + spreader coupling per cell, spreader-sink
        // branch, convection diagonal.
        assert!(matrix.nnz() > 5 * 18);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::floorplan::Block;
    use proptest::prelude::*;

    /// A randomized strip floorplan: blocks of random sizes side by side
    /// (never overlapping by construction).
    fn strip_plan(widths_mm: &[f64], height_mm: f64) -> Floorplan {
        let mut x = 0.0;
        let mut blocks = Vec::with_capacity(widths_mm.len());
        for (i, &w) in widths_mm.iter().enumerate() {
            blocks.push(Block::from_mm(format!("b{i}"), x, 0.0, w, height_mm));
            x += w;
        }
        Floorplan::new(blocks).unwrap()
    }

    proptest! {
        /// PCG (both preconditioners) and banded Cholesky match the
        /// tight-tolerance Gauss–Seidel reference within 1e-6 on randomized
        /// floorplans and power assignments.
        #[test]
        fn sparse_solvers_match_gauss_seidel(
            widths in proptest::collection::vec(2.0f64..8.0, 2..5),
            height in 4.0f64..10.0,
            powers in proptest::collection::vec(0.0f64..10.0, 4),
            nx in 6usize..12,
            ny in 3usize..7,
        ) {
            let plan = strip_plan(&widths, height);
            let power = &powers[..widths.len()];
            let config = ThermalConfig::default();
            let reference = GridModel::new(&plan, config, nx, ny)
                .unwrap()
                .with_solver_limits(500_000, 1e-11)
                .steady_state(power)
                .unwrap();
            for solver in [
                GridSolver::Pcg,
                GridSolver::PcgJacobi,
                GridSolver::BandedCholesky,
            ] {
                let temps = GridModel::new(&plan, config, nx, ny)
                    .unwrap()
                    .with_solver(solver)
                    .unwrap()
                    .with_solver_limits(100_000, 1e-12)
                    .steady_state(power)
                    .unwrap();
                for (cell, (a, b)) in temps.cells().iter().zip(reference.cells()).enumerate() {
                    prop_assert!(
                        (a - b).abs() < 1e-6,
                        "{solver} cell {cell}: {a} vs {b}"
                    );
                }
                for (a, b) in temps
                    .block_average_c()
                    .iter()
                    .zip(reference.block_average_c())
                {
                    prop_assert!((a - b).abs() < 1e-6, "{solver} block avg {a} vs {b}");
                }
            }
        }

        /// Every assembled grid system is symmetric and diagonally dominant
        /// (the structural properties PCG and Cholesky rely on).
        #[test]
        fn assembled_grid_matrices_are_symmetric_diagonally_dominant(
            widths in proptest::collection::vec(2.0f64..8.0, 2..5),
            height in 4.0f64..10.0,
            nx in 1usize..14,
            ny in 1usize..9,
        ) {
            let plan = strip_plan(&widths, height);
            let matrix = GridModel::new(&plan, ThermalConfig::default(), nx, ny)
                .unwrap()
                .system_matrix()
                .unwrap();
            prop_assert_eq!(matrix.n(), nx * ny + 2);
            prop_assert_eq!(matrix.max_asymmetry(), 0.0);
            prop_assert!(matrix.is_diagonally_dominant(1e-9 * matrix.n() as f64));
            for (i, d) in matrix.diagonal().into_iter().enumerate() {
                prop_assert!(d > 0.0, "diagonal {i} is {d}");
            }
        }
    }
}
