//! Grid-refined steady-state thermal model.
//!
//! The block-level compact model (one node per PE) is what the scheduler
//! queries, matching the paper's use of HotSpot's block mode. For validation
//! and for the ablation benches this module also provides a finer grid model:
//! the floorplan bounding box is discretised into `nx × ny` cells, block
//! power is distributed over the cells it covers, and the resulting sparse
//! system is solved with Gauss–Seidel iteration.

use crate::error::ThermalError;
use crate::floorplan::Floorplan;
use crate::materials::ThermalConfig;

/// Per-cell steady-state temperatures produced by [`GridModel::steady_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridTemperatures {
    nx: usize,
    ny: usize,
    cell_c: Vec<f64>,
    block_avg_c: Vec<f64>,
    block_max_c: Vec<f64>,
}

impl GridTemperatures {
    /// Grid resolution `(nx, ny)`.
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Temperature of the cell at `(ix, iy)`, °C.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for out-of-range indices.
    pub fn cell(&self, ix: usize, iy: usize) -> Result<f64, ThermalError> {
        if ix >= self.nx || iy >= self.ny {
            return Err(ThermalError::InvalidParameter(format!(
                "cell ({ix}, {iy}) outside {}x{} grid",
                self.nx, self.ny
            )));
        }
        Ok(self.cell_c[iy * self.nx + ix])
    }

    /// All cell temperatures in row-major order, °C.
    pub fn cells(&self) -> &[f64] {
        &self.cell_c
    }

    /// Mean temperature of the cells covered by each block, °C.
    pub fn block_average_c(&self) -> &[f64] {
        &self.block_avg_c
    }

    /// Maximum temperature of the cells covered by each block, °C.
    pub fn block_max_c(&self) -> &[f64] {
        &self.block_max_c
    }

    /// Hottest cell temperature on the whole die, °C.
    pub fn max_c(&self) -> f64 {
        self.cell_c
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Grid-based steady-state thermal solver.
///
/// # Examples
///
/// ```
/// use tats_thermal::{Block, Floorplan, GridModel, ThermalConfig};
///
/// # fn main() -> Result<(), tats_thermal::ThermalError> {
/// let plan = Floorplan::new(vec![
///     Block::from_mm("hot", 0.0, 0.0, 7.0, 7.0),
///     Block::from_mm("cold", 7.0, 0.0, 7.0, 7.0),
/// ])?;
/// let grid = GridModel::new(&plan, ThermalConfig::default(), 16, 8)?;
/// let temps = grid.steady_state(&[8.0, 0.5])?;
/// assert!(temps.block_average_c()[0] > temps.block_average_c()[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridModel {
    config: ThermalConfig,
    nx: usize,
    ny: usize,
    cell_area: f64,
    /// Fraction of each cell covered by each block: `coverage[block][cell]`.
    coverage: Vec<Vec<f64>>,
    /// Lateral conductance between horizontally adjacent cells, W/K.
    g_lateral_x: f64,
    /// Lateral conductance between vertically adjacent cells, W/K.
    g_lateral_y: f64,
    /// Vertical conductance of one cell towards the spreader, W/K.
    g_vertical: f64,
    max_iterations: usize,
    tolerance: f64,
}

impl GridModel {
    /// Builds a grid model over the floorplan bounding box.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a zero-sized grid and
    /// propagates configuration validation errors.
    pub fn new(
        floorplan: &Floorplan,
        config: ThermalConfig,
        nx: usize,
        ny: usize,
    ) -> Result<Self, ThermalError> {
        config.validate()?;
        if nx == 0 || ny == 0 {
            return Err(ThermalError::InvalidParameter(
                "grid resolution must be at least 1x1".to_string(),
            ));
        }
        let (width, height) = floorplan.bounding_box();
        let min_x = floorplan
            .blocks()
            .iter()
            .map(|b| b.x())
            .fold(f64::INFINITY, f64::min);
        let min_y = floorplan
            .blocks()
            .iter()
            .map(|b| b.y())
            .fold(f64::INFINITY, f64::min);
        let cell_w = width / nx as f64;
        let cell_h = height / ny as f64;
        let cell_area = cell_w * cell_h;

        // Coverage of each cell by each block.
        let mut coverage = vec![vec![0.0; nx * ny]; floorplan.block_count()];
        for (b, block) in floorplan.blocks().iter().enumerate() {
            for iy in 0..ny {
                for ix in 0..nx {
                    let cx0 = min_x + ix as f64 * cell_w;
                    let cy0 = min_y + iy as f64 * cell_h;
                    let cx1 = cx0 + cell_w;
                    let cy1 = cy0 + cell_h;
                    let ox = (block.x() + block.width()).min(cx1) - block.x().max(cx0);
                    let oy = (block.y() + block.height()).min(cy1) - block.y().max(cy0);
                    if ox > 0.0 && oy > 0.0 {
                        coverage[b][iy * nx + ix] = (ox * oy) / cell_area;
                    }
                }
            }
        }

        let g_lateral_x = config.lateral_conductance(cell_w, cell_h);
        let g_lateral_y = config.lateral_conductance(cell_h, cell_w);
        let g_vertical = config.vertical_conductance(cell_area);

        Ok(GridModel {
            config,
            nx,
            ny,
            cell_area,
            coverage,
            g_lateral_x,
            g_lateral_y,
            g_vertical,
            max_iterations: 20_000,
            tolerance: 1e-7,
        })
    }

    /// Overrides the Gauss–Seidel iteration budget and tolerance.
    pub fn with_solver_limits(mut self, max_iterations: usize, tolerance: f64) -> Self {
        self.max_iterations = max_iterations;
        self.tolerance = tolerance;
        self
    }

    /// Grid resolution `(nx, ny)`.
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Area of one grid cell, m².
    pub fn cell_area(&self) -> f64 {
        self.cell_area
    }

    /// Solves the steady-state grid system for the given per-block powers.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] /
    /// [`ThermalError::InvalidPower`] for malformed input and
    /// [`ThermalError::NoConvergence`] if Gauss–Seidel stalls.
    pub fn steady_state(&self, block_power: &[f64]) -> Result<GridTemperatures, ThermalError> {
        let block_count = self.coverage.len();
        if block_power.len() != block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: block_count,
                actual: block_power.len(),
            });
        }
        if let Some((i, &p)) = block_power
            .iter()
            .enumerate()
            .find(|(_, p)| !p.is_finite() || **p < 0.0)
        {
            return Err(ThermalError::InvalidPower(i, p));
        }

        let cells = self.nx * self.ny;
        // Distribute block power over covered cells proportionally to the
        // covered area (power density × overlap area).
        let mut q = vec![0.0; cells];
        for (b, &p) in block_power.iter().enumerate() {
            let covered: f64 = self.coverage[b].iter().sum();
            if covered <= 0.0 {
                continue;
            }
            for (c, &frac) in self.coverage[b].iter().enumerate() {
                q[c] += p * frac / covered;
            }
        }

        // Unknowns: cell temperatures + spreader + sink.
        let spreader = cells;
        let sink = cells + 1;
        let mut t = vec![self.config.ambient_c; cells + 2];
        let g_sp_sink = 1.0 / self.config.spreader_to_sink_resistance;
        let g_conv = 1.0 / self.config.convection_resistance;

        let neighbour_conductances = |ix: usize, iy: usize| {
            let mut list: Vec<(usize, f64)> = Vec::with_capacity(4);
            if ix > 0 {
                list.push((iy * self.nx + ix - 1, self.g_lateral_x));
            }
            if ix + 1 < self.nx {
                list.push((iy * self.nx + ix + 1, self.g_lateral_x));
            }
            if iy > 0 {
                list.push(((iy - 1) * self.nx + ix, self.g_lateral_y));
            }
            if iy + 1 < self.ny {
                list.push(((iy + 1) * self.nx + ix, self.g_lateral_y));
            }
            list
        };

        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        while iterations < self.max_iterations {
            iterations += 1;
            let mut max_change: f64 = 0.0;

            for iy in 0..self.ny {
                for ix in 0..self.nx {
                    let idx = iy * self.nx + ix;
                    let mut num = q[idx] + self.g_vertical * t[spreader];
                    let mut den = self.g_vertical;
                    for (n, g) in neighbour_conductances(ix, iy) {
                        num += g * t[n];
                        den += g;
                    }
                    let new_t = num / den;
                    max_change = max_change.max((new_t - t[idx]).abs());
                    t[idx] = new_t;
                }
            }

            // Spreader node: connected to every cell and to the sink.
            let mut num = g_sp_sink * t[sink];
            let mut den = g_sp_sink;
            for (idx, temp) in t.iter().enumerate().take(cells) {
                num += self.g_vertical * temp;
                den += self.g_vertical;
                let _ = idx;
            }
            let new_spreader = num / den;
            max_change = max_change.max((new_spreader - t[spreader]).abs());
            t[spreader] = new_spreader;

            // Sink node: spreader on one side, ambient on the other.
            let new_sink =
                (g_sp_sink * t[spreader] + g_conv * self.config.ambient_c) / (g_sp_sink + g_conv);
            max_change = max_change.max((new_sink - t[sink]).abs());
            t[sink] = new_sink;

            residual = max_change;
            if residual < self.tolerance {
                break;
            }
        }
        if residual >= self.tolerance {
            return Err(ThermalError::NoConvergence {
                iterations,
                residual,
            });
        }

        // Per-block statistics over covered cells.
        let mut block_avg = vec![0.0; block_count];
        let mut block_max = vec![f64::NEG_INFINITY; block_count];
        for (b, cover) in self.coverage.iter().enumerate() {
            let mut weight = 0.0;
            let mut acc = 0.0;
            for (c, &frac) in cover.iter().enumerate() {
                if frac > 0.0 {
                    acc += frac * t[c];
                    weight += frac;
                    block_max[b] = block_max[b].max(t[c]);
                }
            }
            block_avg[b] = if weight > 0.0 {
                acc / weight
            } else {
                self.config.ambient_c
            };
            if !block_max[b].is_finite() {
                block_max[b] = self.config.ambient_c;
            }
        }

        Ok(GridTemperatures {
            nx: self.nx,
            ny: self.ny,
            cell_c: t[..cells].to_vec(),
            block_avg_c: block_avg,
            block_max_c: block_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Block;
    use crate::model::ThermalModel;

    fn two_block_plan() -> Floorplan {
        Floorplan::new(vec![
            Block::from_mm("hot", 0.0, 0.0, 7.0, 7.0),
            Block::from_mm("cold", 7.0, 0.0, 7.0, 7.0),
        ])
        .unwrap()
    }

    #[test]
    fn hot_block_cells_are_hotter() {
        let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 14, 7).unwrap();
        let temps = grid.steady_state(&[8.0, 0.5]).unwrap();
        assert!(temps.block_average_c()[0] > temps.block_average_c()[1]);
        assert!(temps.block_max_c()[0] >= temps.block_average_c()[0]);
        assert_eq!(temps.resolution(), (14, 7));
        assert_eq!(temps.cells().len(), 14 * 7);
    }

    #[test]
    fn grid_and_block_models_agree_qualitatively() {
        let plan = two_block_plan();
        let config = ThermalConfig::default();
        let block_model = ThermalModel::new(&plan, config).unwrap();
        let grid = GridModel::new(&plan, config, 16, 8).unwrap();
        let power = [6.0, 2.0];
        let block_temps = block_model.steady_state(&power).unwrap();
        let grid_temps = grid.steady_state(&power).unwrap();
        // Same ordering and the averages agree within a few degrees.
        assert!(grid_temps.block_average_c()[0] > grid_temps.block_average_c()[1]);
        for i in 0..2 {
            let diff = (grid_temps.block_average_c()[i] - block_temps.block(i).unwrap()).abs();
            assert!(diff < 10.0, "block {i} differs by {diff} C");
        }
    }

    #[test]
    fn zero_power_settles_at_ambient_everywhere() {
        let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 8, 4).unwrap();
        let temps = grid.steady_state(&[0.0, 0.0]).unwrap();
        for &c in temps.cells() {
            assert!((c - 45.0).abs() < 1e-3);
        }
        assert!((temps.max_c() - 45.0).abs() < 1e-3);
    }

    #[test]
    fn hotspot_is_inside_the_powered_block() {
        let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 14, 7).unwrap();
        let temps = grid.steady_state(&[10.0, 0.0]).unwrap();
        // The hottest cell must lie in the left half of the grid.
        let (nx, ny) = temps.resolution();
        let mut best = (0usize, 0usize);
        let mut best_t = f64::MIN;
        for iy in 0..ny {
            for ix in 0..nx {
                let t = temps.cell(ix, iy).unwrap();
                if t > best_t {
                    best_t = t;
                    best = (ix, iy);
                }
            }
        }
        assert!(
            best.0 < nx / 2,
            "hottest cell {best:?} not in the hot block"
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 8, 4).unwrap();
        assert!(grid.steady_state(&[1.0]).is_err());
        assert!(grid.steady_state(&[1.0, -1.0]).is_err());
        assert!(GridModel::new(&two_block_plan(), ThermalConfig::default(), 0, 4).is_err());
        let temps = grid.steady_state(&[1.0, 1.0]).unwrap();
        assert!(temps.cell(99, 0).is_err());
    }

    #[test]
    fn starved_solver_reports_no_convergence() {
        let grid = GridModel::new(&two_block_plan(), ThermalConfig::default(), 16, 8)
            .unwrap()
            .with_solver_limits(2, 1e-12);
        assert!(matches!(
            grid.steady_state(&[5.0, 5.0]),
            Err(ThermalError::NoConvergence { .. })
        ));
    }
}
