//! Transient (time-domain) integration of the grid thermal model.
//!
//! The block-level [`crate::TransientSolver`] integrates the compact RC
//! network (a handful of nodes, dense LU). Validating hotspot *movement*
//! needs the same time-domain response on the fine grid, where a dense
//! factorisation is hopeless: the implicit backward-Euler matrix
//! `C/dt + G` has the same bordered-banded structure as the steady-state
//! system, so this solver factorises it **once** with
//! [`tats_sparse::BorderedBandedCholesky`] at construction and reuses the
//! cached factor for every step of every phase.

use crate::error::ThermalError;
use crate::grid::{from_sparse, GridModel, GridTemperatures};
use crate::transient::PowerPhase;
use tats_sparse::BorderedBandedCholesky;

/// Result of one transient grid integration.
#[derive(Debug, Clone, PartialEq)]
pub struct GridTransientResult {
    /// Temperature field at the end of the trace.
    pub end: GridTemperatures,
    /// Hottest cell temperature observed at any accepted step, °C.
    pub peak_c: f64,
    /// Implicit steps taken.
    pub steps: usize,
}

/// Implicit (backward Euler) transient stepper over a [`GridModel`].
///
/// # Examples
///
/// ```
/// use tats_thermal::{
///     Block, Floorplan, GridModel, GridTransientSolver, PowerPhase, ThermalConfig,
/// };
///
/// # fn main() -> Result<(), tats_thermal::ThermalError> {
/// let plan = Floorplan::new(vec![
///     Block::from_mm("hot", 0.0, 0.0, 7.0, 7.0),
///     Block::from_mm("cold", 7.0, 0.0, 7.0, 7.0),
/// ])?;
/// let grid = GridModel::new(&plan, ThermalConfig::default(), 8, 4)?;
/// let solver = GridTransientSolver::new(&grid, 0.05)?;
/// let result = solver.run(45.0, &[PowerPhase::new(100.0, vec![8.0, 0.5])])?;
/// assert!(result.peak_c > 45.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridTransientSolver<'a> {
    model: &'a GridModel,
    /// Integration step in seconds.
    dt_seconds: f64,
    /// Cached factor of `C/dt + G` for the nominal step.
    factor: BorderedBandedCholesky,
    /// Per-node thermal capacitance (cells, spreader, sink), J/K.
    capacitance: Vec<f64>,
}

impl<'a> GridTransientSolver<'a> {
    /// Builds the stepper and factorises `C/dt + G` for the given step.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a non-positive step
    /// and propagates factorisation failures.
    pub fn new(model: &'a GridModel, dt_seconds: f64) -> Result<Self, ThermalError> {
        if dt_seconds <= 0.0 || !dt_seconds.is_finite() {
            return Err(ThermalError::InvalidParameter(format!(
                "time step must be positive, got {dt_seconds}"
            )));
        }
        let capacitance = Self::node_capacitance(model);
        let factor = Self::implicit_factor(model, &capacitance, dt_seconds)?;
        Ok(GridTransientSolver {
            model,
            dt_seconds,
            factor,
            capacitance,
        })
    }

    fn node_capacitance(model: &GridModel) -> Vec<f64> {
        let config = model.config();
        let cells = model.node_count() - 2;
        let mut capacitance = vec![config.block_capacitance(model.cell_area()); cells];
        capacitance.push(config.spreader_capacitance);
        capacitance.push(config.sink_capacitance);
        capacitance
    }

    fn implicit_factor(
        model: &GridModel,
        capacitance: &[f64],
        dt: f64,
    ) -> Result<BorderedBandedCholesky, ThermalError> {
        let cells = model.node_count() - 2;
        // All cells share one capacitance value, so a scalar diagonal shift
        // covers the core; the spreader/sink shifts go into the corner.
        let (core, border, corner) = model.assemble_bordered(
            capacitance[0] / dt,
            capacitance[cells] / dt,
            capacitance[cells + 1] / dt,
        )?;
        BorderedBandedCholesky::new(&core, &border, &corner).map_err(from_sparse)
    }

    /// The integration step in seconds.
    pub fn dt_seconds(&self) -> f64 {
        self.dt_seconds
    }

    /// Integrates the power trace starting from a uniform temperature
    /// field and returns the final field plus the observed peak.
    ///
    /// Full steps reuse the cached factor; a trailing partial step (phase
    /// duration not divisible by the step) triggers one ad-hoc
    /// factorisation for that step length.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for malformed phases and
    /// propagates power validation errors.
    pub fn run(
        &self,
        start_c: f64,
        trace: &[PowerPhase],
    ) -> Result<GridTransientResult, ThermalError> {
        if !start_c.is_finite() {
            return Err(ThermalError::InvalidParameter(format!(
                "start temperature must be finite, got {start_c}"
            )));
        }
        let n = self.model.node_count();
        let cells = n - 2;
        let time_unit = self.model.config().time_unit_seconds;
        let mut state = vec![start_c; n];
        let mut q = vec![0.0; n];
        let mut rhs = vec![0.0; n];
        let mut peak_c = state[..cells]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let mut steps = 0usize;

        for (phase_index, phase) in trace.iter().enumerate() {
            if phase.duration_units < 0.0 || !phase.duration_units.is_finite() {
                return Err(ThermalError::InvalidParameter(format!(
                    "phase {phase_index} has invalid duration {}",
                    phase.duration_units
                )));
            }
            self.model.validate_power(&phase.block_power)?;
            self.model.heat_input_into(&phase.block_power, &mut q);

            let mut remaining = phase.duration_units * time_unit;
            while remaining > 1e-12 {
                let dt = remaining.min(self.dt_seconds);
                let partial = (dt - self.dt_seconds).abs() > 1e-15;
                // (C/dt + G) T' = C/dt * T + Q.
                for i in 0..n {
                    rhs[i] = self.capacitance[i] / dt * state[i] + q[i];
                }
                if partial {
                    let factor = Self::implicit_factor(self.model, &self.capacitance, dt)?;
                    factor.solve_into(&mut rhs).map_err(from_sparse)?;
                } else {
                    self.factor.solve_into(&mut rhs).map_err(from_sparse)?;
                }
                state.copy_from_slice(&rhs);
                steps += 1;
                let phase_peak = state[..cells]
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                peak_c = peak_c.max(phase_peak);
                remaining -= dt;
            }
        }

        let end = self.model.temperatures_from_cells(&state);
        Ok(GridTransientResult { end, peak_c, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Block, Floorplan};
    use crate::grid::GridSolver;
    use crate::materials::ThermalConfig;

    fn grid() -> (Floorplan, ThermalConfig) {
        let plan = Floorplan::new(vec![
            Block::from_mm("hot", 0.0, 0.0, 7.0, 7.0),
            Block::from_mm("cold", 7.0, 0.0, 7.0, 7.0),
        ])
        .unwrap();
        (plan, ThermalConfig::default())
    }

    #[test]
    fn long_constant_power_approaches_grid_steady_state() {
        let (plan, config) = grid();
        let model = GridModel::new(&plan, config, 10, 5)
            .unwrap()
            .with_solver(GridSolver::BandedCholesky)
            .unwrap();
        let steady = model.steady_state(&[6.0, 1.0]).unwrap();
        let solver = GridTransientSolver::new(&model, 0.5).unwrap();
        // 100 000 time units at 10 ms = 1000 s >> the package time constant.
        let result = solver
            .run(
                config.ambient_c,
                &[PowerPhase::new(100_000.0, vec![6.0, 1.0])],
            )
            .unwrap();
        for (transient, steady) in result.end.cells().iter().zip(steady.cells()) {
            assert!((transient - steady).abs() < 0.5, "{transient} vs {steady}");
        }
        assert!(result.steps > 0);
        assert!(result.peak_c <= steady.max_c() + 0.5);
    }

    #[test]
    fn heating_then_cooling_peaks_in_the_middle() {
        let (plan, config) = grid();
        let model = GridModel::new(&plan, config, 8, 4).unwrap();
        let solver = GridTransientSolver::new(&model, 0.1).unwrap();
        let result = solver
            .run(
                config.ambient_c,
                &[
                    PowerPhase::new(2_000.0, vec![9.0, 0.0]),
                    PowerPhase::new(2_000.0, vec![0.0, 0.0]),
                ],
            )
            .unwrap();
        assert!(result.peak_c > result.end.max_c());
        assert!(result.end.max_c() >= config.ambient_c - 1e-6);
    }

    #[test]
    fn partial_final_steps_are_integrated() {
        let (plan, config) = grid();
        let model = GridModel::new(&plan, config, 6, 3).unwrap();
        let solver = GridTransientSolver::new(&model, 0.4).unwrap();
        assert!((solver.dt_seconds() - 0.4).abs() < 1e-12);
        // 10 units * 0.01 s = 0.1 s < one nominal step: a single partial
        // step covers the whole phase.
        let result = solver
            .run(config.ambient_c, &[PowerPhase::new(10.0, vec![5.0, 5.0])])
            .unwrap();
        assert_eq!(result.steps, 1);
        assert!(result.peak_c > config.ambient_c);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (plan, config) = grid();
        let model = GridModel::new(&plan, config, 6, 3).unwrap();
        assert!(GridTransientSolver::new(&model, 0.0).is_err());
        assert!(GridTransientSolver::new(&model, f64::NAN).is_err());
        let solver = GridTransientSolver::new(&model, 0.1).unwrap();
        assert!(solver.run(f64::NAN, &[]).is_err());
        assert!(solver
            .run(45.0, &[PowerPhase::new(-1.0, vec![1.0, 1.0])])
            .is_err());
        assert!(solver
            .run(45.0, &[PowerPhase::new(1.0, vec![1.0])])
            .is_err());
        assert!(solver
            .run(45.0, &[PowerPhase::new(1.0, vec![1.0, -2.0])])
            .is_err());
    }

    #[test]
    fn empty_trace_returns_the_initial_field() {
        let (plan, config) = grid();
        let model = GridModel::new(&plan, config, 6, 3).unwrap();
        let solver = GridTransientSolver::new(&model, 0.1).unwrap();
        let result = solver.run(60.0, &[]).unwrap();
        assert_eq!(result.steps, 0);
        for &c in result.end.cells() {
            assert_eq!(c, 60.0);
        }
    }
}
