//! HotSpot-equivalent compact thermal modelling.
//!
//! The thermal-aware allocation and scheduling procedure of *Hung et al.,
//! DATE 2005* queries the HotSpot thermal model for the temperature of every
//! processing element given a floorplan and per-block power consumptions.
//! This crate is a from-scratch Rust implementation of the same class of
//! model:
//!
//! * [`Floorplan`] / [`Block`] — validated die geometry,
//! * [`ThermalConfig`] — material and package constants (HotSpot-like
//!   defaults),
//! * [`ThermalModel`] — block-level lumped-RC steady-state model (vertical
//!   conductance per block, lateral conductances between abutting blocks,
//!   spreader/sink/ambient stack),
//! * [`TransientSolver`] — time-domain integration of piecewise-constant
//!   power traces (backward Euler or RK4),
//! * [`GridModel`] — finer grid-refined steady-state solver used for
//!   validation and ablations, with a selectable [`GridSolver`] backend:
//!   the Gauss–Seidel reference sweep, IC(0)- or Jacobi-preconditioned
//!   conjugate gradients over the assembled `tats_sparse` CSR system, or a
//!   cached banded Cholesky factorisation (bandwidth `nx`, with the dense
//!   spreader/sink rows handled by block elimination). Gauss–Seidel is the
//!   reference; PCG wins for one-off queries on large grids; the cached
//!   Cholesky factor wins whenever many right-hand sides hit one model —
//!   sweeps, ablations and the implicit [`GridTransientSolver`] steps,
//! * [`linalg`] — the small dense LU solver behind the block model.
//!
//! # Examples
//!
//! ```
//! use tats_thermal::{Block, Floorplan, ThermalConfig, ThermalModel};
//!
//! # fn main() -> Result<(), tats_thermal::ThermalError> {
//! // Four identical PEs in a 2x2 arrangement, one of them heavily loaded.
//! let plan = Floorplan::new(vec![
//!     Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0),
//!     Block::from_mm("pe1", 7.0, 0.0, 7.0, 7.0),
//!     Block::from_mm("pe2", 0.0, 7.0, 7.0, 7.0),
//!     Block::from_mm("pe3", 7.0, 7.0, 7.0, 7.0),
//! ])?;
//! let model = ThermalModel::new(&plan, ThermalConfig::default())?;
//! let temps = model.steady_state(&[9.0, 1.0, 1.0, 1.0])?;
//! assert_eq!(temps.hottest_block(), 0);
//! assert!(temps.max_c() > temps.average_c());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod floorplan;
mod grid;
mod grid_transient;
pub mod linalg;
mod materials;
mod model;
mod network;
mod session;
mod transient;

pub use error::ThermalError;
pub use floorplan::{Block, Floorplan};
pub use grid::{GridModel, GridSolver, GridTemperatures, GridWorkspace};
pub use grid_transient::{GridTransientResult, GridTransientSolver};
pub use materials::ThermalConfig;
pub use model::{Temperatures, ThermalModel};
pub use network::RcNetwork;
pub use session::{Rect, ThermalSession};
pub use transient::{PowerPhase, TransientMethod, TransientSolver};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn quad_model() -> ThermalModel {
        let plan = Floorplan::new(vec![
            Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0),
            Block::from_mm("pe1", 7.0, 0.0, 7.0, 7.0),
            Block::from_mm("pe2", 0.0, 7.0, 7.0, 7.0),
            Block::from_mm("pe3", 7.0, 7.0, 7.0, 7.0),
        ])
        .unwrap();
        ThermalModel::new(&plan, ThermalConfig::default()).unwrap()
    }

    proptest! {
        /// Every block temperature stays at or above ambient for any
        /// non-negative power assignment, and the total heat flowing into the
        /// ambient equals the total dissipated power (energy conservation).
        #[test]
        fn steady_state_is_physical(
            p0 in 0.0f64..15.0,
            p1 in 0.0f64..15.0,
            p2 in 0.0f64..15.0,
            p3 in 0.0f64..15.0,
        ) {
            let model = quad_model();
            let power = [p0, p1, p2, p3];
            let temps = model.steady_state(&power).unwrap();
            for i in 0..4 {
                prop_assert!(temps.block(i).unwrap() >= temps.ambient_c() - 1e-9);
            }
            let nodes_sink = temps.sink_c();
            let heat_out =
                (nodes_sink - temps.ambient_c()) * model.network().ambient_conductance();
            let total: f64 = power.iter().sum();
            prop_assert!((heat_out - total).abs() < 1e-6);
        }

        /// Adding power to one block never cools any block (monotonicity of
        /// the resistive network).
        #[test]
        fn more_power_never_cools(
            base in proptest::collection::vec(0.0f64..8.0, 4),
            extra in 0.1f64..8.0,
            which in 0usize..4,
        ) {
            let model = quad_model();
            let before = model.steady_state(&base).unwrap();
            let mut bumped = base.clone();
            bumped[which] += extra;
            let after = model.steady_state(&bumped).unwrap();
            for i in 0..4 {
                prop_assert!(after.block(i).unwrap() >= before.block(i).unwrap() - 1e-9);
            }
            prop_assert!(after.block(which).unwrap() > before.block(which).unwrap());
        }

        /// The superposition principle holds: temperatures rise linearly in
        /// the power vector (the network is linear).
        #[test]
        fn superposition_holds(
            a in proptest::collection::vec(0.0f64..6.0, 4),
            b in proptest::collection::vec(0.0f64..6.0, 4),
        ) {
            let model = quad_model();
            let ta = model.steady_state(&a).unwrap();
            let tb = model.steady_state(&b).unwrap();
            let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let tsum = model.steady_state(&sum).unwrap();
            let ambient = model.config().ambient_c;
            for i in 0..4 {
                let expected = ta.block(i).unwrap() + tb.block(i).unwrap() - ambient;
                prop_assert!((tsum.block(i).unwrap() - expected).abs() < 1e-6);
            }
        }
    }
}
