//! Minimal dense linear algebra for the compact thermal model.
//!
//! The compact RC network leads to small dense symmetric systems (one row
//! per block plus a handful of package nodes), so a straightforward
//! LU decomposition with partial pivoting is both sufficient and dependency
//! free. The grid model uses the iterative Gauss–Seidel solver in
//! [`crate::grid`] instead.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::ThermalError;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use tats_thermal::linalg::Matrix;
///
/// # fn main() -> Result<(), tats_thermal::ThermalError> {
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
/// let x = a.solve(&[1.0, 2.0])?;
/// assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
/// assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when rows have differing
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, ThermalError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(ThermalError::InvalidParameter(
                "matrix must have at least one row and one column".to_string(),
            ));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(ThermalError::InvalidParameter(
                "all matrix rows must have the same length".to_string(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Adds `value` to the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add_to(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] += value;
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, ThermalError> {
        if x.len() != self.cols {
            return Err(ThermalError::InvalidParameter(format!(
                "matvec dimension mismatch: {} columns vs {} entries",
                self.cols,
                x.len()
            )));
        }
        let y = self
            .data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect();
        Ok(y)
    }

    /// Solves `A x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-square matrices or
    /// mismatched right-hand sides and [`ThermalError::SingularSystem`] when
    /// the matrix is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, ThermalError> {
        let lu = LuDecomposition::new(self)?;
        lu.solve(b)
    }

    /// Maximum absolute entry (infinity norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// The row-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{} x {}]", self.rows, self.cols)?;
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU decomposition with partial pivoting, reusable across right-hand sides.
///
/// Constructing the decomposition once and calling
/// [`LuDecomposition::solve`] repeatedly is how the thermal model amortises
/// the factorisation across the many steady-state queries issued by the
/// scheduler.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    n: usize,
    lu: Vec<f64>,
    /// Pivoting recorded as a swap sequence (LAPACK `ipiv` style):
    /// at elimination step `col`, rows `col` and `swaps[col]` were exchanged.
    /// Unlike a gathered permutation vector, a swap sequence can be applied
    /// to a right-hand side *in place*, which is what makes
    /// [`LuDecomposition::solve_into`] allocation free.
    swaps: Vec<usize>,
}

/// The shared elimination kernel: factorises `lu` (row-major, `n x n`) in
/// place, recording row exchanges in `swaps`.
fn factorize_in_place(lu: &mut [f64], swaps: &mut [usize], n: usize) -> Result<(), ThermalError> {
    for col in 0..n {
        // Find pivot.
        let mut pivot_row = col;
        let mut pivot_val = lu[col * n + col].abs();
        for row in (col + 1)..n {
            let v = lu[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-300 {
            return Err(ThermalError::SingularSystem);
        }
        swaps[col] = pivot_row;
        if pivot_row != col {
            for k in 0..n {
                lu.swap(col * n + k, pivot_row * n + k);
            }
        }
        // Eliminate below.
        let pivot = lu[col * n + col];
        for row in (col + 1)..n {
            let factor = lu[row * n + col] / pivot;
            lu[row * n + col] = factor;
            for k in (col + 1)..n {
                lu[row * n + k] -= factor * lu[col * n + k];
            }
        }
    }
    Ok(())
}

impl LuDecomposition {
    /// Factorises a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-square input and
    /// [`ThermalError::SingularSystem`] for singular matrices.
    pub fn new(matrix: &Matrix) -> Result<Self, ThermalError> {
        if !matrix.is_square() {
            return Err(ThermalError::InvalidParameter(
                "LU decomposition requires a square matrix".to_string(),
            ));
        }
        let n = matrix.rows();
        let mut lu = matrix.data.clone();
        let mut swaps: Vec<usize> = (0..n).collect();
        factorize_in_place(&mut lu, &mut swaps, n)?;
        Ok(LuDecomposition { n, lu, swaps })
    }

    /// Creates an unfactorised placeholder of dimension `n` whose storage is
    /// meant to be filled by [`LuDecomposition::refactor`] before the first
    /// solve (a solve against the untouched placeholder yields non-finite
    /// values, never undefined behaviour).
    pub fn placeholder(n: usize) -> Self {
        LuDecomposition {
            n,
            lu: vec![0.0; n * n],
            swaps: (0..n).collect(),
        }
    }

    /// Re-factorises `matrix` reusing this decomposition's storage; no heap
    /// allocation occurs when the dimension is unchanged.
    ///
    /// This is the "rebuild only what moved" half of the floorplanner's
    /// cached thermal kernel: the matrix entries change with every candidate
    /// placement, but the workspace does not.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-square input and
    /// [`ThermalError::SingularSystem`] for singular matrices (the stored
    /// factorisation is invalidated in that case).
    pub fn refactor(&mut self, matrix: &Matrix) -> Result<(), ThermalError> {
        if !matrix.is_square() {
            return Err(ThermalError::InvalidParameter(
                "LU decomposition requires a square matrix".to_string(),
            ));
        }
        let n = matrix.rows();
        if n != self.n {
            self.n = n;
            self.lu.clear();
            self.lu.reserve(n * n);
            self.swaps.clear();
            self.swaps.extend(0..n);
            self.lu.extend_from_slice(&matrix.data);
        } else {
            self.lu.copy_from_slice(&matrix.data);
        }
        factorize_in_place(&mut self.lu, &mut self.swaps, n)
    }

    /// Dimension of the factorised system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when `b.len()` differs from
    /// the system dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, ThermalError> {
        let mut x = b.to_vec();
        self.solve_into(&mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` in place: `b` holds the right-hand side on entry and
    /// the solution on exit. Performs **zero heap allocations** — this is the
    /// steady-state query path of the cached thermal kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when `b.len()` differs from
    /// the system dimension.
    pub fn solve_into(&self, b: &mut [f64]) -> Result<(), ThermalError> {
        if b.len() != self.n {
            return Err(ThermalError::InvalidParameter(format!(
                "right-hand side has {} entries, expected {}",
                b.len(),
                self.n
            )));
        }
        let n = self.n;
        // Apply the recorded row exchanges.
        for (col, &swap_row) in self.swaps.iter().enumerate() {
            if swap_row != col {
                b.swap(col, swap_row);
            }
        }
        // Forward substitution (L has an implicit unit diagonal).
        for i in 1..n {
            let (solved, rest) = b.split_at_mut(i);
            let mut sum = rest[0];
            for (l, x) in self.lu[i * n..i * n + i].iter().zip(solved.iter()) {
                sum -= l * x;
            }
            rest[0] = sum;
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let (head, solved) = b.split_at_mut(i + 1);
            let mut sum = head[i];
            for (u, x) in self.lu[i * n + i + 1..(i + 1) * n]
                .iter()
                .zip(solved.iter())
            {
                sum -= u * x;
            }
            head[i] = sum / self.lu[i * n + i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Matrix::identity(3);
        let x = a.solve(&[1.0, -2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn known_2x2_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(
            a.solve(&[1.0, 2.0]).unwrap_err(),
            ThermalError::SingularSystem
        );
    }

    #[test]
    fn non_square_solve_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(ThermalError::InvalidParameter(_))
        ));
    }

    #[test]
    fn rhs_length_mismatch_is_rejected() {
        let a = Matrix::identity(3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(ThermalError::InvalidParameter(_))
        ));
    }

    #[test]
    fn matvec_matches_manual_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let y = a.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn solve_then_matvec_round_trips() {
        let a = Matrix::from_rows(&[
            &[10.0, 2.0, 0.5, 0.0],
            &[2.0, 8.0, 1.0, 0.3],
            &[0.5, 1.0, 6.0, 1.2],
            &[0.0, 0.3, 1.2, 9.0],
        ])
        .unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = a.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, backi) in b.iter().zip(back.iter()) {
            assert!((bi - backi).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_is_reusable_across_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert_eq!(lu.dim(), 2);
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -3.0]] {
            let x = lu.solve(&b).unwrap();
            let back = a.matvec(&x).unwrap();
            assert!((back[0] - b[0]).abs() < 1e-12);
            assert!((back[1] - b[1]).abs() < 1e-12);
        }
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = Matrix::from_rows(&[
            &[10.0, 2.0, 0.5, 0.0],
            &[2.0, 8.0, 1.0, 0.3],
            &[0.5, 1.0, 6.0, 1.2],
            &[0.0, 0.3, 1.2, 9.0],
        ])
        .unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0, 4.0];
        let expected = lu.solve(&b).unwrap();
        let mut in_place = b.clone();
        lu.solve_into(&mut in_place).unwrap();
        assert_eq!(in_place, expected);
        let mut wrong = vec![1.0; 3];
        assert!(lu.solve_into(&mut wrong).is_err());
    }

    #[test]
    fn refactor_reuses_storage_and_matches_fresh_factorisation() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let mut lu = LuDecomposition::placeholder(2);
        lu.refactor(&a).unwrap();
        assert_eq!(
            lu.solve(&[2.0, 5.0]).unwrap(),
            LuDecomposition::new(&a)
                .unwrap()
                .solve(&[2.0, 5.0])
                .unwrap()
        );
        lu.refactor(&b).unwrap();
        assert_eq!(
            lu.solve(&[1.0, 0.0]).unwrap(),
            LuDecomposition::new(&b)
                .unwrap()
                .solve(&[1.0, 0.0])
                .unwrap()
        );
        // Dimension changes are accommodated.
        let c = Matrix::identity(3);
        lu.refactor(&c).unwrap();
        assert_eq!(lu.dim(), 3);
        assert_eq!(lu.solve(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
        // Singular refactor is reported.
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(lu.refactor(&s).unwrap_err(), ThermalError::SingularSystem);
    }

    #[test]
    fn matrix_slice_and_reset_helpers() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        m.fill_zero();
        assert_eq!(m.max_abs(), 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[1.0][..]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn indexing_and_max_abs() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = -7.5;
        m.add_to(0, 1, -0.5);
        assert_eq!(m[(0, 1)], -8.0);
        assert_eq!(m.max_abs(), 8.0);
        assert!(m.to_string().contains('x'));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_indexing_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
