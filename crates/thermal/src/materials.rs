//! Material constants and package configuration of the compact model.
//!
//! The defaults mirror the published HotSpot configuration for a silicon die
//! attached to a copper heat spreader and heat sink with forced-air
//! convection. All lengths are in metres, temperatures in degrees Celsius,
//! powers in watts.

use crate::error::ThermalError;

/// Physical and package parameters of the compact thermal model.
///
/// # Examples
///
/// ```
/// use tats_thermal::ThermalConfig;
///
/// let config = ThermalConfig::default();
/// assert_eq!(config.ambient_c, 45.0);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Ambient (air) temperature in °C. HotSpot's default is 45 °C.
    pub ambient_c: f64,
    /// Thermal conductivity of silicon, W/(m·K).
    pub silicon_conductivity: f64,
    /// Volumetric heat capacity of silicon, J/(m³·K).
    pub silicon_volumetric_heat: f64,
    /// Die (chip) thickness in metres.
    pub die_thickness: f64,
    /// Vertical specific thermal resistance from a block through the
    /// interface material into the spreader, K·m²/W. The per-block vertical
    /// resistance is this value divided by the block area.
    pub vertical_resistivity: f64,
    /// Thermal resistance from the heat spreader to the heat sink, K/W.
    pub spreader_to_sink_resistance: f64,
    /// Convection resistance from the heat sink to the ambient, K/W.
    pub convection_resistance: f64,
    /// Lumped thermal capacitance of the heat spreader, J/K.
    pub spreader_capacitance: f64,
    /// Lumped thermal capacitance of the heat sink, J/K.
    pub sink_capacitance: f64,
    /// Duration of one schedule time unit in seconds, used by the transient
    /// solver to convert schedule intervals into physical time.
    pub time_unit_seconds: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            ambient_c: 45.0,
            silicon_conductivity: 100.0,
            silicon_volumetric_heat: 1.75e6,
            die_thickness: 0.5e-3,
            vertical_resistivity: 2.0e-4,
            spreader_to_sink_resistance: 0.1,
            convection_resistance: 1.2,
            spreader_capacitance: 3.2,
            sink_capacitance: 30.0,
            time_unit_seconds: 0.01,
        }
    }
}

impl ThermalConfig {
    /// Checks that every parameter is physically meaningful (finite, and
    /// positive where required).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), ThermalError> {
        let positives = [
            ("silicon_conductivity", self.silicon_conductivity),
            ("silicon_volumetric_heat", self.silicon_volumetric_heat),
            ("die_thickness", self.die_thickness),
            ("vertical_resistivity", self.vertical_resistivity),
            (
                "spreader_to_sink_resistance",
                self.spreader_to_sink_resistance,
            ),
            ("convection_resistance", self.convection_resistance),
            ("spreader_capacitance", self.spreader_capacitance),
            ("sink_capacitance", self.sink_capacitance),
            ("time_unit_seconds", self.time_unit_seconds),
        ];
        for (name, value) in positives {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter(format!(
                    "{name} must be positive and finite, got {value}"
                )));
            }
        }
        if !self.ambient_c.is_finite() {
            return Err(ThermalError::InvalidParameter(format!(
                "ambient_c must be finite, got {}",
                self.ambient_c
            )));
        }
        Ok(())
    }

    /// Vertical conductance (W/K) of a block with the given area in m².
    pub fn vertical_conductance(&self, area_m2: f64) -> f64 {
        area_m2 / self.vertical_resistivity
    }

    /// Lateral conductance (W/K) between two adjacent blocks whose centres
    /// are `distance_m` apart and which share an edge of length
    /// `shared_edge_m`.
    pub fn lateral_conductance(&self, distance_m: f64, shared_edge_m: f64) -> f64 {
        if distance_m <= 0.0 || shared_edge_m <= 0.0 {
            return 0.0;
        }
        self.silicon_conductivity * self.die_thickness * shared_edge_m / distance_m
    }

    /// Thermal capacitance (J/K) of a silicon block with the given area.
    pub fn block_capacitance(&self, area_m2: f64) -> f64 {
        self.silicon_volumetric_heat * self.die_thickness * area_m2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ThermalConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_fields_are_named() {
        let c = ThermalConfig {
            die_thickness: 0.0,
            ..ThermalConfig::default()
        };
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("die_thickness"));

        let c = ThermalConfig {
            ambient_c: f64::NAN,
            ..ThermalConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ThermalConfig {
            convection_resistance: -1.0,
            ..ThermalConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn vertical_conductance_scales_with_area() {
        let c = ThermalConfig::default();
        let g1 = c.vertical_conductance(49e-6);
        let g2 = c.vertical_conductance(98e-6);
        assert!((g2 / g1 - 2.0).abs() < 1e-12);
        // A 7x7 mm block: R = 2e-4 / 49e-6 ≈ 4.08 K/W.
        assert!((1.0 / g1 - 4.0816).abs() < 1e-3);
    }

    #[test]
    fn lateral_conductance_is_zero_for_disjoint_blocks() {
        let c = ThermalConfig::default();
        assert_eq!(c.lateral_conductance(0.01, 0.0), 0.0);
        assert_eq!(c.lateral_conductance(0.0, 0.01), 0.0);
        assert!(c.lateral_conductance(0.007, 0.007) > 0.0);
    }

    #[test]
    fn block_capacitance_matches_hand_computation() {
        let c = ThermalConfig::default();
        // 49 mm² * 0.5 mm * 1.75e6 J/(m³K) = 0.0428… J/K
        let cap = c.block_capacitance(49e-6);
        assert!((cap - 0.0429).abs() < 1e-3);
    }
}
