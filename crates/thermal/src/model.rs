//! The public thermal-model API: steady-state temperature extraction.

use std::fmt;

use crate::error::ThermalError;
use crate::floorplan::Floorplan;
use crate::materials::ThermalConfig;
use crate::network::RcNetwork;

/// Per-block temperature estimate returned by the thermal model.
///
/// Block indices follow the floorplan; package temperatures (spreader and
/// sink) are reported separately.
#[derive(Debug, Clone, PartialEq)]
pub struct Temperatures {
    block_c: Vec<f64>,
    spreader_c: f64,
    sink_c: f64,
    ambient_c: f64,
}

impl Temperatures {
    pub(crate) fn from_nodes(nodes: &[f64], block_count: usize, ambient_c: f64) -> Self {
        Temperatures {
            block_c: nodes[..block_count].to_vec(),
            spreader_c: nodes[block_count],
            sink_c: nodes[block_count + 1],
            ambient_c,
        }
    }

    pub(crate) fn to_nodes(&self) -> Vec<f64> {
        let mut nodes = self.block_c.clone();
        nodes.push(self.spreader_c);
        nodes.push(self.sink_c);
        nodes
    }

    /// Creates a uniform temperature field (every node at `value_c`), the
    /// usual initial condition for transient analyses.
    pub fn uniform(block_count: usize, value_c: f64) -> Self {
        Temperatures {
            block_c: vec![value_c; block_count],
            spreader_c: value_c,
            sink_c: value_c,
            ambient_c: value_c,
        }
    }

    /// Number of blocks covered.
    pub fn block_count(&self) -> usize {
        self.block_c.len()
    }

    /// Temperature of block `index`, °C.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownBlock`] for an out-of-range index.
    pub fn block(&self, index: usize) -> Result<f64, ThermalError> {
        self.block_c
            .get(index)
            .copied()
            .ok_or(ThermalError::UnknownBlock(index))
    }

    /// All block temperatures in floorplan order, °C.
    pub fn blocks(&self) -> &[f64] {
        &self.block_c
    }

    /// Heat-spreader temperature, °C.
    pub fn spreader_c(&self) -> f64 {
        self.spreader_c
    }

    /// Heat-sink temperature, °C.
    pub fn sink_c(&self) -> f64 {
        self.sink_c
    }

    /// Ambient temperature the estimate was computed against, °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Maximum block temperature, °C — the paper's "Max Temp." metric.
    pub fn max_c(&self) -> f64 {
        self.block_c
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean block temperature, °C — the paper's "Avg Temp." metric.
    pub fn average_c(&self) -> f64 {
        self.block_c.iter().sum::<f64>() / self.block_c.len() as f64
    }

    /// Index of the hottest block.
    pub fn hottest_block(&self) -> usize {
        self.block_c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Difference between the hottest and the coolest block, °C; a measure of
    /// how thermally even the power distribution is.
    pub fn spread_c(&self) -> f64 {
        let min = self.block_c.iter().cloned().fold(f64::INFINITY, f64::min);
        self.max_c() - min
    }
}

impl fmt::Display for Temperatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max {:.2} C, avg {:.2} C over {} blocks",
            self.max_c(),
            self.average_c(),
            self.block_c.len()
        )
    }
}

/// HotSpot-equivalent compact thermal model of a floorplan.
///
/// Construct the model once per floorplan; every call to
/// [`ThermalModel::steady_state`] then reuses the factorised network, which
/// is what makes per-scheduling-decision thermal queries affordable.
///
/// # Examples
///
/// ```
/// use tats_thermal::{Block, Floorplan, ThermalConfig, ThermalModel};
///
/// # fn main() -> Result<(), tats_thermal::ThermalError> {
/// let plan = Floorplan::new(vec![
///     Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0),
///     Block::from_mm("pe1", 7.0, 0.0, 7.0, 7.0),
/// ])?;
/// let model = ThermalModel::new(&plan, ThermalConfig::default())?;
/// let temps = model.steady_state(&[6.0, 1.0])?;
/// assert!(temps.block(0)? > temps.block(1)?);
/// assert!(temps.max_c() > temps.ambient_c());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThermalModel {
    floorplan: Floorplan,
    config: ThermalConfig,
    network: RcNetwork,
}

impl ThermalModel {
    /// Builds the model for a floorplan under the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and network assembly errors.
    pub fn new(floorplan: &Floorplan, config: ThermalConfig) -> Result<Self, ThermalError> {
        let network = RcNetwork::new(floorplan, &config)?;
        Ok(ThermalModel {
            floorplan: floorplan.clone(),
            config,
            network,
        })
    }

    /// The floorplan the model was built for.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// The underlying RC network.
    pub fn network(&self) -> &RcNetwork {
        &self.network
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.network.block_count()
    }

    /// Steady-state temperatures for the given per-block powers (watts).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] or
    /// [`ThermalError::InvalidPower`] for malformed power vectors.
    pub fn steady_state(&self, block_power: &[f64]) -> Result<Temperatures, ThermalError> {
        let nodes = self.network.steady_state(block_power)?;
        Ok(Temperatures::from_nodes(
            &nodes,
            self.network.block_count(),
            self.config.ambient_c,
        ))
    }

    /// Steady-state node temperatures into a caller-provided buffer (blocks
    /// in floorplan order, then spreader, then sink), reusing its allocation
    /// across calls. Iterative clients (e.g. the leakage-temperature
    /// feedback loop) use this to avoid a `Vec` per solve; package the final
    /// iterate with [`ThermalModel::temperatures_from_nodes`].
    ///
    /// # Errors
    ///
    /// Same as [`ThermalModel::steady_state`].
    pub fn steady_state_nodes_into(
        &self,
        block_power: &[f64],
        nodes: &mut Vec<f64>,
    ) -> Result<(), ThermalError> {
        self.network.steady_state_into(block_power, nodes)
    }

    /// Packages a raw node-temperature vector (as produced by
    /// [`ThermalModel::steady_state_nodes_into`]) into [`Temperatures`].
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when `nodes` does not have
    /// one entry per network node.
    pub fn temperatures_from_nodes(&self, nodes: &[f64]) -> Result<Temperatures, ThermalError> {
        if nodes.len() != self.network.node_count() {
            return Err(ThermalError::InvalidParameter(format!(
                "expected {} node temperatures, got {}",
                self.network.node_count(),
                nodes.len()
            )));
        }
        Ok(Temperatures::from_nodes(
            nodes,
            self.network.block_count(),
            self.config.ambient_c,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Block;

    fn quad_model() -> ThermalModel {
        let plan = Floorplan::new(vec![
            Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0),
            Block::from_mm("pe1", 7.0, 0.0, 7.0, 7.0),
            Block::from_mm("pe2", 0.0, 7.0, 7.0, 7.0),
            Block::from_mm("pe3", 7.0, 7.0, 7.0, 7.0),
        ])
        .unwrap();
        ThermalModel::new(&plan, ThermalConfig::default()).unwrap()
    }

    #[test]
    fn steady_state_summary_statistics() {
        let model = quad_model();
        let temps = model.steady_state(&[8.0, 2.0, 2.0, 2.0]).unwrap();
        assert_eq!(temps.block_count(), 4);
        assert_eq!(temps.hottest_block(), 0);
        assert!(temps.max_c() >= temps.average_c());
        assert!(temps.average_c() > temps.ambient_c());
        assert!(temps.spread_c() > 0.0);
        assert!(temps.sink_c() > temps.ambient_c());
        assert!(temps.spreader_c() > temps.sink_c());
        assert!(temps.to_string().contains("blocks"));
    }

    #[test]
    fn temperatures_in_paper_range_for_typical_powers() {
        // Four 7x7 mm PEs dissipating 3-7 W each should land in the same
        // regime as the paper's tables (roughly 60-125 °C peak).
        let model = quad_model();
        let temps = model.steady_state(&[6.5, 4.0, 3.0, 5.0]).unwrap();
        assert!(temps.max_c() > 60.0, "max {}", temps.max_c());
        assert!(temps.max_c() < 140.0, "max {}", temps.max_c());
    }

    #[test]
    fn block_accessor_bounds() {
        let model = quad_model();
        let temps = model.steady_state(&[1.0; 4]).unwrap();
        assert!(temps.block(3).is_ok());
        assert!(matches!(temps.block(4), Err(ThermalError::UnknownBlock(4))));
    }

    #[test]
    fn uniform_temperatures_report_zero_spread() {
        let t = Temperatures::uniform(3, 45.0);
        assert_eq!(t.max_c(), 45.0);
        assert_eq!(t.average_c(), 45.0);
        assert_eq!(t.spread_c(), 0.0);
        assert_eq!(t.block_count(), 3);
    }

    #[test]
    fn model_accessors_expose_inputs() {
        let model = quad_model();
        assert_eq!(model.block_count(), 4);
        assert_eq!(model.floorplan().block_count(), 4);
        assert_eq!(model.config().ambient_c, 45.0);
        assert_eq!(model.network().block_count(), 4);
    }

    #[test]
    fn errors_propagate_from_network() {
        let model = quad_model();
        assert!(model.steady_state(&[1.0, 2.0]).is_err());
    }
}
