//! Assembly of the compact thermal RC network.
//!
//! The network follows HotSpot's block-level compact model:
//!
//! * one node per floorplan block (the silicon die),
//! * one lumped node for the heat spreader,
//! * one lumped node for the heat sink,
//! * the ambient as a fixed-temperature boundary behind the convection
//!   resistance.
//!
//! Heat dissipated in a block flows vertically into the spreader (conductance
//! proportional to the block area) and laterally into abutting blocks
//! (conductance proportional to the shared edge length over the centre
//! distance). The spreader connects to the sink, the sink to the ambient.

use crate::error::ThermalError;
use crate::floorplan::{Block, Floorplan};
use crate::linalg::{LuDecomposition, Matrix};
use crate::materials::ThermalConfig;

/// The assembled conductance/capacitance network for a floorplan.
///
/// Node ordering: block `i` is node `i`; the spreader is node
/// `block_count()`; the sink is node `block_count() + 1`.
#[derive(Debug, Clone)]
pub struct RcNetwork {
    block_count: usize,
    /// Symmetric conductance (Laplacian) matrix including the ambient term on
    /// the sink diagonal.
    conductance: Matrix,
    /// Per-node thermal capacitance, J/K.
    capacitance: Vec<f64>,
    /// Conductance from the sink node to the ambient, W/K.
    ambient_conductance: f64,
    /// Ambient temperature, °C.
    ambient_c: f64,
    /// Cached factorisation of the conductance matrix for steady-state solves.
    lu: LuDecomposition,
}

impl RcNetwork {
    /// Builds the network for a floorplan under the given configuration.
    ///
    /// # Errors
    ///
    /// Returns configuration validation errors and
    /// [`ThermalError::SingularSystem`] if the assembled matrix cannot be
    /// factorised (which indicates a disconnected or degenerate network).
    pub fn new(floorplan: &Floorplan, config: &ThermalConfig) -> Result<Self, ThermalError> {
        config.validate()?;
        let n = floorplan.block_count();
        let total = n + 2;

        // The stencil lives in `session::assemble_conductance` so this path
        // and the cached `ThermalSession` kernel stay bit-identical.
        let mut g = Matrix::zeros(total, total);
        let rects: Vec<crate::Rect> = floorplan.blocks().iter().map(Block::rect).collect();
        crate::session::assemble_conductance(&mut g, &rects, config);
        let ambient_conductance = 1.0 / config.convection_resistance;

        // Capacitances.
        let mut capacitance = Vec::with_capacity(total);
        for block in floorplan.blocks() {
            capacitance.push(config.block_capacitance(block.area()));
        }
        capacitance.push(config.spreader_capacitance);
        capacitance.push(config.sink_capacitance);

        let lu = LuDecomposition::new(&g)?;

        Ok(RcNetwork {
            block_count: n,
            conductance: g,
            capacitance,
            ambient_conductance,
            ambient_c: config.ambient_c,
            lu,
        })
    }

    /// Number of floorplan blocks (excluding package nodes).
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Total number of network nodes (blocks + spreader + sink).
    pub fn node_count(&self) -> usize {
        self.block_count + 2
    }

    /// Index of the spreader node.
    pub fn spreader_node(&self) -> usize {
        self.block_count
    }

    /// Index of the sink node.
    pub fn sink_node(&self) -> usize {
        self.block_count + 1
    }

    /// Ambient temperature, °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Conductance matrix entry between two nodes, W/K.
    pub fn conductance(&self, a: usize, b: usize) -> f64 {
        self.conductance[(a, b)]
    }

    /// Conductance from the sink node to the ambient, W/K.
    pub fn ambient_conductance(&self) -> f64 {
        self.ambient_conductance
    }

    /// Per-node thermal capacitances, J/K.
    pub fn capacitances(&self) -> &[f64] {
        &self.capacitance
    }

    /// Expands a per-block power vector into a per-node heat-input vector
    /// (package nodes dissipate no power but receive the ambient injection).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] or
    /// [`ThermalError::InvalidPower`] on malformed input.
    pub fn heat_input(&self, block_power: &[f64]) -> Result<Vec<f64>, ThermalError> {
        if block_power.len() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                actual: block_power.len(),
            });
        }
        if let Some((i, &p)) = block_power
            .iter()
            .enumerate()
            .find(|(_, p)| !p.is_finite() || **p < 0.0)
        {
            return Err(ThermalError::InvalidPower(i, p));
        }
        let mut q = vec![0.0; self.node_count()];
        q[..self.block_count].copy_from_slice(block_power);
        q[self.block_count + 1] += self.ambient_conductance * self.ambient_c;
        Ok(q)
    }

    /// Solves the steady-state system `G T = Q` for per-node temperatures in
    /// °C.
    ///
    /// # Errors
    ///
    /// Propagates [`RcNetwork::heat_input`] validation errors.
    pub fn steady_state(&self, block_power: &[f64]) -> Result<Vec<f64>, ThermalError> {
        let q = self.heat_input(block_power)?;
        self.lu.solve(&q)
    }

    /// Solves the steady-state system into a caller-provided buffer, reusing
    /// its allocation across calls (the buffer is resized to the node count).
    /// This is the path iterative clients — the leakage-temperature feedback
    /// loop, the schedule simulator — should use in their inner loops.
    ///
    /// # Errors
    ///
    /// Propagates [`RcNetwork::heat_input`] validation errors.
    pub fn steady_state_into(
        &self,
        block_power: &[f64],
        nodes: &mut Vec<f64>,
    ) -> Result<(), ThermalError> {
        if block_power.len() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                actual: block_power.len(),
            });
        }
        if let Some((i, &p)) = block_power
            .iter()
            .enumerate()
            .find(|(_, p)| !p.is_finite() || **p < 0.0)
        {
            return Err(ThermalError::InvalidPower(i, p));
        }
        nodes.clear();
        nodes.resize(self.node_count(), 0.0);
        nodes[..self.block_count].copy_from_slice(block_power);
        nodes[self.block_count + 1] = self.ambient_conductance * self.ambient_c;
        self.lu.solve_into(nodes)
    }

    /// Computes `dT/dt` for the transient solvers:
    /// `C dT/dt = Q - G T` (the ambient injection is already part of `Q`).
    pub(crate) fn derivative(&self, temperatures: &[f64], heat_input: &[f64]) -> Vec<f64> {
        let flow = self
            .conductance
            .matvec(temperatures)
            .expect("temperature vector length matches the network");
        temperatures
            .iter()
            .enumerate()
            .map(|(i, _)| (heat_input[i] - flow[i]) / self.capacitance[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Block;

    fn single_block_network() -> (RcNetwork, ThermalConfig) {
        let config = ThermalConfig::default();
        let plan = Floorplan::new(vec![Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0)]).unwrap();
        (RcNetwork::new(&plan, &config).unwrap(), config)
    }

    fn quad_network() -> (RcNetwork, ThermalConfig) {
        let config = ThermalConfig::default();
        let plan = Floorplan::new(vec![
            Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0),
            Block::from_mm("pe1", 7.0, 0.0, 7.0, 7.0),
            Block::from_mm("pe2", 0.0, 7.0, 7.0, 7.0),
            Block::from_mm("pe3", 7.0, 7.0, 7.0, 7.0),
        ])
        .unwrap();
        (RcNetwork::new(&plan, &config).unwrap(), config)
    }

    #[test]
    fn single_block_matches_series_resistance() {
        let (net, config) = single_block_network();
        let power = 10.0;
        let temps = net.steady_state(&[power]).unwrap();
        let r_total = config.vertical_resistivity / 49e-6
            + config.spreader_to_sink_resistance
            + config.convection_resistance;
        let expected = config.ambient_c + power * r_total;
        assert!(
            (temps[0] - expected).abs() < 1e-6,
            "got {} expected {expected}",
            temps[0]
        );
        // Sink sits above ambient by exactly P * R_conv.
        let sink = temps[net.sink_node()];
        assert!((sink - (config.ambient_c + power * config.convection_resistance)).abs() < 1e-6);
    }

    #[test]
    fn zero_power_settles_at_ambient() {
        let (net, config) = quad_network();
        let temps = net.steady_state(&[0.0; 4]).unwrap();
        for t in temps {
            assert!((t - config.ambient_c).abs() < 1e-9);
        }
    }

    #[test]
    fn hot_block_is_hotter_than_idle_neighbours() {
        let (net, _) = quad_network();
        let temps = net.steady_state(&[8.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(temps[0] > temps[1]);
        assert!(temps[0] > temps[2]);
        assert!(temps[0] > temps[3]);
        // Diagonal neighbour (no shared edge) is the coolest block.
        assert!(temps[3] <= temps[1] + 1e-9);
        assert!(temps[3] <= temps[2] + 1e-9);
    }

    #[test]
    fn energy_balance_at_the_ambient_boundary() {
        let (net, config) = quad_network();
        let power = [3.0, 5.0, 2.0, 6.0];
        let temps = net.steady_state(&power).unwrap();
        let sink = temps[net.sink_node()];
        let heat_out = (sink - config.ambient_c) * net.ambient_conductance();
        let total_power: f64 = power.iter().sum();
        assert!(
            (heat_out - total_power).abs() < 1e-6,
            "heat out {heat_out} vs power {total_power}"
        );
    }

    #[test]
    fn temperatures_increase_monotonically_with_power() {
        let (net, _) = quad_network();
        let low = net.steady_state(&[2.0, 2.0, 2.0, 2.0]).unwrap();
        let high = net.steady_state(&[4.0, 4.0, 4.0, 4.0]).unwrap();
        for (l, h) in low.iter().zip(high.iter()) {
            assert!(h > l);
        }
    }

    #[test]
    fn balanced_power_is_cooler_at_the_peak_than_concentrated_power() {
        // The same total power spread over all four PEs must yield a lower
        // maximum temperature than concentrating it on one PE — this is the
        // physical effect the thermal-aware scheduler exploits.
        let (net, _) = quad_network();
        let concentrated = net.steady_state(&[12.0, 0.0, 0.0, 0.0]).unwrap();
        let balanced = net.steady_state(&[3.0, 3.0, 3.0, 3.0]).unwrap();
        let max_conc = concentrated[..4].iter().cloned().fold(f64::MIN, f64::max);
        let max_bal = balanced[..4].iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_bal < max_conc);
    }

    #[test]
    fn malformed_power_vectors_are_rejected() {
        let (net, _) = quad_network();
        assert!(matches!(
            net.steady_state(&[1.0, 2.0]),
            Err(ThermalError::PowerLengthMismatch {
                expected: 4,
                actual: 2
            })
        ));
        assert!(matches!(
            net.steady_state(&[1.0, -2.0, 0.0, 0.0]),
            Err(ThermalError::InvalidPower(1, _))
        ));
        assert!(matches!(
            net.steady_state(&[1.0, f64::INFINITY, 0.0, 0.0]),
            Err(ThermalError::InvalidPower(1, _))
        ));
    }

    #[test]
    fn network_shape_and_symmetry() {
        let (net, _) = quad_network();
        assert_eq!(net.block_count(), 4);
        assert_eq!(net.node_count(), 6);
        assert_eq!(net.spreader_node(), 4);
        assert_eq!(net.sink_node(), 5);
        for a in 0..net.node_count() {
            for b in 0..net.node_count() {
                assert!((net.conductance(a, b) - net.conductance(b, a)).abs() < 1e-12);
            }
        }
        // Abutting blocks are laterally coupled; diagonal ones are not.
        assert!(net.conductance(0, 1) < 0.0);
        assert!(net.conductance(0, 2) < 0.0);
        assert_eq!(net.conductance(0, 3), 0.0);
        assert_eq!(net.capacitances().len(), 6);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let plan = Floorplan::new(vec![Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0)]).unwrap();
        let config = ThermalConfig {
            convection_resistance: 0.0,
            ..ThermalConfig::default()
        };
        assert!(RcNetwork::new(&plan, &config).is_err());
    }
}
