//! The cached thermal evaluation kernel.
//!
//! The floorplanner's inner loop evaluates thousands of candidate placements,
//! and each evaluation needs one steady-state solve of the compact RC model.
//! Building a fresh [`crate::ThermalModel`] per candidate re-allocates the
//! conductance matrix, the LU workspace, the capacitance vector and a
//! `String` per block name — none of which actually depend on the candidate.
//! Only the *entries* of the conductance matrix move with the placement.
//!
//! [`ThermalSession`] keeps the matrix storage, the LU workspace and the
//! solution vector alive across evaluations: per candidate it re-assembles
//! the position-dependent conductance entries in place, re-factorises into
//! the existing workspace and solves in place. The steady-state query path
//! ([`crate::linalg::LuDecomposition::solve_into`]) performs zero heap
//! allocations.

use crate::error::ThermalError;
use crate::floorplan::Floorplan;
use crate::linalg::{LuDecomposition, Matrix};
use crate::materials::ThermalConfig;

/// Plain block geometry (metres), without the name `String` a
/// [`crate::Block`] carries. This is what the hot loop hands to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge, metres.
    pub x: f64,
    /// Bottom edge, metres.
    pub y: f64,
    /// Width, metres.
    pub width: f64,
    /// Height, metres.
    pub height: f64,
}

impl Rect {
    /// Creates a rectangle from metre-denominated geometry.
    pub fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// Area, square metres.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Centre coordinates, metres.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Length of the edge shared with `other`, in metres; zero when the
    /// rectangles do not abut. This is the single definition of the
    /// predicate; [`crate::Block::shared_edge_length`] delegates here.
    pub fn shared_edge_length(&self, other: &Rect) -> f64 {
        let eps = 1e-9;
        // Vertical contact: right edge of one touches left edge of the other.
        let touches_vertically = (self.x + self.width - other.x).abs() < eps
            || (other.x + other.width - self.x).abs() < eps;
        if touches_vertically {
            let overlap = (self.y + self.height).min(other.y + other.height) - self.y.max(other.y);
            if overlap > eps {
                return overlap;
            }
        }
        // Horizontal contact: top edge of one touches bottom edge of the other.
        let touches_horizontally = (self.y + self.height - other.y).abs() < eps
            || (other.y + other.height - self.y).abs() < eps;
        if touches_horizontally {
            let overlap = (self.x + self.width).min(other.x + other.width) - self.x.max(other.x);
            if overlap > eps {
                return overlap;
            }
        }
        0.0
    }

    /// Euclidean distance between rectangle centres, metres.
    pub fn center_distance(&self, other: &Rect) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

/// Assembles the compact-model conductance matrix for `rects` into `g`
/// (resetting it first). Node ordering matches [`crate::RcNetwork`]: block
/// `i` is node `i`, then the spreader, then the sink. The ambient term sits
/// on the sink diagonal.
///
/// This is the single source of truth for the matrix stencil: both
/// [`crate::RcNetwork::new`] and [`ThermalSession`] call it, so the cached
/// kernel is bit-identical to the rebuild-from-scratch path.
pub(crate) fn assemble_conductance(g: &mut Matrix, rects: &[Rect], config: &ThermalConfig) {
    let n = rects.len();
    let spreader = n;
    let sink = n + 1;
    debug_assert_eq!(g.rows(), n + 2);
    debug_assert_eq!(g.cols(), n + 2);
    g.fill_zero();

    let add_conductance = |g: &mut Matrix, a: usize, b: usize, value: f64| {
        if value <= 0.0 {
            return;
        }
        g.add_to(a, a, value);
        g.add_to(b, b, value);
        g.add_to(a, b, -value);
        g.add_to(b, a, -value);
    };

    // Vertical paths: block -> spreader.
    for (i, rect) in rects.iter().enumerate() {
        let gv = config.vertical_conductance(rect.area());
        add_conductance(g, i, spreader, gv);
    }

    // Lateral paths between abutting blocks.
    for i in 0..n {
        for j in (i + 1)..n {
            let shared = rects[i].shared_edge_length(&rects[j]);
            if shared > 0.0 {
                let dist = rects[i].center_distance(&rects[j]);
                let gl = config.lateral_conductance(dist, shared);
                add_conductance(g, i, j, gl);
            }
        }
    }

    // Package path: spreader -> sink -> ambient.
    add_conductance(g, spreader, sink, 1.0 / config.spreader_to_sink_resistance);
    // The ambient is a Dirichlet boundary: it only contributes to the sink's
    // diagonal and to the right-hand side of the solve.
    g.add_to(sink, sink, 1.0 / config.convection_resistance);
}

/// A reusable thermal evaluation kernel for a fixed block count.
///
/// Construct it once per optimisation run; per candidate placement call
/// [`ThermalSession::load_geometry`] followed by one or more
/// [`ThermalSession::solve`] calls (or the combined
/// [`ThermalSession::peak_temperature`]). All storage — matrix, LU workspace,
/// right-hand side — lives for the whole session; the solve path allocates
/// nothing.
///
/// The geometry is **not** validated against overlaps (slicing-tree
/// placements are non-overlapping by construction); callers handing over
/// arbitrary geometry should validate it with [`Floorplan::new`] first.
///
/// # Examples
///
/// ```
/// use tats_thermal::{Rect, ThermalConfig, ThermalSession};
///
/// # fn main() -> Result<(), tats_thermal::ThermalError> {
/// let mut session = ThermalSession::new(2, ThermalConfig::default())?;
/// let rects = [
///     Rect::new(0.0, 0.0, 7e-3, 7e-3),
///     Rect::new(7e-3, 0.0, 7e-3, 7e-3),
/// ];
/// session.load_geometry(&rects)?;
/// let nodes = session.solve(&[6.0, 1.0])?;
/// assert!(nodes[0] > nodes[1]); // the hot block is hotter
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThermalSession {
    config: ThermalConfig,
    block_count: usize,
    geometry_loaded: bool,
    g: Matrix,
    lu: LuDecomposition,
    nodes: Vec<f64>,
}

impl ThermalSession {
    /// Creates a kernel for floorplans of exactly `block_count` blocks.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyFloorplan`] for a zero block count and
    /// propagates configuration validation errors.
    pub fn new(block_count: usize, config: ThermalConfig) -> Result<Self, ThermalError> {
        if block_count == 0 {
            return Err(ThermalError::EmptyFloorplan);
        }
        config.validate()?;
        let total = block_count + 2;
        Ok(ThermalSession {
            config,
            block_count,
            geometry_loaded: false,
            g: Matrix::zeros(total, total),
            lu: LuDecomposition::placeholder(total),
            nodes: vec![0.0; total],
        })
    }

    /// Number of blocks the kernel was sized for.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Loads a candidate placement: re-assembles the position-dependent
    /// conductance entries and re-factorises, reusing all storage.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when `rects.len()` differs
    /// from the session's block count and [`ThermalError::SingularSystem`]
    /// for degenerate geometry.
    pub fn load_geometry(&mut self, rects: &[Rect]) -> Result<(), ThermalError> {
        if rects.len() != self.block_count {
            return Err(ThermalError::InvalidParameter(format!(
                "session sized for {} blocks, got {}",
                self.block_count,
                rects.len()
            )));
        }
        self.geometry_loaded = false;
        assemble_conductance(&mut self.g, rects, &self.config);
        self.lu.refactor(&self.g)?;
        self.geometry_loaded = true;
        Ok(())
    }

    /// Loads the geometry of a validated [`Floorplan`].
    ///
    /// # Errors
    ///
    /// Same as [`ThermalSession::load_geometry`].
    pub fn load_floorplan(&mut self, floorplan: &Floorplan) -> Result<(), ThermalError> {
        if floorplan.block_count() != self.block_count {
            return Err(ThermalError::InvalidParameter(format!(
                "session sized for {} blocks, floorplan has {}",
                self.block_count,
                floorplan.block_count()
            )));
        }
        self.geometry_loaded = false;
        let rects: Vec<Rect> = floorplan.blocks().iter().map(crate::Block::rect).collect();
        assemble_conductance(&mut self.g, &rects, &self.config);
        self.lu.refactor(&self.g)?;
        self.geometry_loaded = true;
        Ok(())
    }

    /// Steady-state node temperatures (°C) for the loaded geometry: blocks in
    /// index order, then spreader, then sink. The returned slice borrows the
    /// session's internal buffer; the whole query performs zero heap
    /// allocations.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when no geometry has been
    /// loaded, and [`ThermalError::PowerLengthMismatch`] /
    /// [`ThermalError::InvalidPower`] for malformed power vectors.
    pub fn solve(&mut self, block_power: &[f64]) -> Result<&[f64], ThermalError> {
        if !self.geometry_loaded {
            return Err(ThermalError::InvalidParameter(
                "no geometry loaded into the thermal session".to_string(),
            ));
        }
        if block_power.len() != self.block_count {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_count,
                actual: block_power.len(),
            });
        }
        if let Some((i, &p)) = block_power
            .iter()
            .enumerate()
            .find(|(_, p)| !p.is_finite() || **p < 0.0)
        {
            return Err(ThermalError::InvalidPower(i, p));
        }
        // Build the heat-input vector in place, mirroring
        // `RcNetwork::heat_input`.
        self.nodes[..self.block_count].copy_from_slice(block_power);
        self.nodes[self.block_count] = 0.0;
        // `(1/R) * T`, not `T / R`: keeps the injection bit-identical to
        // `RcNetwork::heat_input`, which multiplies by a stored conductance.
        self.nodes[self.block_count + 1] =
            (1.0 / self.config.convection_resistance) * self.config.ambient_c;
        self.lu.solve_into(&mut self.nodes)?;
        Ok(&self.nodes)
    }

    /// Convenience: loads `rects` and returns the peak *block* temperature
    /// (°C) under `block_power` — the quantity the floorplanner's cost
    /// function needs.
    ///
    /// # Errors
    ///
    /// Combines the errors of [`ThermalSession::load_geometry`] and
    /// [`ThermalSession::solve`].
    pub fn peak_temperature(
        &mut self,
        rects: &[Rect],
        block_power: &[f64],
    ) -> Result<f64, ThermalError> {
        self.load_geometry(rects)?;
        let blocks = &self.solve(block_power)?[..rects.len()];
        Ok(blocks.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Block;
    use crate::model::ThermalModel;

    fn quad_rects() -> Vec<Rect> {
        vec![
            Rect::new(0.0, 0.0, 7e-3, 7e-3),
            Rect::new(7e-3, 0.0, 7e-3, 7e-3),
            Rect::new(0.0, 7e-3, 7e-3, 7e-3),
            Rect::new(7e-3, 7e-3, 7e-3, 7e-3),
        ]
    }

    fn quad_plan() -> Floorplan {
        Floorplan::new(vec![
            Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0),
            Block::from_mm("pe1", 7.0, 0.0, 7.0, 7.0),
            Block::from_mm("pe2", 0.0, 7.0, 7.0, 7.0),
            Block::from_mm("pe3", 7.0, 7.0, 7.0, 7.0),
        ])
        .unwrap()
    }

    #[test]
    fn rect_geometry_matches_block_geometry() {
        let a = Block::from_mm("a", 0.0, 0.0, 5.0, 5.0);
        let b = Block::from_mm("b", 5.0, 2.0, 5.0, 5.0);
        let ra = Rect::new(0.0, 0.0, 5e-3, 5e-3);
        let rb = Rect::new(5e-3, 2e-3, 5e-3, 5e-3);
        assert_eq!(ra.shared_edge_length(&rb), a.shared_edge_length(&b));
        assert_eq!(ra.center_distance(&rb), a.center_distance(&b));
        assert_eq!(ra.area(), a.area());
        assert_eq!(ra.center(), a.center());
    }

    #[test]
    fn session_matches_model_rebuild_exactly() {
        let config = ThermalConfig::default();
        let model = ThermalModel::new(&quad_plan(), config).unwrap();
        let mut session = ThermalSession::new(4, config).unwrap();
        session.load_geometry(&quad_rects()).unwrap();
        let power = [8.0, 2.0, 2.0, 2.0];
        let reference = model.steady_state(&power).unwrap();
        let nodes = session.solve(&power).unwrap();
        for (i, node) in nodes.iter().take(4).enumerate() {
            assert_eq!(*node, reference.block(i).unwrap(), "block {i}");
        }
        assert_eq!(nodes[4], reference.spreader_c());
        assert_eq!(nodes[5], reference.sink_c());
    }

    #[test]
    fn load_floorplan_matches_load_geometry() {
        let config = ThermalConfig::default();
        let power = [3.0, 5.0, 2.0, 6.0];
        let mut by_rects = ThermalSession::new(4, config).unwrap();
        by_rects.load_geometry(&quad_rects()).unwrap();
        let expected = by_rects.solve(&power).unwrap().to_vec();
        let mut by_plan = ThermalSession::new(4, config).unwrap();
        by_plan.load_floorplan(&quad_plan()).unwrap();
        assert_eq!(by_plan.solve(&power).unwrap(), &expected[..]);
    }

    #[test]
    fn repeated_loads_give_independent_exact_results() {
        let config = ThermalConfig::default();
        let mut session = ThermalSession::new(4, config).unwrap();
        let mut rects = quad_rects();
        let power = [6.5, 4.0, 3.0, 5.0];
        let first = session.peak_temperature(&rects, &power).unwrap();
        // Shift the layout, then restore it: the kernel must reproduce the
        // original result bit-for-bit (no state leaks between candidates).
        for r in &mut rects {
            r.x += 1e-3;
        }
        let shifted = session.peak_temperature(&rects, &power).unwrap();
        assert!(shifted.is_finite());
        for r in &mut rects {
            r.x -= 1e-3;
        }
        let again = session.peak_temperature(&rects, &power).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn session_rejects_bad_inputs() {
        let config = ThermalConfig::default();
        assert!(matches!(
            ThermalSession::new(0, config),
            Err(ThermalError::EmptyFloorplan)
        ));
        let mut session = ThermalSession::new(4, config).unwrap();
        // Solve before load.
        assert!(session.solve(&[1.0; 4]).is_err());
        assert!(session.load_geometry(&quad_rects()[..2]).is_err());
        session.load_geometry(&quad_rects()).unwrap();
        assert!(matches!(
            session.solve(&[1.0, 2.0]),
            Err(ThermalError::PowerLengthMismatch {
                expected: 4,
                actual: 2
            })
        ));
        assert!(matches!(
            session.solve(&[1.0, -2.0, 0.0, 0.0]),
            Err(ThermalError::InvalidPower(1, _))
        ));
        assert_eq!(session.block_count(), 4);
        assert_eq!(session.config().ambient_c, 45.0);
    }
}
