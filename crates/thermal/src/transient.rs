//! Transient (time-domain) thermal analysis.
//!
//! The scheduler mostly relies on steady-state queries (as the paper's
//! thermal-aware ASP does), but validating a schedule — and the ablation
//! benches — also need the time-domain response: given a piecewise-constant
//! power trace per block, integrate `C dT/dt = Q - G T` over time.
//!
//! Two integrators are provided: an unconditionally stable implicit
//! (backward Euler) stepper used by default, and an explicit fourth-order
//! Runge–Kutta stepper useful for cross-checking accuracy on short horizons.

use crate::error::ThermalError;
use crate::linalg::{LuDecomposition, Matrix};
use crate::model::{Temperatures, ThermalModel};

/// Integration scheme of the transient solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransientMethod {
    /// Implicit backward Euler; unconditionally stable, first-order accurate.
    #[default]
    BackwardEuler,
    /// Explicit classical Runge–Kutta; fourth-order accurate but requires
    /// time steps small compared to the fastest thermal time constant.
    RungeKutta4,
}

/// One segment of a piecewise-constant power trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerPhase {
    /// Duration of the phase in schedule time units (converted to seconds via
    /// [`crate::ThermalConfig::time_unit_seconds`]).
    pub duration_units: f64,
    /// Per-block power during the phase, watts.
    pub block_power: Vec<f64>,
}

impl PowerPhase {
    /// Creates a phase of the given duration and per-block power.
    pub fn new(duration_units: f64, block_power: Vec<f64>) -> Self {
        PowerPhase {
            duration_units,
            block_power,
        }
    }
}

/// Transient solver bound to a [`ThermalModel`].
#[derive(Debug, Clone)]
pub struct TransientSolver<'a> {
    model: &'a ThermalModel,
    method: TransientMethod,
    /// Integration step in seconds.
    dt_seconds: f64,
}

impl<'a> TransientSolver<'a> {
    /// Creates a solver with the default method (backward Euler) and a 10 ms
    /// step.
    pub fn new(model: &'a ThermalModel) -> Self {
        TransientSolver {
            model,
            method: TransientMethod::default(),
            dt_seconds: 0.01,
        }
    }

    /// Selects the integration scheme.
    pub fn with_method(mut self, method: TransientMethod) -> Self {
        self.method = method;
        self
    }

    /// Overrides the integration step (seconds).
    pub fn with_step(mut self, dt_seconds: f64) -> Self {
        self.dt_seconds = dt_seconds;
        self
    }

    /// Integrates the power trace starting from `initial` and returns the
    /// temperature field at the end of the trace.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a non-positive step or
    /// malformed phases and propagates power-vector validation errors.
    pub fn run(
        &self,
        initial: &Temperatures,
        trace: &[PowerPhase],
    ) -> Result<Temperatures, ThermalError> {
        if self.dt_seconds <= 0.0 || !self.dt_seconds.is_finite() {
            return Err(ThermalError::InvalidParameter(format!(
                "time step must be positive, got {}",
                self.dt_seconds
            )));
        }
        if initial.block_count() != self.model.block_count() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.model.block_count(),
                actual: initial.block_count(),
            });
        }
        let network = self.model.network();
        let time_unit = self.model.config().time_unit_seconds;
        let mut state = initial.to_nodes();

        // Pre-factorise (C/dt + G) for backward Euler once; the matrix does
        // not change between phases.
        let implicit_lu = match self.method {
            TransientMethod::BackwardEuler => {
                let n = network.node_count();
                let mut m = Matrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..n {
                        m[(i, j)] = network.conductance(i, j);
                    }
                    m.add_to(i, i, network.capacitances()[i] / self.dt_seconds);
                }
                Some(LuDecomposition::new(&m)?)
            }
            TransientMethod::RungeKutta4 => None,
        };

        for (phase_index, phase) in trace.iter().enumerate() {
            if phase.duration_units < 0.0 || !phase.duration_units.is_finite() {
                return Err(ThermalError::InvalidParameter(format!(
                    "phase {phase_index} has invalid duration {}",
                    phase.duration_units
                )));
            }
            let q = network.heat_input(&phase.block_power)?;
            let mut remaining = phase.duration_units * time_unit;
            while remaining > 1e-12 {
                let dt = remaining.min(self.dt_seconds);
                match self.method {
                    TransientMethod::BackwardEuler => {
                        // (C/dt + G) T' = C/dt * T + Q.  The pre-factorised
                        // matrix uses the nominal dt; for the final partial
                        // step fall back to an ad-hoc factorisation.
                        if (dt - self.dt_seconds).abs() < 1e-15 {
                            let lu = implicit_lu.as_ref().expect("factorised above");
                            let rhs: Vec<f64> = state
                                .iter()
                                .enumerate()
                                .map(|(i, &t)| network.capacitances()[i] / dt * t + q[i])
                                .collect();
                            state = lu.solve(&rhs)?;
                        } else {
                            let n = network.node_count();
                            let mut m = Matrix::zeros(n, n);
                            for i in 0..n {
                                for j in 0..n {
                                    m[(i, j)] = network.conductance(i, j);
                                }
                                m.add_to(i, i, network.capacitances()[i] / dt);
                            }
                            let rhs: Vec<f64> = state
                                .iter()
                                .enumerate()
                                .map(|(i, &t)| network.capacitances()[i] / dt * t + q[i])
                                .collect();
                            state = m.solve(&rhs)?;
                        }
                    }
                    TransientMethod::RungeKutta4 => {
                        let k1 = network.derivative(&state, &q);
                        let s2: Vec<f64> = state
                            .iter()
                            .zip(&k1)
                            .map(|(t, k)| t + 0.5 * dt * k)
                            .collect();
                        let k2 = network.derivative(&s2, &q);
                        let s3: Vec<f64> = state
                            .iter()
                            .zip(&k2)
                            .map(|(t, k)| t + 0.5 * dt * k)
                            .collect();
                        let k3 = network.derivative(&s3, &q);
                        let s4: Vec<f64> = state.iter().zip(&k3).map(|(t, k)| t + dt * k).collect();
                        let k4 = network.derivative(&s4, &q);
                        for i in 0..state.len() {
                            state[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
                        }
                    }
                }
                remaining -= dt;
            }
        }

        Ok(Temperatures::from_nodes(
            &state,
            self.model.block_count(),
            self.model.config().ambient_c,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Block, Floorplan};
    use crate::materials::ThermalConfig;
    use crate::model::ThermalModel;

    fn model() -> ThermalModel {
        let plan = Floorplan::new(vec![
            Block::from_mm("pe0", 0.0, 0.0, 7.0, 7.0),
            Block::from_mm("pe1", 7.0, 0.0, 7.0, 7.0),
        ])
        .unwrap();
        ThermalModel::new(&plan, ThermalConfig::default()).unwrap()
    }

    #[test]
    fn long_constant_power_approaches_steady_state() {
        let model = model();
        let steady = model.steady_state(&[5.0, 2.0]).unwrap();
        let start = Temperatures::uniform(2, model.config().ambient_c);
        // 100 000 time units at 10 ms each = 1000 s, far beyond the slowest
        // package time constant (~tens of seconds).
        let trace = vec![PowerPhase::new(100_000.0, vec![5.0, 2.0])];
        let end = TransientSolver::new(&model)
            .with_step(0.5)
            .run(&start, &trace)
            .unwrap();
        assert!((end.block(0).unwrap() - steady.block(0).unwrap()).abs() < 0.5);
        assert!((end.block(1).unwrap() - steady.block(1).unwrap()).abs() < 0.5);
    }

    #[test]
    fn temperature_rises_monotonically_from_ambient() {
        let model = model();
        let start = Temperatures::uniform(2, model.config().ambient_c);
        let solver = TransientSolver::new(&model).with_step(0.05);
        let after_short = solver
            .run(&start, &[PowerPhase::new(50.0, vec![6.0, 6.0])])
            .unwrap();
        let after_long = solver
            .run(&start, &[PowerPhase::new(500.0, vec![6.0, 6.0])])
            .unwrap();
        assert!(after_short.max_c() > model.config().ambient_c);
        assert!(after_long.max_c() > after_short.max_c());
    }

    #[test]
    fn cooling_phase_reduces_temperature() {
        let model = model();
        let start = Temperatures::uniform(2, model.config().ambient_c);
        let solver = TransientSolver::new(&model).with_step(0.05);
        let heated = solver
            .run(&start, &[PowerPhase::new(500.0, vec![8.0, 8.0])])
            .unwrap();
        let cooled = solver
            .run(&heated, &[PowerPhase::new(500.0, vec![0.0, 0.0])])
            .unwrap();
        assert!(cooled.max_c() < heated.max_c());
        assert!(cooled.max_c() >= model.config().ambient_c - 1e-6);
    }

    #[test]
    fn rk4_and_backward_euler_agree_on_short_horizons() {
        let model = model();
        let start = Temperatures::uniform(2, model.config().ambient_c);
        let trace = vec![PowerPhase::new(20.0, vec![4.0, 1.0])];
        let be = TransientSolver::new(&model)
            .with_step(0.002)
            .run(&start, &trace)
            .unwrap();
        let rk = TransientSolver::new(&model)
            .with_method(TransientMethod::RungeKutta4)
            .with_step(0.002)
            .run(&start, &trace)
            .unwrap();
        assert!((be.block(0).unwrap() - rk.block(0).unwrap()).abs() < 0.2);
        assert!((be.block(1).unwrap() - rk.block(1).unwrap()).abs() < 0.2);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let model = model();
        let start = Temperatures::uniform(2, 45.0);
        assert!(TransientSolver::new(&model)
            .with_step(0.0)
            .run(&start, &[])
            .is_err());
        assert!(TransientSolver::new(&model)
            .run(&start, &[PowerPhase::new(-1.0, vec![1.0, 1.0])])
            .is_err());
        assert!(TransientSolver::new(&model)
            .run(&start, &[PowerPhase::new(1.0, vec![1.0])])
            .is_err());
        let wrong_start = Temperatures::uniform(3, 45.0);
        assert!(TransientSolver::new(&model)
            .run(&wrong_start, &[PowerPhase::new(1.0, vec![1.0, 1.0])])
            .is_err());
    }

    #[test]
    fn empty_trace_returns_initial_state() {
        let model = model();
        let start = Temperatures::uniform(2, 60.0);
        let end = TransientSolver::new(&model).run(&start, &[]).unwrap();
        assert_eq!(end.block(0).unwrap(), 60.0);
        assert_eq!(end.block(1).unwrap(), 60.0);
    }
}
