//! CSV export of schedules, evaluations and thermal traces.
//!
//! The exports are plain RFC-4180-style CSV strings (comma separated, `\n`
//! line endings, quoting only when needed) so they can be dropped straight
//! into a spreadsheet or plotted with any external tool.

use tats_core::{Schedule, ScheduleEvaluation};
use tats_power::ThermalTrace;
use tats_taskgraph::TaskGraph;

use crate::error::TraceError;

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialises one row of fields.
fn row(fields: &[String]) -> String {
    fields
        .iter()
        .map(|field| escape(field))
        .collect::<Vec<_>>()
        .join(",")
}

/// Exports a schedule as CSV with one row per assignment.
///
/// Columns: `task`, `name`, `pe`, `start`, `end`, `duration`, `power`,
/// `energy`.  Task names come from `graph` when provided.
///
/// # Errors
///
/// Returns [`TraceError::EmptyInput`] for a schedule without assignments.
///
/// # Examples
///
/// ```
/// use tats_core::{PlatformFlow, Policy};
/// use tats_taskgraph::Benchmark;
/// use tats_techlib::profiles;
/// use tats_trace::csv;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let library = profiles::standard_library(12)?;
/// let graph = Benchmark::Bm1.task_graph()?;
/// let result = PlatformFlow::new(&library)?.run(&graph, Policy::Baseline)?;
/// let text = csv::schedule_to_csv(&result.schedule, Some(&graph))?;
/// assert!(text.starts_with("task,name,pe,start,end,duration,power,energy"));
/// # Ok(())
/// # }
/// ```
pub fn schedule_to_csv(
    schedule: &Schedule,
    graph: Option<&TaskGraph>,
) -> Result<String, TraceError> {
    if schedule.task_count() == 0 {
        return Err(TraceError::EmptyInput("schedule has no assignments".into()));
    }
    let mut lines = vec![row(&[
        "task".into(),
        "name".into(),
        "pe".into(),
        "start".into(),
        "end".into(),
        "duration".into(),
        "power".into(),
        "energy".into(),
    ])];
    let mut assignments: Vec<_> = schedule.assignments().iter().collect();
    assignments.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .expect("schedule times are finite")
            .then(a.pe.index().cmp(&b.pe.index()))
    });
    for assignment in assignments {
        let name = graph
            .and_then(|g| g.get_task(assignment.task))
            .map(|task| task.name().to_string())
            .unwrap_or_else(|| format!("t{}", assignment.task.index()));
        lines.push(row(&[
            assignment.task.index().to_string(),
            name,
            assignment.pe.index().to_string(),
            format!("{:.6}", assignment.start),
            format!("{:.6}", assignment.end),
            format!("{:.6}", assignment.duration()),
            format!("{:.6}", assignment.power),
            format!("{:.6}", assignment.energy()),
        ]));
    }
    Ok(lines.join("\n") + "\n")
}

/// Exports a schedule evaluation (the paper's table metrics) as a two-line
/// CSV: header plus one value row.
pub fn evaluation_to_csv(label: &str, evaluation: &ScheduleEvaluation) -> String {
    let header = row(&[
        "label".into(),
        "total_power".into(),
        "max_temp_c".into(),
        "avg_temp_c".into(),
        "makespan".into(),
        "meets_deadline".into(),
    ]);
    let values = row(&[
        label.to_string(),
        format!("{:.4}", evaluation.total_average_power),
        format!("{:.4}", evaluation.max_temperature_c),
        format!("{:.4}", evaluation.avg_temperature_c),
        format!("{:.4}", evaluation.makespan),
        evaluation.meets_deadline.to_string(),
    ]);
    format!("{header}\n{values}\n")
}

/// Exports a thermal trace as CSV with one row per sample and one column per
/// block, plus the running maximum.
///
/// # Errors
///
/// Returns [`TraceError::EmptyInput`] for an empty trace.
pub fn thermal_trace_to_csv(trace: &ThermalTrace) -> Result<String, TraceError> {
    if trace.is_empty() {
        return Err(TraceError::EmptyInput(
            "thermal trace has no samples".into(),
        ));
    }
    let block_count = trace.samples()[0].block_count();
    let mut header = vec!["time".to_string()];
    header.extend((0..block_count).map(|block| format!("block{block}_c")));
    header.push("max_c".into());
    let mut lines = vec![row(&header)];
    for (time, sample) in trace.times().iter().zip(trace.samples()) {
        let mut fields = vec![format!("{time:.6}")];
        fields.extend(sample.blocks().iter().map(|temp| format!("{temp:.4}")));
        fields.push(format!("{:.4}", sample.max_c()));
        lines.push(row(&fields));
    }
    Ok(lines.join("\n") + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tats_core::{PlatformFlow, Policy};
    use tats_taskgraph::Benchmark;
    use tats_techlib::profiles;
    use tats_thermal::Temperatures;

    fn fixture() -> (Schedule, TaskGraph, ScheduleEvaluation) {
        let library = profiles::standard_library(12).expect("library");
        let graph = Benchmark::Bm1.task_graph().expect("graph");
        let result = PlatformFlow::new(&library)
            .expect("flow")
            .run(&graph, Policy::Baseline)
            .expect("result");
        (result.schedule, graph, result.evaluation)
    }

    #[test]
    fn schedule_csv_has_one_row_per_assignment_plus_header() {
        let (schedule, graph, _) = fixture();
        let text = schedule_to_csv(&schedule, Some(&graph)).expect("csv");
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), schedule.task_count() + 1);
        assert!(lines[0].starts_with("task,name,pe"));
        // Start times are non-decreasing because rows are sorted.
        let starts: Vec<f64> = lines[1..]
            .iter()
            .map(|line| {
                line.split(',')
                    .nth(3)
                    .expect("start column")
                    .parse()
                    .expect("float")
            })
            .collect();
        for pair in starts.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-9);
        }
    }

    #[test]
    fn evaluation_csv_round_trips_the_metrics() {
        let (_, _, evaluation) = fixture();
        let text = evaluation_to_csv("baseline", &evaluation);
        let mut lines = text.lines();
        let header = lines.next().expect("header");
        let values = lines.next().expect("values");
        assert!(header.contains("max_temp_c"));
        assert!(values.starts_with("baseline,"));
        let max_temp: f64 = values
            .split(',')
            .nth(2)
            .expect("column")
            .parse()
            .expect("float");
        assert!((max_temp - evaluation.max_temperature_c).abs() < 1e-3);
    }

    #[test]
    fn thermal_trace_csv_has_block_columns() {
        let times = vec![1.0, 2.0, 3.0];
        let samples = vec![
            Temperatures::uniform(2, 40.0),
            Temperatures::uniform(2, 50.0),
            Temperatures::uniform(2, 45.0),
        ];
        let trace = ThermalTrace::new(times, samples).expect("trace");
        let text = thermal_trace_to_csv(&trace).expect("csv");
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "time,block0_c,block1_c,max_c");
        assert!(lines[2].starts_with("2.000000,50.0000,50.0000"));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn empty_trace_is_rejected_by_construction() {
        // ThermalTrace cannot be empty by construction, so the CSV error
        // path is only reachable via the explicit empty check; exercise the
        // schedule error instead.
        let (schedule, _, _) = fixture();
        assert!(schedule_to_csv(&schedule, None).is_ok());
    }
}
