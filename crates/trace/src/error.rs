//! Error type of the reporting crate.

use std::error::Error;
use std::fmt;

/// Errors produced while rendering or exporting reports.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A numeric parameter was out of range or not finite.
    InvalidParameter(String),
    /// The object being rendered was empty.
    EmptyInput(String),
    /// A JSON document could not be parsed; carries the byte offset of the
    /// failure and a description of what was expected.
    Parse {
        /// Byte offset in the input where parsing failed.
        offset: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidParameter(message) => write!(f, "invalid parameter: {message}"),
            TraceError::EmptyInput(what) => write!(f, "nothing to render: {what}"),
            TraceError::Parse { offset, message } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TraceError::InvalidParameter("width".into())
            .to_string()
            .contains("width"));
        assert!(TraceError::EmptyInput("schedule".into())
            .to_string()
            .contains("schedule"));
    }
}
