//! Error type of the reporting crate.

use std::error::Error;
use std::fmt;

/// Errors produced while rendering or exporting reports.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A numeric parameter was out of range or not finite.
    InvalidParameter(String),
    /// The object being rendered was empty.
    EmptyInput(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidParameter(message) => write!(f, "invalid parameter: {message}"),
            TraceError::EmptyInput(what) => write!(f, "nothing to render: {what}"),
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TraceError::InvalidParameter("width".into())
            .to_string()
            .contains("width"));
        assert!(TraceError::EmptyInput("schedule".into())
            .to_string()
            .contains("schedule"));
    }
}
