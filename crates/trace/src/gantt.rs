//! ASCII Gantt charts of schedules.
//!
//! A schedule is easiest to sanity-check visually: one row per processing
//! element, time flowing left to right, each task drawn as a labelled box.
//! The renderer is deliberately plain text so it works in test logs, CI
//! output and the CLI.

use tats_core::Schedule;
use tats_taskgraph::TaskGraph;
use tats_techlib::PeId;

use crate::error::TraceError;

/// Configurable ASCII Gantt renderer.
#[derive(Debug, Clone)]
pub struct GanttChart {
    width: usize,
    show_deadline: bool,
    show_utilisation: bool,
}

impl GanttChart {
    /// Creates a renderer with an 80-column timeline, deadline marker and
    /// per-PE utilisation summary.
    pub fn new() -> Self {
        GanttChart {
            width: 80,
            show_deadline: true,
            show_utilisation: true,
        }
    }

    /// Sets the number of character cells of the timeline.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] for widths below 10.
    pub fn with_width(mut self, width: usize) -> Result<Self, TraceError> {
        if width < 10 {
            return Err(TraceError::InvalidParameter(format!(
                "timeline width must be at least 10 columns, got {width}"
            )));
        }
        self.width = width;
        Ok(self)
    }

    /// Enables or disables the deadline marker row.
    pub fn with_deadline_marker(mut self, show: bool) -> Self {
        self.show_deadline = show;
        self
    }

    /// Enables or disables the per-PE utilisation summary column.
    pub fn with_utilisation(mut self, show: bool) -> Self {
        self.show_utilisation = show;
        self
    }

    /// Renders the schedule as a multi-line string.
    ///
    /// Task labels use the task names from `graph` when it is provided and
    /// fall back to `t<id>` otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyInput`] for a schedule without assignments
    /// or with a non-positive makespan.
    ///
    /// # Examples
    ///
    /// ```
    /// use tats_core::{PlatformFlow, Policy};
    /// use tats_taskgraph::Benchmark;
    /// use tats_techlib::profiles;
    /// use tats_trace::GanttChart;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let library = profiles::standard_library(12)?;
    /// let graph = Benchmark::Bm1.task_graph()?;
    /// let result = PlatformFlow::new(&library)?.run(&graph, Policy::ThermalAware)?;
    /// let chart = GanttChart::new().render(&result.schedule, Some(&graph))?;
    /// assert!(chart.contains("PE0"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn render(
        &self,
        schedule: &Schedule,
        graph: Option<&TaskGraph>,
    ) -> Result<String, TraceError> {
        if schedule.task_count() == 0 {
            return Err(TraceError::EmptyInput("schedule has no assignments".into()));
        }
        let horizon = schedule.deadline().max(schedule.makespan());
        if horizon <= 0.0 || !horizon.is_finite() {
            return Err(TraceError::EmptyInput(
                "schedule has a non-positive horizon".into(),
            ));
        }
        let scale = self.width as f64 / horizon;
        let mut out = String::new();

        // Header: time axis.
        out.push_str(&format!(
            "time 0 {:-^width$} {:.0}\n",
            "",
            horizon,
            width = self.width.saturating_sub(2)
        ));

        let mut assignments = Vec::new();
        for pe_index in 0..schedule.pe_count() {
            let pe = PeId(pe_index);
            let mut row = vec![b'.'; self.width];
            schedule.assignments_on_sorted_into(pe, &mut assignments);
            for assignment in &assignments {
                let start_cell =
                    ((assignment.start * scale).floor() as usize).min(self.width.saturating_sub(1));
                let end_cell =
                    ((assignment.end * scale).ceil() as usize).clamp(start_cell + 1, self.width);
                let label = match graph.and_then(|g| g.get_task(assignment.task)) {
                    Some(task) => task.name().to_string(),
                    None => format!("t{}", assignment.task.index()),
                };
                let span = end_cell - start_cell;
                for (offset, cell) in row[start_cell..end_cell].iter_mut().enumerate() {
                    *cell = if offset == 0 {
                        b'['
                    } else if offset + 1 == span {
                        b']'
                    } else {
                        b'#'
                    };
                }
                // Overlay as much of the label as fits inside the box.
                let interior = span.saturating_sub(2);
                for (offset, byte) in label
                    .bytes()
                    .filter(u8::is_ascii_graphic)
                    .take(interior)
                    .enumerate()
                {
                    row[start_cell + 1 + offset] = byte;
                }
            }
            let mut line = format!(
                "PE{:<3} |{}|",
                pe_index,
                String::from_utf8(row).expect("rendered row is ASCII")
            );
            if self.show_utilisation {
                let utilisation = 100.0 * schedule.busy_time(pe) / horizon;
                line.push_str(&format!(" {utilisation:5.1}%"));
            }
            out.push_str(&line);
            out.push('\n');
        }

        if self.show_deadline {
            let deadline_cell = ((schedule.deadline() * scale).round() as usize).min(self.width);
            let mut marker = vec![b' '; self.width];
            if deadline_cell > 0 {
                marker[deadline_cell - 1] = b'^';
            }
            out.push_str(&format!(
                "      |{}| deadline {:.0} / makespan {:.1}\n",
                String::from_utf8(marker).expect("marker row is ASCII"),
                schedule.deadline(),
                schedule.makespan()
            ));
        }
        Ok(out)
    }
}

impl Default for GanttChart {
    fn default() -> Self {
        GanttChart::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tats_core::{PlatformFlow, Policy};
    use tats_taskgraph::Benchmark;
    use tats_techlib::profiles;

    fn fixture() -> (Schedule, TaskGraph) {
        let library = profiles::standard_library(12).expect("library");
        let graph = Benchmark::Bm1.task_graph().expect("graph");
        let schedule = PlatformFlow::new(&library)
            .expect("flow")
            .run(&graph, Policy::Baseline)
            .expect("result")
            .schedule;
        (schedule, graph)
    }

    #[test]
    fn renders_one_row_per_pe() {
        let (schedule, graph) = fixture();
        let chart = GanttChart::new()
            .render(&schedule, Some(&graph))
            .expect("chart");
        for pe in 0..schedule.pe_count() {
            assert!(chart.contains(&format!("PE{pe}")));
        }
        assert!(chart.contains("deadline"));
        assert!(chart.contains('%'));
    }

    #[test]
    fn narrow_chart_still_renders_every_task_box() {
        let (schedule, _) = fixture();
        let chart = GanttChart::new()
            .with_width(40)
            .expect("valid width")
            .with_deadline_marker(false)
            .with_utilisation(false)
            .render(&schedule, None)
            .expect("chart");
        assert!(!chart.contains("deadline"));
        assert!(!chart.contains('%'));
        // Every busy PE must show at least one box.
        for pe in 0..schedule.pe_count() {
            let busy = schedule.busy_time(tats_techlib::PeId(pe)) > 0.0;
            if busy {
                let row = chart
                    .lines()
                    .find(|line| line.starts_with(&format!("PE{pe}")))
                    .expect("row exists");
                assert!(row.contains('['), "busy PE row must contain a task box");
            }
        }
    }

    #[test]
    fn rejects_tiny_widths_and_empty_schedules() {
        assert!(GanttChart::new().with_width(3).is_err());
    }

    #[test]
    fn labels_fall_back_without_a_graph() {
        let (schedule, _) = fixture();
        let chart = GanttChart::new().render(&schedule, None).expect("chart");
        assert!(chart.contains('['));
    }
}
