//! Minimal JSON value model, writer and parser.
//!
//! The workspace deliberately avoids a JSON dependency; this module provides
//! the small value model needed to export schedules and experiment tables
//! for external tooling, plus — since the campaign service speaks JSON over
//! HTTP — a strict recursive-descent parser ([`JsonValue::parse`]). Writer
//! and parser round-trip each other: `parse(v.to_json()) == v` for every
//! value the writer can produce (non-finite numbers serialise as `null`).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::TraceError;

use tats_core::experiment::ComparisonTable;
use tats_core::{Schedule, ScheduleEvaluation};
use tats_taskgraph::TaskGraph;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with keys sorted for deterministic output.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Creates an object from key/value pairs.
    pub fn object<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (String, JsonValue)>,
    {
        JsonValue::Object(pairs.into_iter().collect())
    }

    /// Parses a JSON document. Strict: the whole input must be one value
    /// (plus surrounding whitespace); trailing content is an error.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] with the byte offset of the failure.
    ///
    /// # Examples
    ///
    /// ```
    /// use tats_trace::JsonValue;
    ///
    /// let value = JsonValue::parse("{\"id\": 3, \"key\": \"Bm1/platform/thermal/s0\"}").unwrap();
    /// assert_eq!(value.get("id").and_then(JsonValue::as_u64), Some(3));
    /// assert!(JsonValue::parse("{\"id\": 3").is_err()); // truncated
    /// ```
    pub fn parse(text: &str) -> Result<JsonValue, TraceError> {
        let mut parser = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing content after the JSON value"));
        }
        Ok(value)
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer that `f64`
    /// represents exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(value)
                if *value >= 0.0 && value.fract() == 0.0 && *value <= 2f64.powi(53) =>
            {
                Some(*value as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(value) => Some(value),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// The value of a key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// A required object field. The `Err` of this and the other `field_*`
    /// accessors is a human-readable description naming the field, for
    /// callers (wire-protocol decoders) to wrap in their own error types.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing field.
    pub fn field<'v>(&'v self, name: &str) -> Result<&'v JsonValue, String> {
        self.get(name)
            .ok_or_else(|| format!("missing field '{name}'"))
    }

    /// A required string field.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn field_str(&self, name: &str) -> Result<&str, String> {
        self.field(name)?
            .as_str()
            .ok_or_else(|| format!("field '{name}' must be a string"))
    }

    /// A required non-negative integer field.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn field_u64(&self, name: &str) -> Result<u64, String> {
        self.field(name)?
            .as_u64()
            .ok_or_else(|| format!("field '{name}' must be a non-negative integer"))
    }

    /// A required numeric field.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn field_f64(&self, name: &str) -> Result<f64, String> {
        self.field(name)?
            .as_f64()
            .ok_or_else(|| format!("field '{name}' must be a number"))
    }

    /// A required boolean field.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn field_bool(&self, name: &str) -> Result<bool, String> {
        self.field(name)?
            .as_bool()
            .ok_or_else(|| format!("field '{name}' must be a boolean"))
    }

    /// A required array field.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn field_array(&self, name: &str) -> Result<&[JsonValue], String> {
        self.field(name)?
            .as_array()
            .ok_or_else(|| format!("field '{name}' must be an array"))
    }

    /// Serialises the value to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(value) => out.push_str(if *value { "true" } else { "false" }),
            JsonValue::Number(value) => {
                if value.is_finite() {
                    out.push_str(&format!("{value}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(value) => write_json_string(out, value),
            JsonValue::Array(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (index, (key, value)) in map.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `value` onto `out` as a JSON string literal — quotes plus the
/// exact escaping [`JsonValue::to_json`] uses. Public so hand-rolled
/// hot-path serializers (the span wire format) stay byte-compatible with
/// the tree serializer without building a [`JsonValue`] first.
pub fn write_json_string(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Nesting depth beyond which the parser refuses to recurse (a hostile
/// `[[[[...` would otherwise overflow the stack).
const MAX_PARSE_DEPTH: usize = 128;

/// Strict recursive-descent JSON parser over the input bytes. `text` is
/// the same input as a `&str`: scanning happens on `bytes`, while string
/// content is copied via `&text[pos..]` slices — the parser only lands on
/// `pos` values that are char boundaries, so slicing is safe and each
/// character costs O(1) (no re-validation of the remaining input).
struct Parser<'t> {
    text: &'t str,
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> TraceError {
        TraceError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes a literal keyword (`null`, `true`, `false`).
    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, TraceError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, TraceError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object_value(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte 0x{other:02x}"))),
        }
    }

    fn number(&mut self) -> Result<JsonValue, TraceError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            Ok(value) if value.is_finite() => Ok(JsonValue::Number(value)),
            _ => Err(self.error(format!("malformed number '{text}'"))),
        }
    }

    fn string(&mut self) -> Result<String, TraceError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            self.pos -= 1;
                            return Err(self.error(format!("unknown escape '\\{}'", other as char)));
                        }
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy the longest run of plain characters in one slice
                    // (every `pos` this loop produces is a char boundary of
                    // `text`, so indexing cannot panic).
                    let start = self.pos;
                    while matches!(self.peek(), Some(byte) if byte != b'"' && byte != b'\\' && byte >= 0x20)
                    {
                        self.pos += 1;
                        while !self.text.is_char_boundary(self.pos) {
                            self.pos += 1;
                        }
                    }
                    out.push_str(&self.text[start..self.pos]);
                }
            }
        }
    }

    /// Parses the 4 hex digits of a `\uXXXX` escape (the `\u` is already
    /// consumed), combining UTF-16 surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, TraceError> {
        let high = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&high) {
            // High surrogate: a low surrogate escape must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.error("expected a low surrogate"));
                }
                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err(self.error("unpaired surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&high) {
            return Err(self.error("unpaired low surrogate"));
        } else {
            high
        };
        char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, TraceError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|slice| std::str::from_utf8(slice).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16)
            .map_err(|_| self.error(format!("bad hex digits '{digits}'")))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, TraceError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object_value(&mut self, depth: usize) -> Result<JsonValue, TraceError> {
        self.pos += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected a string key"));
            }
            let key = self.string()?;
            self.skip_whitespace();
            if self.peek() != Some(b':') {
                return Err(self.error("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

impl From<&str> for JsonValue {
    fn from(value: &str) -> Self {
        JsonValue::String(value.to_string())
    }
}

impl From<f64> for JsonValue {
    fn from(value: f64) -> Self {
        JsonValue::Number(value)
    }
}

impl From<bool> for JsonValue {
    fn from(value: bool) -> Self {
        JsonValue::Bool(value)
    }
}

impl From<usize> for JsonValue {
    fn from(value: usize) -> Self {
        JsonValue::Number(value as f64)
    }
}

/// Exports a schedule as a JSON object with per-assignment records and
/// summary metrics.
pub fn schedule_to_json(schedule: &Schedule, graph: Option<&TaskGraph>) -> JsonValue {
    let assignments: Vec<JsonValue> = schedule
        .assignments()
        .iter()
        .map(|assignment| {
            let name = graph
                .and_then(|g| g.get_task(assignment.task))
                .map(|task| task.name().to_string())
                .unwrap_or_else(|| format!("t{}", assignment.task.index()));
            JsonValue::object(vec![
                ("task".to_string(), JsonValue::from(assignment.task.index())),
                ("name".to_string(), JsonValue::from(name.as_str())),
                ("pe".to_string(), JsonValue::from(assignment.pe.index())),
                ("start".to_string(), JsonValue::from(assignment.start)),
                ("end".to_string(), JsonValue::from(assignment.end)),
                ("power".to_string(), JsonValue::from(assignment.power)),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("deadline".to_string(), JsonValue::from(schedule.deadline())),
        ("makespan".to_string(), JsonValue::from(schedule.makespan())),
        (
            "meets_deadline".to_string(),
            JsonValue::from(schedule.meets_deadline()),
        ),
        ("pe_count".to_string(), JsonValue::from(schedule.pe_count())),
        ("assignments".to_string(), JsonValue::Array(assignments)),
    ])
}

/// Exports a schedule evaluation as a JSON object.
pub fn evaluation_to_json(evaluation: &ScheduleEvaluation) -> JsonValue {
    JsonValue::object(vec![
        (
            "total_power".to_string(),
            JsonValue::from(evaluation.total_average_power),
        ),
        (
            "max_temp_c".to_string(),
            JsonValue::from(evaluation.max_temperature_c),
        ),
        (
            "avg_temp_c".to_string(),
            JsonValue::from(evaluation.avg_temperature_c),
        ),
        ("makespan".to_string(), JsonValue::from(evaluation.makespan)),
        (
            "meets_deadline".to_string(),
            JsonValue::from(evaluation.meets_deadline),
        ),
    ])
}

/// Exports a power-aware vs thermal-aware comparison table (paper Tables 2
/// and 3) as a JSON object.
pub fn comparison_to_json(table: &ComparisonTable) -> JsonValue {
    let rows: Vec<JsonValue> = table
        .rows
        .iter()
        .map(|row| {
            JsonValue::object(vec![
                (
                    "benchmark".to_string(),
                    JsonValue::from(row.benchmark.name()),
                ),
                (
                    "power_aware".to_string(),
                    JsonValue::object(vec![
                        (
                            "total_power".to_string(),
                            JsonValue::from(row.power_aware.total_power),
                        ),
                        (
                            "max_temp_c".to_string(),
                            JsonValue::from(row.power_aware.max_temp_c),
                        ),
                        (
                            "avg_temp_c".to_string(),
                            JsonValue::from(row.power_aware.avg_temp_c),
                        ),
                    ]),
                ),
                (
                    "thermal_aware".to_string(),
                    JsonValue::object(vec![
                        (
                            "total_power".to_string(),
                            JsonValue::from(row.thermal_aware.total_power),
                        ),
                        (
                            "max_temp_c".to_string(),
                            JsonValue::from(row.thermal_aware.max_temp_c),
                        ),
                        (
                            "avg_temp_c".to_string(),
                            JsonValue::from(row.thermal_aware.avg_temp_c),
                        ),
                    ]),
                ),
            ])
        })
        .collect();
    JsonValue::object(vec![
        (
            "caption".to_string(),
            JsonValue::from(table.caption.as_str()),
        ),
        (
            "mean_max_temp_reduction_c".to_string(),
            JsonValue::from(table.mean_max_temp_reduction()),
        ),
        (
            "mean_avg_temp_reduction_c".to_string(),
            JsonValue::from(table.mean_avg_temp_reduction()),
        ),
        ("rows".to_string(), JsonValue::Array(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tats_core::{PlatformFlow, Policy};
    use tats_taskgraph::Benchmark;
    use tats_techlib::profiles;

    #[test]
    fn scalar_values_serialise_correctly() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::Number(2.5).to_json(), "2.5");
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::from("hi").to_json(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let value = JsonValue::from("line\n\"quoted\"\\slash");
        assert_eq!(value.to_json(), "\"line\\n\\\"quoted\\\"\\\\slash\"");
        let control = JsonValue::from("\u{1}");
        assert_eq!(control.to_json(), "\"\\u0001\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let value = JsonValue::object(vec![
            (
                "b".to_string(),
                JsonValue::Array(vec![1.0.into(), 2.0.into()]),
            ),
            ("a".to_string(), JsonValue::from(true)),
        ]);
        // Keys are sorted for deterministic output.
        assert_eq!(value.to_json(), "{\"a\":true,\"b\":[1,2]}");
        assert_eq!(value.to_string(), value.to_json());
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let value = JsonValue::object(vec![
            ("id".to_string(), JsonValue::from(42usize)),
            (
                "key".to_string(),
                JsonValue::from("Bm1/platform/thermal/s0"),
            ),
            ("temp".to_string(), JsonValue::from(81.25)),
            ("ok".to_string(), JsonValue::from(true)),
            ("none".to_string(), JsonValue::Null),
            (
                "list".to_string(),
                JsonValue::Array(vec![1.0.into(), JsonValue::from("x")]),
            ),
        ]);
        let parsed = JsonValue::parse(&value.to_json()).expect("round trip");
        assert_eq!(parsed, value);
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_nesting() {
        let value = JsonValue::parse(
            " { \"a\" : [ 1 , -2.5e1 , \"q\\\"\\\\\\n\\u0041\\ud83d\\ude00\" ] , \"b\" : { } } ",
        )
        .expect("parse");
        let items = value.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-25.0));
        assert_eq!(items[2].as_str(), Some("q\"\\\nA😀"));
        assert_eq!(value.get("b"), Some(&JsonValue::Object(BTreeMap::new())));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "tru",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\ud800\"",
            "01x",
            "{\"a\":1} trailing",
            "nan",
            "{1: 2}",
        ] {
            let error = JsonValue::parse(bad).expect_err(bad);
            assert!(
                matches!(error, TraceError::Parse { .. }),
                "{bad}: {error:?}"
            );
            assert!(error.to_string().contains("invalid JSON"), "{bad}");
        }
        // Unbounded nesting is refused, not a stack overflow.
        let deep = "[".repeat(100_000);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn accessors_discriminate_types() {
        let value =
            JsonValue::parse("{\"n\": 3, \"s\": \"x\", \"b\": false, \"z\": null}").unwrap();
        assert_eq!(value.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(value.get("n").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(value.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(value.get("b").and_then(JsonValue::as_bool), Some(false));
        assert!(value.get("z").is_some_and(JsonValue::is_null));
        assert!(value.get("missing").is_none());
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::from("x").as_u64(), None);
        assert!(value.as_array().is_none());
        assert!(JsonValue::Null.get("x").is_none());
    }

    #[test]
    fn field_accessors_name_the_field_in_errors() {
        let value =
            JsonValue::parse("{\"n\": 3, \"s\": \"x\", \"b\": false, \"a\": [1], \"f\": 2.5}")
                .unwrap();
        assert_eq!(value.field_u64("n"), Ok(3));
        assert_eq!(value.field_f64("f"), Ok(2.5));
        assert_eq!(value.field_str("s"), Ok("x"));
        assert_eq!(value.field_bool("b"), Ok(false));
        assert_eq!(value.field_array("a").unwrap().len(), 1);
        assert!(value.field("zzz").unwrap_err().contains("'zzz'"));
        assert!(value.field_str("n").unwrap_err().contains("'n'"));
        assert!(value.field_u64("s").unwrap_err().contains("'s'"));
        assert!(value.field_bool("a").unwrap_err().contains("'a'"));
        assert!(value.field_array("f").unwrap_err().contains("'f'"));
        assert!(value.field_f64("missing").unwrap_err().contains("missing"));
    }

    #[test]
    fn long_and_multibyte_strings_parse_in_linear_time() {
        // A megabyte-scale string with multi-byte characters sprinkled in:
        // regression guard for the once-quadratic string scan (this parses
        // in milliseconds now; the quadratic version took minutes).
        let payload = "héllo wörld 😀 ".repeat(40_000);
        let doc =
            JsonValue::object(vec![("s".to_string(), JsonValue::from(payload.as_str()))]).to_json();
        let start = std::time::Instant::now();
        let parsed = JsonValue::parse(&doc).expect("parse");
        assert!(
            start.elapsed().as_secs_f64() < 2.0,
            "string scan is not linear"
        );
        assert_eq!(parsed.field_str("s"), Ok(payload.as_str()));
    }

    #[test]
    fn schedule_export_contains_every_assignment() {
        let library = profiles::standard_library(12).expect("library");
        let graph = Benchmark::Bm1.task_graph().expect("graph");
        let result = PlatformFlow::new(&library)
            .expect("flow")
            .run(&graph, Policy::Baseline)
            .expect("result");
        let json = schedule_to_json(&result.schedule, Some(&graph)).to_json();
        assert!(json.contains("\"assignments\":["));
        assert_eq!(
            json.matches("\"task\":").count(),
            result.schedule.task_count()
        );
        let eval_json = evaluation_to_json(&result.evaluation).to_json();
        assert!(eval_json.contains("max_temp_c"));
    }
}
