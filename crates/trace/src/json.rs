//! Minimal JSON writer and exports.
//!
//! The workspace deliberately avoids a JSON dependency; this module provides
//! the small value model and writer needed to export schedules and
//! experiment tables for external tooling.  Only serialisation is supported
//! (the suite never needs to parse JSON).

use std::collections::BTreeMap;
use std::fmt;

use tats_core::experiment::ComparisonTable;
use tats_core::{Schedule, ScheduleEvaluation};
use tats_taskgraph::TaskGraph;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with keys sorted for deterministic output.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Creates an object from key/value pairs.
    pub fn object<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (String, JsonValue)>,
    {
        JsonValue::Object(pairs.into_iter().collect())
    }

    /// Serialises the value to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(value) => out.push_str(if *value { "true" } else { "false" }),
            JsonValue::Number(value) => {
                if value.is_finite() {
                    out.push_str(&format!("{value}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(value) => {
                out.push('"');
                for ch in value.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (index, (key, value)) in map.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    JsonValue::String(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<&str> for JsonValue {
    fn from(value: &str) -> Self {
        JsonValue::String(value.to_string())
    }
}

impl From<f64> for JsonValue {
    fn from(value: f64) -> Self {
        JsonValue::Number(value)
    }
}

impl From<bool> for JsonValue {
    fn from(value: bool) -> Self {
        JsonValue::Bool(value)
    }
}

impl From<usize> for JsonValue {
    fn from(value: usize) -> Self {
        JsonValue::Number(value as f64)
    }
}

/// Exports a schedule as a JSON object with per-assignment records and
/// summary metrics.
pub fn schedule_to_json(schedule: &Schedule, graph: Option<&TaskGraph>) -> JsonValue {
    let assignments: Vec<JsonValue> = schedule
        .assignments()
        .iter()
        .map(|assignment| {
            let name = graph
                .and_then(|g| g.get_task(assignment.task))
                .map(|task| task.name().to_string())
                .unwrap_or_else(|| format!("t{}", assignment.task.index()));
            JsonValue::object(vec![
                ("task".to_string(), JsonValue::from(assignment.task.index())),
                ("name".to_string(), JsonValue::from(name.as_str())),
                ("pe".to_string(), JsonValue::from(assignment.pe.index())),
                ("start".to_string(), JsonValue::from(assignment.start)),
                ("end".to_string(), JsonValue::from(assignment.end)),
                ("power".to_string(), JsonValue::from(assignment.power)),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("deadline".to_string(), JsonValue::from(schedule.deadline())),
        ("makespan".to_string(), JsonValue::from(schedule.makespan())),
        (
            "meets_deadline".to_string(),
            JsonValue::from(schedule.meets_deadline()),
        ),
        ("pe_count".to_string(), JsonValue::from(schedule.pe_count())),
        ("assignments".to_string(), JsonValue::Array(assignments)),
    ])
}

/// Exports a schedule evaluation as a JSON object.
pub fn evaluation_to_json(evaluation: &ScheduleEvaluation) -> JsonValue {
    JsonValue::object(vec![
        (
            "total_power".to_string(),
            JsonValue::from(evaluation.total_average_power),
        ),
        (
            "max_temp_c".to_string(),
            JsonValue::from(evaluation.max_temperature_c),
        ),
        (
            "avg_temp_c".to_string(),
            JsonValue::from(evaluation.avg_temperature_c),
        ),
        ("makespan".to_string(), JsonValue::from(evaluation.makespan)),
        (
            "meets_deadline".to_string(),
            JsonValue::from(evaluation.meets_deadline),
        ),
    ])
}

/// Exports a power-aware vs thermal-aware comparison table (paper Tables 2
/// and 3) as a JSON object.
pub fn comparison_to_json(table: &ComparisonTable) -> JsonValue {
    let rows: Vec<JsonValue> = table
        .rows
        .iter()
        .map(|row| {
            JsonValue::object(vec![
                (
                    "benchmark".to_string(),
                    JsonValue::from(row.benchmark.name()),
                ),
                (
                    "power_aware".to_string(),
                    JsonValue::object(vec![
                        (
                            "total_power".to_string(),
                            JsonValue::from(row.power_aware.total_power),
                        ),
                        (
                            "max_temp_c".to_string(),
                            JsonValue::from(row.power_aware.max_temp_c),
                        ),
                        (
                            "avg_temp_c".to_string(),
                            JsonValue::from(row.power_aware.avg_temp_c),
                        ),
                    ]),
                ),
                (
                    "thermal_aware".to_string(),
                    JsonValue::object(vec![
                        (
                            "total_power".to_string(),
                            JsonValue::from(row.thermal_aware.total_power),
                        ),
                        (
                            "max_temp_c".to_string(),
                            JsonValue::from(row.thermal_aware.max_temp_c),
                        ),
                        (
                            "avg_temp_c".to_string(),
                            JsonValue::from(row.thermal_aware.avg_temp_c),
                        ),
                    ]),
                ),
            ])
        })
        .collect();
    JsonValue::object(vec![
        (
            "caption".to_string(),
            JsonValue::from(table.caption.as_str()),
        ),
        (
            "mean_max_temp_reduction_c".to_string(),
            JsonValue::from(table.mean_max_temp_reduction()),
        ),
        (
            "mean_avg_temp_reduction_c".to_string(),
            JsonValue::from(table.mean_avg_temp_reduction()),
        ),
        ("rows".to_string(), JsonValue::Array(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tats_core::{PlatformFlow, Policy};
    use tats_taskgraph::Benchmark;
    use tats_techlib::profiles;

    #[test]
    fn scalar_values_serialise_correctly() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::Number(2.5).to_json(), "2.5");
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::from("hi").to_json(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let value = JsonValue::from("line\n\"quoted\"\\slash");
        assert_eq!(value.to_json(), "\"line\\n\\\"quoted\\\"\\\\slash\"");
        let control = JsonValue::from("\u{1}");
        assert_eq!(control.to_json(), "\"\\u0001\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let value = JsonValue::object(vec![
            (
                "b".to_string(),
                JsonValue::Array(vec![1.0.into(), 2.0.into()]),
            ),
            ("a".to_string(), JsonValue::from(true)),
        ]);
        // Keys are sorted for deterministic output.
        assert_eq!(value.to_json(), "{\"a\":true,\"b\":[1,2]}");
        assert_eq!(value.to_string(), value.to_json());
    }

    #[test]
    fn schedule_export_contains_every_assignment() {
        let library = profiles::standard_library(12).expect("library");
        let graph = Benchmark::Bm1.task_graph().expect("graph");
        let result = PlatformFlow::new(&library)
            .expect("flow")
            .run(&graph, Policy::Baseline)
            .expect("result");
        let json = schedule_to_json(&result.schedule, Some(&graph)).to_json();
        assert!(json.contains("\"assignments\":["));
        assert_eq!(
            json.matches("\"task\":").count(),
            result.schedule.task_count()
        );
        let eval_json = evaluation_to_json(&result.evaluation).to_json();
        assert!(eval_json.contains("max_temp_c"));
    }
}
