//! Streaming JSON-Lines output for batch campaign results.
//!
//! The batch engine completes scenarios out of order and wants each result
//! on disk the moment it exists (so an interrupted run loses nothing and a
//! `--resume` can pick up where it stopped). JSON Lines is the natural
//! format: one self-contained [`JsonValue`] object per line, appendable,
//! mergeable with `cat`.
//!
//! The workspace deliberately carries no JSON *parser*; resuming only needs
//! the numeric `id` field of each line, so [`completed_ids`] recovers those
//! with a targeted scan that is exact for lines produced by
//! [`JsonlWriter`] (keys are emitted sorted and escaped, so the literal
//! `"id":` substring appears exactly once, at the top level).

use std::collections::BTreeSet;
use std::io::{self, BufRead, Write};

use crate::json::JsonValue;

/// Writes one JSON value per line, flushing after every record so results
/// survive an interrupt.
///
/// # Examples
///
/// ```
/// use tats_trace::jsonl::JsonlWriter;
/// use tats_trace::JsonValue;
///
/// let mut out = Vec::new();
/// let mut writer = JsonlWriter::new(&mut out);
/// writer.write(&JsonValue::object(vec![
///     ("id".to_string(), JsonValue::from(3usize)),
/// ])).unwrap();
/// assert_eq!(String::from_utf8(out).unwrap(), "{\"id\":3}\n");
/// ```
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    inner: W,
    records: usize,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps a writer (a file opened in append mode, a `Vec<u8>`, ...).
    pub fn new(inner: W) -> Self {
        JsonlWriter { inner, records: 0 }
    }

    /// Serialises `value` as one line and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, value: &JsonValue) -> io::Result<()> {
        let mut line = value.to_json();
        line.push('\n');
        self.inner.write_all(line.as_bytes())?;
        self.inner.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Returns `true` if a line is a structurally complete JSONL record — it
/// opens and closes an object. A process killed mid-[`JsonlWriter::write`]
/// leaves a partial final line; such a line must be *ignored* by the resume
/// scanner (the scenario simply re-runs), never trusted (its id may have
/// survived while the rest of the record did not) and never treated as an
/// error (a killed worker must leave a resumable file).
pub fn is_complete_record(line: &str) -> bool {
    let trimmed = line.trim();
    trimmed.starts_with('{') && trimmed.ends_with('}')
}

/// Repairs a JSONL file whose final record was truncated by a crash
/// mid-write: drops every byte after the last newline, so subsequent appends
/// start on a fresh line instead of concatenating onto the partial record.
/// Returns the number of bytes dropped (0 for a clean file or a missing
/// one).
///
/// # Errors
///
/// Propagates I/O errors (other than the file not existing).
pub fn truncate_partial_tail(path: &std::path::Path) -> io::Result<u64> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(0);
    }
    let keep = bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |index| index + 1) as u64;
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(keep)?;
    Ok(bytes.len() as u64 - keep)
}

/// Opens `path` for appending as a crash-safe JSONL journal: first repairs a
/// partial trailing record left by a process killed mid-write (see
/// [`truncate_partial_tail`]), then opens the file in append mode (creating
/// it when missing). Returns the writer plus the number of repaired
/// (dropped) bytes. Every [`JsonlWriter::write`] flushes, so the journal is
/// durable line-by-line and the only possible damage from a hard kill is
/// one partial final line — exactly what the repair on the next open fixes.
///
/// # Errors
///
/// Propagates I/O errors from the repair and the open.
pub fn append_repaired(path: &std::path::Path) -> io::Result<(JsonlWriter<std::fs::File>, u64)> {
    let repaired = truncate_partial_tail(path)?;
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    Ok((JsonlWriter::new(file), repaired))
}

/// Extracts the top-level numeric `"id"` field of a JSONL line written by
/// [`JsonlWriter`]. Returns `None` for lines without one (or with a
/// non-numeric id).
pub fn line_id(line: &str) -> Option<u64> {
    let start = line.find("\"id\":")? + "\"id\":".len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

/// Extracts a top-level string field of a JSONL line written by
/// [`JsonlWriter`]. Returns the raw bytes between the quotes, so it is only
/// exact for values that serialise without escapes — which scenario keys
/// (`Bm1/platform/thermal/s0`) satisfy by construction.
pub fn line_str_field<'l>(line: &'l str, field: &str) -> Option<&'l str> {
    let marker = format!("\"{field}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Scans an existing JSONL stream and collects the scenario ids already
/// present — the resume set of a batch campaign. Blank lines, lines without
/// an id and structurally incomplete lines are skipped: a record truncated
/// by a crash mid-write does not count as done even when its `"id"` field
/// happens to have reached the disk, so the scenario re-runs instead of its
/// partial data being trusted.
///
/// # Errors
///
/// Propagates I/O errors from the reader.
pub fn completed_ids(reader: impl BufRead) -> io::Result<BTreeSet<u64>> {
    let mut ids = BTreeSet::new();
    for line in reader.lines() {
        let line = line?;
        if !is_complete_record(&line) {
            continue;
        }
        if let Some(id) = line_id(&line) {
            ids.insert(id);
        }
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, temp: f64) -> JsonValue {
        JsonValue::object(vec![
            ("id".to_string(), JsonValue::from(id)),
            ("max_temp_c".to_string(), JsonValue::from(temp)),
        ])
    }

    #[test]
    fn writer_emits_one_line_per_record() {
        let mut writer = JsonlWriter::new(Vec::new());
        writer.write(&record(0, 81.5)).unwrap();
        writer.write(&record(7, 79.25)).unwrap();
        assert_eq!(writer.records(), 2);
        let text = String::from_utf8(writer.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn completed_ids_round_trips_written_records() {
        let mut writer = JsonlWriter::new(Vec::new());
        for id in [4usize, 0, 9] {
            writer.write(&record(id, 50.0)).unwrap();
        }
        let bytes = writer.into_inner();
        let ids = completed_ids(bytes.as_slice()).unwrap();
        assert_eq!(ids.into_iter().collect::<Vec<_>>(), vec![0, 4, 9]);
    }

    #[test]
    fn malformed_and_blank_lines_are_skipped() {
        let text = "\n{\"id\":3}\n{\"other\":1}\ngarbage\n{\"id\":no}\n{\"id\":12,\"max_temp_c\":4";
        let ids = completed_ids(text.as_bytes()).unwrap();
        // The final line was truncated by a crash mid-write: even though its
        // id survived, the record did not, so it must NOT count as done —
        // the scenario re-runs and the resume set stays sound.
        assert_eq!(ids.into_iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn complete_record_detection() {
        assert!(is_complete_record("{\"id\":3}"));
        assert!(is_complete_record("  {\"id\":3}  "));
        assert!(!is_complete_record("{\"id\":3"));
        assert!(!is_complete_record(""));
        assert!(!is_complete_record("garbage"));
    }

    #[test]
    fn truncate_partial_tail_repairs_crashed_files() {
        let path = std::env::temp_dir().join("tats_trace_truncate_tail_test.jsonl");
        // A clean file is untouched.
        std::fs::write(&path, "{\"id\":0}\n{\"id\":1}\n").unwrap();
        assert_eq!(truncate_partial_tail(&path).unwrap(), 0);
        // A partial trailing record (crash mid-write) is dropped so appends
        // start on a fresh line.
        std::fs::write(&path, "{\"id\":0}\n{\"id\":1}\n{\"id\":2,\"max_t").unwrap();
        assert_eq!(truncate_partial_tail(&path).unwrap(), 14);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"id\":0}\n{\"id\":1}\n"
        );
        // A file that is nothing but a partial record empties out.
        std::fs::write(&path, "{\"id\":7,\"ke").unwrap();
        assert_eq!(truncate_partial_tail(&path).unwrap(), 11);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        // Missing files are fine (first run of a campaign).
        let _ = std::fs::remove_file(&path);
        assert_eq!(truncate_partial_tail(&path).unwrap(), 0);
    }

    #[test]
    fn append_repaired_resumes_a_crashed_journal() {
        let path = std::env::temp_dir().join("tats_trace_append_repaired_test.jsonl");
        let _ = std::fs::remove_file(&path);
        // First open creates the file.
        let (mut writer, repaired) = append_repaired(&path).unwrap();
        assert_eq!(repaired, 0);
        writer.write(&record(0, 50.0)).unwrap();
        drop(writer);
        // Simulate a kill mid-write: a partial record on the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"id\":1,\"max_t");
        std::fs::write(&path, &bytes).unwrap();
        // Reopening repairs the tail and appends on a fresh line.
        let (mut writer, repaired) = append_repaired(&path).unwrap();
        assert_eq!(repaired, 14);
        writer.write(&record(1, 60.0)).unwrap();
        drop(writer);
        let ids = completed_ids(std::fs::read(&path).unwrap().as_slice()).unwrap();
        assert_eq!(ids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn line_id_parses_only_leading_digits() {
        assert_eq!(line_id("{\"id\":42,\"x\":1}"), Some(42));
        assert_eq!(line_id("{\"x\":1}"), None);
        assert_eq!(line_id(""), None);
    }

    #[test]
    fn line_str_field_extracts_plain_string_values() {
        let line = "{\"id\":3,\"key\":\"Bm1/platform/thermal/s0\",\"flow\":\"platform\"}";
        assert_eq!(line_str_field(line, "key"), Some("Bm1/platform/thermal/s0"));
        assert_eq!(line_str_field(line, "flow"), Some("platform"));
        assert_eq!(line_str_field(line, "missing"), None);
        assert_eq!(line_str_field("{\"key\":3}", "key"), None);
    }
}
