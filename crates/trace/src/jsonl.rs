//! Streaming JSON-Lines output for batch campaign results.
//!
//! The batch engine completes scenarios out of order and wants each result
//! on disk the moment it exists (so an interrupted run loses nothing and a
//! `--resume` can pick up where it stopped). JSON Lines is the natural
//! format: one self-contained [`JsonValue`] object per line, appendable,
//! mergeable with `cat`.
//!
//! The workspace deliberately carries no JSON *parser*; resuming only needs
//! the numeric `id` field of each line, so [`completed_ids`] recovers those
//! with a targeted scan that is exact for lines produced by
//! [`JsonlWriter`] (keys are emitted sorted and escaped, so the literal
//! `"id":` substring appears exactly once, at the top level).

use std::collections::BTreeSet;
use std::io::{self, BufRead, Write};

use crate::json::JsonValue;

/// Writes one JSON value per line, flushing after every record so results
/// survive an interrupt.
///
/// # Examples
///
/// ```
/// use tats_trace::jsonl::JsonlWriter;
/// use tats_trace::JsonValue;
///
/// let mut out = Vec::new();
/// let mut writer = JsonlWriter::new(&mut out);
/// writer.write(&JsonValue::object(vec![
///     ("id".to_string(), JsonValue::from(3usize)),
/// ])).unwrap();
/// assert_eq!(String::from_utf8(out).unwrap(), "{\"id\":3}\n");
/// ```
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    inner: W,
    records: usize,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps a writer (a file opened in append mode, a `Vec<u8>`, ...).
    pub fn new(inner: W) -> Self {
        JsonlWriter { inner, records: 0 }
    }

    /// Serialises `value` as one line and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, value: &JsonValue) -> io::Result<()> {
        let mut line = value.to_json();
        line.push('\n');
        self.inner.write_all(line.as_bytes())?;
        self.inner.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Extracts the top-level numeric `"id"` field of a JSONL line written by
/// [`JsonlWriter`]. Returns `None` for lines without one (or with a
/// non-numeric id).
pub fn line_id(line: &str) -> Option<u64> {
    let start = line.find("\"id\":")? + "\"id\":".len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

/// Extracts a top-level string field of a JSONL line written by
/// [`JsonlWriter`]. Returns the raw bytes between the quotes, so it is only
/// exact for values that serialise without escapes — which scenario keys
/// (`Bm1/platform/thermal/s0`) satisfy by construction.
pub fn line_str_field<'l>(line: &'l str, field: &str) -> Option<&'l str> {
    let marker = format!("\"{field}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Scans an existing JSONL stream and collects the scenario ids already
/// present — the resume set of a batch campaign. Blank lines and lines
/// without an id are skipped (a line truncated by a crash simply doesn't
/// count as done).
///
/// # Errors
///
/// Propagates I/O errors from the reader.
pub fn completed_ids(reader: impl BufRead) -> io::Result<BTreeSet<u64>> {
    let mut ids = BTreeSet::new();
    for line in reader.lines() {
        let line = line?;
        if let Some(id) = line_id(&line) {
            ids.insert(id);
        }
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, temp: f64) -> JsonValue {
        JsonValue::object(vec![
            ("id".to_string(), JsonValue::from(id)),
            ("max_temp_c".to_string(), JsonValue::from(temp)),
        ])
    }

    #[test]
    fn writer_emits_one_line_per_record() {
        let mut writer = JsonlWriter::new(Vec::new());
        writer.write(&record(0, 81.5)).unwrap();
        writer.write(&record(7, 79.25)).unwrap();
        assert_eq!(writer.records(), 2);
        let text = String::from_utf8(writer.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn completed_ids_round_trips_written_records() {
        let mut writer = JsonlWriter::new(Vec::new());
        for id in [4usize, 0, 9] {
            writer.write(&record(id, 50.0)).unwrap();
        }
        let bytes = writer.into_inner();
        let ids = completed_ids(bytes.as_slice()).unwrap();
        assert_eq!(ids.into_iter().collect::<Vec<_>>(), vec![0, 4, 9]);
    }

    #[test]
    fn malformed_and_blank_lines_are_skipped() {
        let text = "\n{\"id\":3}\n{\"other\":1}\ngarbage\n{\"id\":no}\n{\"id\":12";
        let ids = completed_ids(text.as_bytes()).unwrap();
        // A truncated final line whose id survived still counts as done; a
        // line cut before the id is simply skipped and its scenario re-runs.
        // Either way the resume set stays sound.
        assert_eq!(ids.into_iter().collect::<Vec<_>>(), vec![3, 12]);
    }

    #[test]
    fn line_id_parses_only_leading_digits() {
        assert_eq!(line_id("{\"id\":42,\"x\":1}"), Some(42));
        assert_eq!(line_id("{\"x\":1}"), None);
        assert_eq!(line_id(""), None);
    }

    #[test]
    fn line_str_field_extracts_plain_string_values() {
        let line = "{\"id\":3,\"key\":\"Bm1/platform/thermal/s0\",\"flow\":\"platform\"}";
        assert_eq!(line_str_field(line, "key"), Some("Bm1/platform/thermal/s0"));
        assert_eq!(line_str_field(line, "flow"), Some("platform"));
        assert_eq!(line_str_field(line, "missing"), None);
        assert_eq!(line_str_field("{\"key\":3}", "key"), None);
    }
}
