//! Reporting and export for thermal-aware schedules.
//!
//! The scheduling, thermal and power crates produce rich result objects;
//! this crate turns them into artefacts a person (or an external tool) can
//! consume:
//!
//! * [`GanttChart`] — ASCII Gantt rendering of a [`tats_core::Schedule`];
//! * [`csv`] — CSV export of schedules, evaluations and thermal traces;
//! * [`json`] — a minimal JSON writer plus exports of schedules and the
//!   paper's comparison tables;
//! * [`jsonl`] — streaming JSON-Lines output (one record per line, flushed
//!   eagerly) used by the batch campaign engine, plus the resume-id scanner;
//! * [`log`] — structured, leveled log events (`TATS_LOG`-style filtering,
//!   sorted-key JSONL schema, a lock-free-on-the-send-path [`log::LogSink`]
//!   and a bounded monotonic-index [`log::LogRing`]) — the third
//!   observability pillar next to [`metrics`] and [`spans`];
//! * [`markdown`] — markdown rendering of the reproduced Tables 1–3;
//! * [`metrics`] — a lock-free-on-the-hot-path metrics registry (counters,
//!   gauges, log-linear latency histograms, scoped spans) with Prometheus
//!   text rendering and snapshot-based cross-worker merging;
//! * [`spans`] — distributed-tracing span events (trace/span/parent ids,
//!   µs intervals, attributes) with deterministic id generation, a buffered
//!   [`spans::SpanSink`], span-forest reconstruction with critical-path
//!   analysis, and Chrome trace-event export.
//!
//! # Examples
//!
//! ```
//! use tats_core::{PlatformFlow, Policy};
//! use tats_taskgraph::Benchmark;
//! use tats_techlib::profiles;
//! use tats_trace::{csv, GanttChart};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let library = profiles::standard_library(12)?;
//! let graph = Benchmark::Bm1.task_graph()?;
//! let result = PlatformFlow::new(&library)?.run(&graph, Policy::ThermalAware)?;
//!
//! let chart = GanttChart::new().render(&result.schedule, Some(&graph))?;
//! let table = csv::schedule_to_csv(&result.schedule, Some(&graph))?;
//! assert!(chart.contains("PE0") && table.contains("task,"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csv;
mod error;
mod gantt;
pub mod json;
pub mod jsonl;
pub mod log;
pub mod markdown;
pub mod metrics;
pub mod spans;

pub use error::TraceError;
pub use gantt::GanttChart;
pub use json::JsonValue;
pub use metrics::{MetricsRegistry, MetricsSnapshot};
