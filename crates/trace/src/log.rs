//! Structured, leveled log events: the third observability pillar of the
//! campaign service, next to [`crate::metrics`] ("how fast on average") and
//! [`crate::spans`] ("where did this job's wall-clock go"). Logs answer
//! "what happened, in order": every noteworthy transition (a lease granted,
//! a retry classified, a scenario failed, a cache entry evicted) becomes a
//! [`LogEvent`] with a level, a target, and — when a span context is active
//! — the campaign trace id, so log lines join against the span stream.
//!
//! # Log schema
//!
//! One JSONL object per event, keys sorted, written through the same
//! crash-repaired [`crate::jsonl`] path as campaign records and spans:
//!
//! | field      | type   | meaning                                              |
//! |------------|--------|------------------------------------------------------|
//! | `ts_us`    | number | event time, µs since the Unix epoch                  |
//! | `level`    | string | `error` \| `warn` \| `info` \| `debug` \| `trace`    |
//! | `target`   | string | subsystem that emitted it (`server`, `registry`, `worker`, `engine`, `cli`) |
//! | `message`  | string | human-readable one-liner                             |
//! | `trace_id` | string | 16-hex-digit campaign trace id, `""` when no span context is active |
//! | `attrs`    | object | string key-value attributes (`job`, `shard`, `worker`, ...) |
//!
//! # Filtering
//!
//! A [`LogFilter`] is parsed from a `TATS_LOG`-style spec: a default level
//! plus per-target overrides, e.g. `info,server=debug` (everything at
//! `info`, the `server` target at `debug`) or `off` (nothing). The filter
//! is checked *before* an event is formatted, so disabled call sites cost
//! one branch and zero allocations.
//!
//! # Hot path
//!
//! [`LogSink::log`] serialises on the caller and enqueues on an unbounded
//! channel — the same lock-free-on-the-send-path shape as
//! [`crate::spans::SpanSink`] — so emitting never touches the output file
//! or any shared buffer; a [`LogDrain`] on the owning thread batches the
//! writes. Servers additionally retain recent lines in a bounded
//! [`LogRing`] whose indices are monotonic, so pagers can resume with
//! `from=k` even after old lines have been overwritten.
//!
//! # Examples
//!
//! ```
//! use tats_trace::log::{log_channel, LogEvent, LogFilter, LogLevel};
//!
//! let filter = LogFilter::parse("info,engine=debug").unwrap();
//! let (sink, mut drain) = log_channel(filter);
//! assert!(sink.enabled(LogLevel::Debug, "engine"));
//! assert!(!sink.enabled(LogLevel::Debug, "server"));
//!
//! let event = LogEvent::new(LogLevel::Info, "engine", "scenario failed")
//!     .at(1_700_000_000_000_000)
//!     .attr("scenario", "17");
//! sink.log(&event);
//! let lines = drain.drain_lines();
//! assert_eq!(LogEvent::parse_line(&lines[0]).unwrap(), event);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::path::Path;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use crate::json::{self, JsonValue};
use crate::jsonl;
use crate::spans::{id_hex, now_us, parse_id, Scan};

/// Event severity, most severe first. The declaration order is the filter
/// order: a level is enabled when it is `<=` the configured maximum, so
/// `Info <= Debug` holds and a `debug` filter passes `info` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// The operation failed and was not recovered.
    Error,
    /// Something unexpected that the system rode out (a retry, a lost lease).
    Warn,
    /// Normal state transitions worth an operator's attention.
    Info,
    /// Detail for debugging a subsystem (cache evictions, poll outcomes).
    Debug,
    /// Very chatty per-item detail.
    Trace,
}

impl LogLevel {
    /// Every level, most severe first.
    pub const ALL: [LogLevel; 5] = [
        LogLevel::Error,
        LogLevel::Warn,
        LogLevel::Info,
        LogLevel::Debug,
        LogLevel::Trace,
    ];

    /// The wire name of the level.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
            LogLevel::Trace => "trace",
        }
    }

    /// Parses a wire name back into a level.
    pub fn parse(text: &str) -> Option<LogLevel> {
        match text {
            "error" => Some(LogLevel::Error),
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            "trace" => Some(LogLevel::Trace),
            _ => None,
        }
    }
}

/// One structured log event. See the module docs for the JSONL schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// Event time, µs since the Unix epoch.
    pub ts_us: u64,
    /// Severity.
    pub level: LogLevel,
    /// Subsystem that emitted the event (`server`, `registry`, `worker`,
    /// `engine`, `cli`, ...). This is what per-target filters match.
    pub target: String,
    /// Human-readable one-liner.
    pub message: String,
    /// Campaign trace id when a span context was active, `None` otherwise.
    pub trace_id: Option<u64>,
    /// String key-value attributes (`job`, `shard`, `worker`, ...).
    pub attrs: BTreeMap<String, String>,
}

impl LogEvent {
    /// Creates an event stamped with the current wall clock and no
    /// attributes (add them via [`LogEvent::attr`]; pin the timestamp via
    /// [`LogEvent::at`] where determinism matters).
    pub fn new(level: LogLevel, target: &str, message: impl Into<String>) -> Self {
        LogEvent {
            ts_us: now_us(),
            level,
            target: target.to_string(),
            message: message.into(),
            trace_id: None,
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style timestamp override: returns the event stamped `ts_us`.
    #[must_use]
    pub fn at(mut self, ts_us: u64) -> Self {
        self.ts_us = ts_us;
        self
    }

    /// Builder-style trace context: returns the event carrying `trace_id`
    /// (zero means "no trace" and clears it).
    #[must_use]
    pub fn trace(mut self, trace_id: u64) -> Self {
        self.trace_id = (trace_id != 0).then_some(trace_id);
        self
    }

    /// Builder-style attribute: returns the event with `key = value` set.
    #[must_use]
    pub fn attr(mut self, key: &str, value: impl Into<String>) -> Self {
        self.attrs.insert(key.to_string(), value.into());
        self
    }

    /// Serialises the event as a [`JsonValue`] object (sorted keys).
    pub fn to_json(&self) -> JsonValue {
        let attrs = self
            .attrs
            .iter()
            .map(|(key, value)| (key.clone(), JsonValue::from(value.as_str())));
        JsonValue::object(vec![
            ("ts_us".to_string(), JsonValue::Number(self.ts_us as f64)),
            ("level".to_string(), JsonValue::from(self.level.as_str())),
            ("target".to_string(), JsonValue::from(self.target.as_str())),
            (
                "message".to_string(),
                JsonValue::from(self.message.as_str()),
            ),
            (
                "trace_id".to_string(),
                JsonValue::from(self.trace_id.map(id_hex).unwrap_or_default().as_str()),
            ),
            ("attrs".to_string(), JsonValue::object(attrs)),
        ])
    }

    /// Serialises the event as one JSONL line (no trailing newline).
    ///
    /// Hand-rolled but byte-identical to `self.to_json().to_json()` (the
    /// sorted-key object form) — this runs on the emitting thread for
    /// every enabled event, where building the [`JsonValue`] tree first
    /// costs ~15 allocations per line.
    pub fn to_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96 + self.message.len() + 24 * self.attrs.len());
        out.push_str("{\"attrs\":{");
        for (index, (key, value)) in self.attrs.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            json::write_json_string(&mut out, key);
            out.push(':');
            json::write_json_string(&mut out, value);
        }
        out.push_str("},\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"message\":");
        json::write_json_string(&mut out, &self.message);
        out.push_str(",\"target\":");
        json::write_json_string(&mut out, &self.target);
        match self.trace_id {
            // Hex ids never need escaping.
            Some(trace) => {
                let _ = write!(out, ",\"trace_id\":\"{trace:016x}\"");
            }
            None => out.push_str(",\"trace_id\":\"\""),
        }
        let _ = write!(out, ",\"ts_us\":{}}}", self.ts_us);
        out
    }

    /// Decodes an event from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the missing or malformed
    /// field, in the style of the other wire decoders.
    pub fn from_json(value: &JsonValue) -> Result<LogEvent, String> {
        let level = LogLevel::parse(value.field_str("level")?)
            .ok_or_else(|| "field 'level' must be error|warn|info|debug|trace".to_string())?;
        let trace_text = value.field_str("trace_id")?;
        let trace_id = if trace_text.is_empty() {
            None
        } else {
            Some(
                parse_id(trace_text)
                    .ok_or_else(|| "field 'trace_id' must be a hex id or empty".to_string())?,
            )
        };
        let mut attrs = BTreeMap::new();
        match value.field("attrs")? {
            JsonValue::Object(map) => {
                for (key, item) in map {
                    let text = item
                        .as_str()
                        .ok_or_else(|| format!("attr '{key}' must be a string"))?;
                    attrs.insert(key.clone(), text.to_string());
                }
            }
            _ => return Err("field 'attrs' must be an object".to_string()),
        }
        Ok(LogEvent {
            ts_us: value.field_u64("ts_us")?,
            level,
            target: value.field_str("target")?.to_string(),
            message: value.field_str("message")?.to_string(),
            trace_id,
            attrs,
        })
    }

    /// Decodes an event from one JSONL line.
    ///
    /// Lines in the exact canonical [`LogEvent::to_line`] layout take a
    /// byte-level fast path; anything else falls back to the full JSON
    /// parser, so arbitrary-JSON log lines still decode.
    ///
    /// # Errors
    ///
    /// As [`LogEvent::from_json`], plus JSON parse failures.
    pub fn parse_line(line: &str) -> Result<LogEvent, String> {
        if let Some(event) = LogEvent::parse_canonical(line) {
            return Ok(event);
        }
        let value = JsonValue::parse(line).map_err(|e| e.to_string())?;
        LogEvent::from_json(&value)
    }

    /// The [`LogEvent::parse_line`] fast path: decodes the exact canonical
    /// layout `to_line` emits (sorted keys, no string escapes). Any
    /// deviation — including semantically invalid events, which the slow
    /// path rejects with a field-naming error — returns `None`.
    fn parse_canonical(line: &str) -> Option<LogEvent> {
        let mut scan = Scan::new(line);
        let mut attrs = BTreeMap::new();
        scan.expect(b"{\"attrs\":{")?;
        if scan.expect(b"}").is_none() {
            loop {
                let key = scan.plain_string()?;
                scan.expect(b":")?;
                let value = scan.plain_string()?;
                attrs.insert(key.to_string(), value.to_string());
                if scan.expect(b",").is_some() {
                    continue;
                }
                scan.expect(b"}")?;
                break;
            }
        }
        scan.expect(b",\"level\":")?;
        let level = LogLevel::parse(scan.plain_string()?)?;
        scan.expect(b",\"message\":")?;
        let message = scan.plain_string()?.to_string();
        scan.expect(b",\"target\":")?;
        let target = scan.plain_string()?.to_string();
        scan.expect(b",\"trace_id\":")?;
        let trace_text = scan.plain_string()?;
        let trace_id = if trace_text.is_empty() {
            None
        } else {
            Some(parse_id(trace_text)?)
        };
        scan.expect(b",\"ts_us\":")?;
        let ts_us = scan.number()?;
        scan.expect(b"}")?;
        if !scan.at_end() {
            return None;
        }
        Some(LogEvent {
            ts_us,
            level,
            target,
            message,
            trace_id,
            attrs,
        })
    }

    /// `true` if a JSONL line looks like a log event (has the level and
    /// target fields), without fully parsing it — how mixed streams are
    /// partitioned.
    pub fn is_log_line(line: &str) -> bool {
        jsonl::line_str_field(line, "level").is_some()
            && jsonl::line_str_field(line, "target").is_some()
    }
}

/// A parsed `TATS_LOG`-style filter: a default maximum level plus
/// per-target overrides. See the module docs for the spec grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogFilter {
    /// `None` means everything is off.
    default_max: Option<LogLevel>,
    overrides: Vec<(String, Option<LogLevel>)>,
}

impl LogFilter {
    /// A filter passing everything at `level` or more severe, all targets.
    pub fn at(level: LogLevel) -> Self {
        LogFilter {
            default_max: Some(level),
            overrides: Vec::new(),
        }
    }

    /// A filter passing nothing.
    pub fn off() -> Self {
        LogFilter {
            default_max: None,
            overrides: Vec::new(),
        }
    }

    /// Parses a spec like `info`, `off`, or `info,server=debug,engine=off`:
    /// comma-separated items, each either a bare level (sets the default)
    /// or `target=level` (overrides one target). Later items win.
    ///
    /// # Errors
    ///
    /// Names the offending item.
    pub fn parse(spec: &str) -> Result<LogFilter, String> {
        let mut filter = LogFilter::at(LogLevel::Info);
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match item.split_once('=') {
                None => filter.default_max = Self::parse_max(item)?,
                Some((target, level)) => {
                    let max = Self::parse_max(level.trim())?;
                    let target = target.trim().to_string();
                    filter.overrides.retain(|(name, _)| *name != target);
                    filter.overrides.push((target, max));
                }
            }
        }
        Ok(filter)
    }

    fn parse_max(text: &str) -> Result<Option<LogLevel>, String> {
        if text == "off" {
            return Ok(None);
        }
        LogLevel::parse(text)
            .map(Some)
            .ok_or_else(|| format!("unknown log level '{text}' (error|warn|info|debug|trace|off)"))
    }

    /// The filter the `TATS_LOG` environment variable configures, `info`
    /// when unset or unparseable (logging must not take down the system).
    pub fn from_env() -> LogFilter {
        std::env::var("TATS_LOG")
            .ok()
            .and_then(|spec| LogFilter::parse(&spec).ok())
            .unwrap_or_else(|| LogFilter::at(LogLevel::Info))
    }

    /// `true` when events at `level` from `target` pass the filter.
    pub fn enabled(&self, level: LogLevel, target: &str) -> bool {
        let max = self
            .overrides
            .iter()
            .find(|(name, _)| name == target)
            .map_or(self.default_max, |(_, max)| *max);
        max.is_some_and(|max| level <= max)
    }
}

/// The recording half of a log stream: cheap, clonable, shareable across
/// threads. [`LogSink::log`] checks the filter, serialises on the caller
/// and enqueues on an unbounded channel (lock-free on the send path), so
/// the hot path never touches the output file; a [`LogDrain`] on the
/// owning thread batches the writes.
#[derive(Debug, Clone)]
pub struct LogSink {
    tx: Sender<String>,
    filter: Arc<LogFilter>,
}

impl LogSink {
    /// `true` when events at `level` from `target` would be recorded —
    /// check this before building an expensive message.
    pub fn enabled(&self, level: LogLevel, target: &str) -> bool {
        self.filter.enabled(level, target)
    }

    /// Records an event if the filter passes it. Never fails: if the drain
    /// is gone the line is dropped (logging must not take down the logged
    /// system).
    pub fn log(&self, event: &LogEvent) {
        if self.enabled(event.level, &event.target) {
            let _ = self.tx.send(event.to_line());
        }
    }

    /// Records a pre-serialised log line verbatim, bypassing the filter
    /// (how regenerated registry lines re-enter a stream without
    /// re-encoding). Structurally incomplete lines are dropped.
    pub fn log_line(&self, line: &str) {
        if jsonl::is_complete_record(line) {
            let _ = self.tx.send(line.trim().to_string());
        }
    }
}

/// The draining half of a log stream: owns the buffered lines and,
/// optionally, the crash-repaired JSONL file they flush to.
#[derive(Debug)]
pub struct LogDrain {
    rx: Receiver<String>,
    out: Option<std::fs::File>,
}

impl LogDrain {
    /// Writes every buffered line to the log file in one batched write
    /// (one flush per call, not per event) and returns how many were
    /// written. A drain with no file just discards the buffer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the log file.
    pub fn flush(&mut self) -> io::Result<usize> {
        let lines = self.drain_lines();
        if lines.is_empty() {
            return Ok(0);
        }
        if let Some(file) = self.out.as_mut() {
            let mut batch = String::new();
            for line in &lines {
                batch.push_str(line);
                batch.push('\n');
            }
            file.write_all(batch.as_bytes())?;
            file.flush()?;
        }
        Ok(lines.len())
    }

    /// Takes every buffered line without writing anywhere — for consumers
    /// that retain lines in a [`LogRing`] or forward them over the wire.
    pub fn drain_lines(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        while let Ok(line) = self.rx.try_recv() {
            lines.push(line);
        }
        lines
    }
}

/// An in-memory log stream: sink plus drain, no file.
pub fn log_channel(filter: LogFilter) -> (LogSink, LogDrain) {
    let (tx, rx) = std::sync::mpsc::channel();
    (
        LogSink {
            tx,
            filter: Arc::new(filter),
        },
        LogDrain { rx, out: None },
    )
}

/// A log stream backed by a crash-repaired JSONL file at `path` (see
/// [`jsonl::append_repaired`]): a partial line left by a kill -9 mid-write
/// is dropped before appending resumes. Returns the sink, the drain and
/// the number of repaired bytes.
///
/// # Errors
///
/// Propagates I/O errors from the repair and the open.
pub fn log_file(path: &Path, filter: LogFilter) -> io::Result<(LogSink, LogDrain, u64)> {
    let (writer, repaired) = jsonl::append_repaired(path)?;
    let (tx, rx) = std::sync::mpsc::channel();
    Ok((
        LogSink {
            tx,
            filter: Arc::new(filter),
        },
        LogDrain {
            rx,
            out: Some(writer.into_inner()),
        },
        repaired,
    ))
}

/// A bounded in-memory buffer of recent log lines with **monotonic**
/// indices: the first line ever pushed is index 0 forever, and when the
/// ring overwrites old lines the oldest retained index moves up instead of
/// wrapping to 0. Pagers asking for an index the ring has already
/// overwritten are served from the oldest retained line, so a slow client
/// loses old lines but never stalls or sees duplicates.
#[derive(Debug)]
pub struct LogRing {
    lines: VecDeque<String>,
    capacity: usize,
    start: usize,
}

impl LogRing {
    /// A ring retaining at most `capacity` lines (at least 1).
    pub fn new(capacity: usize) -> Self {
        LogRing {
            lines: VecDeque::new(),
            capacity: capacity.max(1),
            start: 0,
        }
    }

    /// Appends a line, evicting the oldest when the ring is full.
    pub fn push(&mut self, line: String) {
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
            self.start += 1;
        }
        self.lines.push_back(line);
    }

    /// Appends every line of an iterator.
    pub fn extend(&mut self, lines: impl IntoIterator<Item = String>) {
        for line in lines {
            self.push(line);
        }
    }

    /// The index the *next* pushed line will get — what a pager passes as
    /// `from` to read only lines it has not seen.
    pub fn next_index(&self) -> usize {
        self.start + self.lines.len()
    }

    /// The index of the oldest line still retained (equal to
    /// [`LogRing::next_index`] when empty).
    pub fn oldest_index(&self) -> usize {
        self.start
    }

    /// Number of retained lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when no lines are retained.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The last `count` retained lines, oldest first.
    pub fn tail(&self, count: usize) -> impl Iterator<Item = &str> {
        self.lines
            .iter()
            .skip(self.lines.len().saturating_sub(count))
            .map(String::as_str)
    }

    /// Pages the ring from index `from`: returns the retained lines at
    /// indices `>= from` (each newline-terminated) and the index to pass
    /// as the next `from`. A `from` below the oldest retained index is
    /// served from the oldest retained line (the skipped lines were
    /// overwritten); a `from` beyond the end returns an empty body and the
    /// current end.
    pub fn page(&self, from: usize) -> (String, usize) {
        let next = self.next_index();
        let effective = from.clamp(self.start, next);
        let mut body = String::new();
        for line in self.lines.iter().skip(effective - self.start) {
            body.push_str(line);
            body.push('\n');
        }
        (body, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogEvent {
        LogEvent::new(LogLevel::Warn, "worker", "lease lost")
            .at(1_700_000_000_123_456)
            .trace(0x1234_5678_9abc_def0)
            .attr("job", "j000001")
            .attr("shard", "3")
    }

    #[test]
    fn levels_round_trip_and_order_most_severe_first() {
        for level in LogLevel::ALL {
            assert_eq!(LogLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(LogLevel::parse("fatal"), None);
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert!(LogLevel::Debug < LogLevel::Trace);
    }

    #[test]
    fn filter_parses_default_and_per_target_overrides() {
        let filter = LogFilter::parse("info,server=debug,engine=off").unwrap();
        assert!(filter.enabled(LogLevel::Info, "worker"));
        assert!(!filter.enabled(LogLevel::Debug, "worker"));
        assert!(filter.enabled(LogLevel::Debug, "server"));
        assert!(!filter.enabled(LogLevel::Trace, "server"));
        assert!(!filter.enabled(LogLevel::Error, "engine"));

        assert!(!LogFilter::parse("off")
            .unwrap()
            .enabled(LogLevel::Error, "server"));
        assert!(LogFilter::parse("warn")
            .unwrap()
            .enabled(LogLevel::Error, "anything"));
        assert!(!LogFilter::parse("warn")
            .unwrap()
            .enabled(LogLevel::Info, "anything"));
        // Later items win, whitespace tolerated, empty items skipped.
        let filter = LogFilter::parse(" debug , server = info ,, server = warn ").unwrap();
        assert!(!filter.enabled(LogLevel::Info, "server"));
        assert!(filter.enabled(LogLevel::Debug, "elsewhere"));
        let error = LogFilter::parse("info,server=loud").unwrap_err();
        assert!(error.contains("loud"), "{error}");
    }

    #[test]
    fn event_round_trips_through_jsonl() {
        let event = sample();
        let line = event.to_line();
        assert_eq!(LogEvent::parse_line(&line).unwrap(), event);
        assert!(LogEvent::is_log_line(&line));
        assert!(!LogEvent::is_log_line("{\"id\":3}"));

        // Untraced, attr-free events round-trip too.
        let plain = LogEvent::new(LogLevel::Info, "server", "listening").at(7);
        assert_eq!(LogEvent::parse_line(&plain.to_line()).unwrap(), plain);
    }

    #[test]
    fn hand_rolled_line_matches_the_tree_serializer() {
        let event = sample();
        assert_eq!(event.to_line(), event.to_json().to_json());
        let plain = LogEvent::new(LogLevel::Error, "cli", "boom").at(0);
        assert_eq!(plain.to_line(), plain.to_json().to_json());
        let weird = LogEvent::new(LogLevel::Debug, "tar\"get", "line\nbreak\tand\r\u{1}")
            .at(42)
            .attr("weird\"key\\", "value\u{7f}\u{2028}");
        assert_eq!(weird.to_line(), weird.to_json().to_json());
        assert_eq!(LogEvent::parse_line(&weird.to_line()).unwrap(), weird);
    }

    #[test]
    fn non_canonical_lines_parse_through_the_slow_path() {
        let event = sample();
        // Same object, spaced out: not the canonical layout.
        let spaced = event.to_json().to_json().replace("\":", "\": ");
        assert_ne!(spaced, event.to_line());
        assert_eq!(LogEvent::parse_line(&spaced).unwrap(), event);
    }

    #[test]
    fn malformed_events_are_rejected_with_the_field_named() {
        let error = LogEvent::parse_line("{\"attrs\":{}}").unwrap_err();
        assert!(error.contains("level"), "{error}");
        let line = sample().to_line();
        let error = LogEvent::parse_line(&line.replace("\"warn\"", "\"loud\"")).unwrap_err();
        assert!(error.contains("level"), "{error}");
        let error = LogEvent::parse_line(
            &line.replace("\"trace_id\":\"123456789abcdef0\"", "\"trace_id\":\"zz\""),
        )
        .unwrap_err();
        assert!(error.contains("trace_id"), "{error}");
        let error = LogEvent::parse_line("{not json").unwrap_err();
        assert!(!error.is_empty());
    }

    #[test]
    fn sink_filters_before_formatting_and_flushes_through_the_repaired_log() {
        let path = std::env::temp_dir().join("tats_log_sink_test.jsonl");
        let _ = std::fs::remove_file(&path);
        // A partial line left by a simulated kill -9 mid-write...
        std::fs::write(&path, "{\"attrs\":{},\"level\":\"info\",\"mess").unwrap();
        let (sink, mut drain, repaired) =
            log_file(&path, LogFilter::parse("info,server=debug").unwrap()).unwrap();
        assert!(repaired > 0, "partial tail must be repaired away");

        sink.log(&LogEvent::new(LogLevel::Info, "worker", "kept").at(1));
        sink.log(&LogEvent::new(LogLevel::Debug, "worker", "filtered").at(2));
        sink.log(&LogEvent::new(LogLevel::Debug, "server", "kept by override").at(3));
        assert_eq!(drain.flush().unwrap(), 2);
        assert_eq!(drain.flush().unwrap(), 0);

        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<LogEvent> = text
            .lines()
            .map(|line| LogEvent::parse_line(line).unwrap())
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "kept");
        assert_eq!(events[1].message, "kept by override");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ring_pages_with_monotonic_indices() {
        // Empty ring: any `from` yields an empty body and next index 0.
        let ring = LogRing::new(4);
        assert_eq!(ring.page(0), (String::new(), 0));
        assert_eq!(ring.page(17), (String::new(), 0));
        assert!(ring.is_empty());

        let mut ring = LogRing::new(4);
        for index in 0..3 {
            ring.push(format!("line{index}"));
        }
        let (body, next) = ring.page(0);
        assert_eq!(body, "line0\nline1\nline2\n");
        assert_eq!(next, 3);
        // Incremental paging resumes where the last page ended.
        ring.push("line3".to_string());
        let (body, next) = ring.page(next);
        assert_eq!(body, "line3\n");
        assert_eq!(next, 4);
        // `from` beyond the end: empty page, index unchanged.
        assert_eq!(ring.page(99), (String::new(), 4));

        // Wrap-around overwrite: capacity 4, pushing 4..=9 evicts 0..=5.
        for index in 4..10 {
            ring.push(format!("line{index}"));
        }
        assert_eq!(ring.oldest_index(), 6);
        assert_eq!(ring.next_index(), 10);
        // A `from` below the oldest retained index is served from the
        // oldest retained line — old lines are gone, not re-numbered.
        let (body, next) = ring.page(2);
        assert_eq!(body, "line6\nline7\nline8\nline9\n");
        assert_eq!(next, 10);
        let tail: Vec<&str> = ring.tail(2).collect();
        assert_eq!(tail, ["line8", "line9"]);
    }
}
