//! Markdown rendering of the paper's experiment tables.
//!
//! The benches and the CLI print the reproduced tables; rendering them as
//! GitHub-flavoured markdown makes them easy to paste into EXPERIMENTS.md
//! and into issue discussions.

use tats_core::experiment::{ComparisonTable, Table1};

/// Renders a generic markdown table.
///
/// Every row is padded or truncated to the header width so the output is
/// always well-formed.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let width = headers.len();
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(width)));
    for row in rows {
        let mut cells: Vec<String> = row.iter().take(width).cloned().collect();
        while cells.len() < width {
            cells.push(String::new());
        }
        out.push_str(&format!("| {} |\n", cells.join(" | ")));
    }
    out
}

/// Renders the reproduction of the paper's Table 1 (power-heuristic
/// comparison on co-synthesis and platform architectures).
pub fn table1_to_markdown(table: &Table1) -> String {
    let headers = [
        "benchmark",
        "policy",
        "co-syn total pow.",
        "co-syn max temp",
        "co-syn avg temp",
        "platform total pow.",
        "platform max temp",
        "platform avg temp",
    ];
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|row| {
            vec![
                row.benchmark.name().to_string(),
                row.policy.label(),
                format!("{:.2}", row.cosynthesis.total_power),
                format!("{:.2}", row.cosynthesis.max_temp_c),
                format!("{:.2}", row.cosynthesis.avg_temp_c),
                format!("{:.2}", row.platform.total_power),
                format!("{:.2}", row.platform.max_temp_c),
                format!("{:.2}", row.platform.avg_temp_c),
            ]
        })
        .collect();
    markdown_table(&headers, &rows)
}

/// Renders a power-aware vs thermal-aware comparison (paper Tables 2 / 3),
/// ending with the mean temperature reductions the paper quotes in the text.
pub fn comparison_to_markdown(table: &ComparisonTable) -> String {
    let headers = [
        "benchmark",
        "power total pow.",
        "power max temp",
        "power avg temp",
        "thermal total pow.",
        "thermal max temp",
        "thermal avg temp",
    ];
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|row| {
            vec![
                row.benchmark.name().to_string(),
                format!("{:.2}", row.power_aware.total_power),
                format!("{:.2}", row.power_aware.max_temp_c),
                format!("{:.2}", row.power_aware.avg_temp_c),
                format!("{:.2}", row.thermal_aware.total_power),
                format!("{:.2}", row.thermal_aware.max_temp_c),
                format!("{:.2}", row.thermal_aware.avg_temp_c),
            ]
        })
        .collect();
    let mut out = format!("**{}**\n\n", table.caption);
    out.push_str(&markdown_table(&headers, &rows));
    out.push_str(&format!(
        "\nMean reduction: {:.2} °C (max), {:.2} °C (avg)\n",
        table.mean_max_temp_reduction(),
        table.mean_avg_temp_reduction()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_table_pads_and_truncates_rows() {
        let text = markdown_table(
            &["a", "b"],
            &[
                vec!["1".into()],
                vec!["2".into(), "3".into(), "ignored".into()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 |  |");
        assert_eq!(lines[3], "| 2 | 3 |");
    }

    #[test]
    fn header_and_separator_have_matching_columns() {
        let text = markdown_table(&["x", "y", "z"], &[]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0].matches('|').count(), 4);
        assert_eq!(lines[1].matches('|').count(), 4);
    }
}
