//! A sharded, lock-free-on-the-hot-path metrics registry.
//!
//! The campaign service and the batch engine need live visibility — p99
//! request latency, fleet-wide cache hit rate, per-phase scenario timing —
//! without perturbing the numbers they measure. This module provides the
//! three classic primitives with allocation-free, atomic record paths:
//!
//! * [`Counter`] — a monotonically increasing `u64`;
//! * [`Gauge`] — a last-write-wins `u64` (replay stats, queue depths);
//! * [`Histogram`] — a log-linear latency histogram with an allocation-free
//!   `record`, p50/p90/p99/max readout and bucket-wise merge, mirroring how
//!   `tats_core::CacheStats` already merges across executor workers;
//!
//! plus a scoped [`Span`] timer that records into a histogram on drop.
//!
//! # Sharding model
//!
//! Registration takes a write lock once per series; the handles returned are
//! `Arc`s whose record path is pure relaxed atomics, so concurrent recording
//! never blocks. Cross-process aggregation is snapshot-based: every worker
//! owns its own registry shard and ships a [`MetricsSnapshot`] (JSON, same
//! conventions as the journal) to the server, which merges the shards at
//! scrape time. Merging is associative, so it does not matter in which order
//! shards arrive.
//!
//! # Units
//!
//! Histograms store raw `u64` values; every duration helper records
//! **microseconds**. The Prometheus renderer converts histogram buckets and
//! sums to seconds, matching the `*_seconds` naming convention.
//!
//! # Examples
//!
//! ```
//! use tats_trace::metrics::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter("http_requests_total", &[("endpoint", "GET /healthz")]);
//! let latency = registry.histogram("http_request_seconds", &[("endpoint", "GET /healthz")]);
//! requests.inc();
//! {
//!     let _span = latency.span(); // records elapsed µs on drop
//! }
//! let text = registry.render_prometheus();
//! assert!(text.contains("# TYPE http_requests_total counter"));
//! assert!(text.contains("http_request_seconds_count{endpoint=\"GET /healthz\"} 1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::json::JsonValue;

/// Exact buckets below this value; also the number of sub-buckets per octave.
const LINEAR_CUTOFF: u64 = 16;
/// Total bucket count: 16 exact buckets plus 60 octaves × 16 sub-buckets.
const BUCKETS: usize = 976;

/// Maps a value to its log-linear bucket index.
///
/// Values below [`LINEAR_CUTOFF`] get exact buckets; above it each power-of-two
/// octave is split into 16 sub-buckets, bounding the relative quantisation
/// error at 1/16 (6.25%) while covering the full `u64` range in 976 buckets.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_CUTOFF {
        value as usize
    } else {
        let msb = 63 - u64::from(value.leading_zeros());
        let octave = msb - 3;
        let sub = (value >> (msb - 4)) & (LINEAR_CUTOFF - 1);
        (octave * LINEAR_CUTOFF + sub) as usize
    }
}

/// The smallest value that lands in bucket `index`.
fn bucket_low(index: usize) -> u64 {
    if index < LINEAR_CUTOFF as usize {
        index as u64
    } else {
        let octave = (index as u64) / LINEAR_CUTOFF;
        let sub = (index as u64) % LINEAR_CUTOFF;
        (LINEAR_CUTOFF + sub) << (octave - 1)
    }
}

/// The largest value that lands in bucket `index`.
fn bucket_high(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

/// A monotonically increasing counter. Recording is a relaxed atomic add.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `delta` (saturating).
    pub fn add(&self, delta: u64) {
        // fetch_add wraps on overflow; values here are event counts that
        // cannot realistically reach 2^64, so wrapping is acceptable.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge. Recording is a relaxed atomic store.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-linear histogram of `u64` values with an allocation-free record path.
///
/// Buckets are exact below 16 and split each power-of-two octave into 16
/// sub-buckets above it, so quantile readouts carry at most 6.25% relative
/// error. All mutation is relaxed atomics; snapshots are taken bucket by
/// bucket and merged bucket-wise, exactly like `CacheStats::merge` folds
/// per-worker cache counters.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("max", &self.max())
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Three relaxed atomic ops plus an atomic max —
    /// no locks, no allocation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_micros()).unwrap_or(u64::MAX));
    }

    /// Starts a scoped timer that records the elapsed microseconds into this
    /// histogram when dropped.
    pub fn span(&self) -> Span<'_> {
        Span {
            histogram: self,
            start: Instant::now(),
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of recorded values, as the upper
    /// bound of the bucket holding the target rank, capped at the recorded
    /// maximum. Returns 0 when empty. `quantile(0.5)` is the median; with one
    /// sample every quantile is that sample (exactly, below 16; within 6.25%
    /// above).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(bucket.load(Ordering::Relaxed));
            if seen >= target {
                return bucket_high(index).min(self.max());
            }
        }
        self.max()
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then_some((index as u32, count))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets,
        }
    }
}

/// A scoped timer: created by [`Histogram::span`], records the elapsed
/// microseconds into the histogram when dropped.
#[derive(Debug)]
pub struct Span<'h> {
    histogram: &'h Histogram,
    start: Instant,
}

impl Span<'_> {
    /// Elapsed time so far (the span keeps running).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

/// A metric series identity: name plus ordered label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One shard of the metrics plane: a registry of named series.
///
/// Registration (the `counter`/`gauge`/`histogram` getters) takes a lock;
/// callers cache the returned `Arc` handles so the hot path is pure atomics.
/// [`MetricsRegistry::snapshot`] freezes the shard for merging or rendering.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: RwLock<BTreeMap<SeriesKey, Handle>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        SeriesKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Returns the counter for `name`+`labels`, registering it on first use.
    ///
    /// If the series is already registered as a different kind the existing
    /// registration wins and a detached (unexported) handle is returned.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = Self::key(name, labels);
        let mut series = self.series.write().expect("metrics lock poisoned");
        match series
            .entry(key)
            .or_insert_with(|| Handle::Counter(Arc::new(Counter::new())))
        {
            Handle::Counter(counter) => Arc::clone(counter),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Returns the gauge for `name`+`labels`, registering it on first use.
    ///
    /// Kind conflicts behave as in [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = Self::key(name, labels);
        let mut series = self.series.write().expect("metrics lock poisoned");
        match series
            .entry(key)
            .or_insert_with(|| Handle::Gauge(Arc::new(Gauge::new())))
        {
            Handle::Gauge(gauge) => Arc::clone(gauge),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Returns the histogram for `name`+`labels`, registering it on first use.
    ///
    /// Kind conflicts behave as in [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = Self::key(name, labels);
        let mut series = self.series.write().expect("metrics lock poisoned");
        match series
            .entry(key)
            .or_insert_with(|| Handle::Histogram(Arc::new(Histogram::new())))
        {
            Handle::Histogram(histogram) => Arc::clone(histogram),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Freezes the registry into a mergeable, serialisable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let series = self.series.read().expect("metrics lock poisoned");
        MetricsSnapshot {
            series: series
                .iter()
                .map(|(key, handle)| {
                    let value = match handle {
                        Handle::Counter(counter) => MetricValue::Counter(counter.value()),
                        Handle::Gauge(gauge) => MetricValue::Gauge(gauge.value()),
                        Handle::Histogram(histogram) => {
                            MetricValue::Histogram(histogram.snapshot())
                        }
                    };
                    (key.clone(), value)
                })
                .collect(),
        }
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// A frozen histogram: total count/sum/max plus the non-empty buckets as
/// `(index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    max: u64,
    buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of the frozen distribution — the
    /// same bucket-upper-bound estimate as [`Histogram::quantile`], so a
    /// snapshot (or a merge of worker snapshots) answers the question the
    /// live histogram would. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // Buckets are kept index-sorted by construction; sort a copy anyway
        // so a hand-built or deserialised snapshot cannot break the walk.
        let mut buckets = self.buckets.clone();
        buckets.sort_unstable();
        let mut seen = 0u64;
        for (index, count) in buckets {
            seen = seen.saturating_add(count);
            if seen >= target {
                return bucket_high(index as usize).min(self.max);
            }
        }
        self.max
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(index, count) in &other.buckets {
            *merged.entry(index).or_insert(0) += count;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// Count of values strictly below `bound`.
    fn below(&self, bound: u64) -> u64 {
        self.buckets
            .iter()
            .filter(|&&(index, _)| bucket_high(index as usize) < bound)
            .map(|&(_, count)| count)
            .sum()
    }
}

/// A frozen metric value of any kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A histogram reading.
    Histogram(HistogramSnapshot),
}

/// A frozen view of one or more registry shards, mergeable and serialisable.
///
/// The JSON encoding is the wire format workers use to ship their shard to
/// the server (inside the lease request body) and the file format nothing
/// else: the same value round-trips through [`MetricsSnapshot::to_json`] /
/// [`MetricsSnapshot::from_json`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    series: BTreeMap<SeriesKey, MetricValue>,
}

impl MetricsSnapshot {
    /// True when the snapshot holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Looks up a counter value by name and labels.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.series.get(&MetricsRegistry::key(name, labels))? {
            MetricValue::Counter(value) => Some(*value),
            _ => None,
        }
    }

    /// Looks up a gauge value by name and labels.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.series.get(&MetricsRegistry::key(name, labels))? {
            MetricValue::Gauge(value) => Some(*value),
            _ => None,
        }
    }

    /// Looks up a histogram by name and labels.
    pub fn histogram_value(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        match self.series.get(&MetricsRegistry::key(name, labels))? {
            MetricValue::Histogram(histogram) => Some(histogram),
            _ => None,
        }
    }

    /// Returns the snapshot with `(key, value)` appended to every series'
    /// labels — how the server tags each worker shard before merging.
    #[must_use]
    pub fn with_label(self, key: &str, value: &str) -> Self {
        Self {
            series: self
                .series
                .into_iter()
                .map(|(mut series_key, metric)| {
                    series_key.labels.push((key.to_string(), value.to_string()));
                    (series_key, metric)
                })
                .collect(),
        }
    }

    /// Merges another shard into this one: counters and histogram buckets
    /// add, gauges take the other side's value. Associative and commutative
    /// for counters and histograms, so shard arrival order does not matter.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (key, value) in &other.series {
            match (self.series.get_mut(key), value) {
                (Some(MetricValue::Counter(mine)), MetricValue::Counter(theirs)) => {
                    *mine += theirs;
                }
                (Some(MetricValue::Gauge(mine)), MetricValue::Gauge(theirs)) => {
                    *mine = *theirs;
                }
                (Some(MetricValue::Histogram(mine)), MetricValue::Histogram(theirs)) => {
                    mine.merge(theirs);
                }
                _ => {
                    self.series.insert(key.clone(), value.clone());
                }
            }
        }
    }

    /// Serialises the snapshot as JSON (the worker→server wire format).
    pub fn to_json(&self) -> JsonValue {
        let series = self
            .series
            .iter()
            .map(|(key, value)| {
                let mut fields = BTreeMap::new();
                fields.insert("name".to_string(), JsonValue::String(key.name.clone()));
                if !key.labels.is_empty() {
                    fields.insert(
                        "labels".to_string(),
                        JsonValue::Array(
                            key.labels
                                .iter()
                                .map(|(k, v)| {
                                    JsonValue::Array(vec![
                                        JsonValue::String(k.clone()),
                                        JsonValue::String(v.clone()),
                                    ])
                                })
                                .collect(),
                        ),
                    );
                }
                match value {
                    MetricValue::Counter(count) => {
                        fields.insert("type".to_string(), JsonValue::String("counter".into()));
                        fields.insert("value".to_string(), json_u64(*count));
                    }
                    MetricValue::Gauge(level) => {
                        fields.insert("type".to_string(), JsonValue::String("gauge".into()));
                        fields.insert("value".to_string(), json_u64(*level));
                    }
                    MetricValue::Histogram(histogram) => {
                        fields.insert("type".to_string(), JsonValue::String("histogram".into()));
                        fields.insert("count".to_string(), json_u64(histogram.count));
                        fields.insert("sum".to_string(), json_u64(histogram.sum));
                        fields.insert("max".to_string(), json_u64(histogram.max));
                        fields.insert(
                            "buckets".to_string(),
                            JsonValue::Array(
                                histogram
                                    .buckets
                                    .iter()
                                    .map(|&(index, count)| {
                                        JsonValue::Array(vec![
                                            json_u64(u64::from(index)),
                                            json_u64(count),
                                        ])
                                    })
                                    .collect(),
                            ),
                        );
                    }
                }
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::object([("series".to_string(), JsonValue::Array(series))])
    }

    /// Deserialises a snapshot produced by [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let mut series = BTreeMap::new();
        for entry in value.field_array("series")? {
            let name = entry.field_str("name")?.to_string();
            let mut labels = Vec::new();
            if let Some(pairs) = entry.get("labels").and_then(JsonValue::as_array) {
                for pair in pairs {
                    let pair = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or("label pair must be a two-element array")?;
                    let key = pair[0].as_str().ok_or("label key must be a string")?;
                    let value = pair[1].as_str().ok_or("label value must be a string")?;
                    labels.push((key.to_string(), value.to_string()));
                }
            }
            let metric = match entry.field_str("type")? {
                "counter" => MetricValue::Counter(entry.field_u64("value")?),
                "gauge" => MetricValue::Gauge(entry.field_u64("value")?),
                "histogram" => {
                    let mut buckets = Vec::new();
                    for pair in entry.field_array("buckets")? {
                        let pair = pair
                            .as_array()
                            .filter(|p| p.len() == 2)
                            .ok_or("bucket must be a two-element array")?;
                        let index = pair[0].as_u64().ok_or("bucket index must be a number")?;
                        let count = pair[1].as_u64().ok_or("bucket count must be a number")?;
                        let index =
                            u32::try_from(index).map_err(|_| "bucket index out of range")?;
                        if (index as usize) >= BUCKETS {
                            return Err(format!("bucket index {index} out of range"));
                        }
                        buckets.push((index, count));
                    }
                    buckets.sort_unstable();
                    MetricValue::Histogram(HistogramSnapshot {
                        count: entry.field_u64("count")?,
                        sum: entry.field_u64("sum")?,
                        max: entry.field_u64("max")?,
                        buckets,
                    })
                }
                other => return Err(format!("unknown metric type {other:?}")),
            };
            series.insert(SeriesKey { name, labels }, metric);
        }
        Ok(Self { series })
    }

    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Series sharing a name are grouped under one `# TYPE` header (the
    /// `BTreeMap` key order is name-major, so grouping falls out of
    /// iteration). Histograms are exposed with power-of-four `le` bounds in
    /// seconds; `le` counts are cumulative counts of values strictly below
    /// the bound (values are integer microseconds, so at most the samples
    /// exactly on a bound are attributed one bucket up).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, value) in &self.series {
            if last_name != Some(key.name.as_str()) {
                let kind = match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", key.name, kind));
                last_name = Some(key.name.as_str());
            }
            match value {
                MetricValue::Counter(count) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        count
                    ));
                }
                MetricValue::Gauge(level) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        level
                    ));
                }
                MetricValue::Histogram(histogram) => {
                    let mut bound_us = 1u64;
                    #[allow(clippy::cast_precision_loss)]
                    for _ in 0..14 {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            key.name,
                            render_labels(&key.labels, Some(&format_seconds(bound_us))),
                            histogram.below(bound_us)
                        ));
                        bound_us = bound_us.saturating_mul(4);
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        key.name,
                        render_labels(&key.labels, Some("+Inf")),
                        histogram.count
                    ));
                    #[allow(clippy::cast_precision_loss)]
                    let sum_seconds = histogram.sum as f64 / 1e6;
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        sum_seconds
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        histogram.count
                    ));
                }
            }
        }
        out
    }
}

fn json_u64(value: u64) -> JsonValue {
    #[allow(clippy::cast_precision_loss)]
    JsonValue::Number(value as f64)
}

/// Formats a microsecond bound as seconds for a `le` label.
fn format_seconds(micros: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let seconds = micros as f64 / 1e6;
    format!("{seconds}")
}

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double quote and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders a `{k="v",...}` label block, optionally with a trailing `le`.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    if let Some(bound) = le {
        parts.push(format!("le=\"{bound}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_the_linear_cutoff() {
        for value in 0..LINEAR_CUTOFF {
            let index = bucket_index(value);
            assert_eq!(bucket_low(index), value);
            assert_eq!(bucket_high(index), value);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_consistent_with_bounds() {
        let probes: Vec<u64> = (0..64)
            .flat_map(|shift: u32| {
                let base = 1u64 << shift;
                [base.saturating_sub(1), base, base.saturating_add(1)]
            })
            .chain([15, 16, 17, 31, 32, 33, 1000, 123_456_789, u64::MAX])
            .collect();
        let mut last_index = 0;
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for value in sorted {
            let index = bucket_index(value);
            assert!(index >= last_index, "index not monotone at {value}");
            assert!(bucket_low(index) <= value && value <= bucket_high(index));
            last_index = index;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_bucket_error_is_bounded() {
        for value in [100u64, 1_000, 65_537, 1 << 40, (1 << 50) + 12345] {
            let index = bucket_index(value);
            let width = bucket_high(index) - bucket_low(index) + 1;
            #[allow(clippy::cast_precision_loss)]
            let relative = width as f64 / value as f64;
            assert!(relative <= 1.0 / 16.0 + 1e-9, "error {relative} at {value}");
        }
    }

    #[test]
    fn empty_histogram_reads_zero_everywhere() {
        let histogram = Histogram::new();
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.quantile(0.5), 0);
        assert_eq!(histogram.quantile(0.99), 0);
        assert_eq!(histogram.max(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let histogram = Histogram::new();
        histogram.record(7);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(histogram.quantile(q), 7);
        }
        assert_eq!(histogram.max(), 7);
        assert_eq!(histogram.sum(), 7);
    }

    #[test]
    fn saturating_max_sample_is_representable() {
        let histogram = Histogram::new();
        histogram.record(u64::MAX);
        assert_eq!(histogram.max(), u64::MAX);
        assert_eq!(histogram.quantile(1.0), u64::MAX);
        assert_eq!(histogram.count(), 1);
    }

    #[test]
    fn quantiles_track_a_uniform_population() {
        let histogram = Histogram::new();
        for value in 1..=1000u64 {
            histogram.record(value);
        }
        let p50 = histogram.quantile(0.5);
        let p99 = histogram.quantile(0.99);
        #[allow(clippy::cast_precision_loss)]
        {
            assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.08, "p50 {p50}");
            assert!((p99 as f64 - 990.0).abs() / 990.0 < 0.08, "p99 {p99}");
        }
        assert_eq!(histogram.quantile(1.0), 1000);
    }

    #[test]
    fn counter_merge_is_associative() {
        let shard = |value: u64| {
            let registry = MetricsRegistry::new();
            registry.counter("events_total", &[]).add(value);
            registry.snapshot()
        };
        let (a, b, c) = (shard(3), shard(5), shard(9));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.counter_value("events_total", &[]), Some(17));
    }

    #[test]
    fn histogram_merge_matches_recording_into_one() {
        let record = |values: &[u64]| {
            let registry = MetricsRegistry::new();
            let histogram = registry.histogram("latency_seconds", &[]);
            for &value in values {
                histogram.record(value);
            }
            registry.snapshot()
        };
        let mut merged = record(&[1, 50, 3000]);
        merged.merge(&record(&[2, 70, 9000, 100_000]));
        let combined = record(&[1, 50, 3000, 2, 70, 9000, 100_000]);
        assert_eq!(merged, combined);
        let histogram = merged.histogram_value("latency_seconds", &[]).unwrap();
        assert_eq!(histogram.count(), 7);
        assert_eq!(histogram.max(), 100_000);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = MetricsRegistry::new();
        registry
            .counter("requests_total", &[("endpoint", "GET /jobs")])
            .add(12);
        registry.gauge("replayed_events", &[]).set(42);
        let histogram = registry.histogram("request_seconds", &[("endpoint", "GET /jobs")]);
        histogram.record(150);
        histogram.record(95_000);
        let snapshot = registry.snapshot();
        let json = snapshot.to_json().to_json();
        let parsed = MetricsSnapshot::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, snapshot);
    }

    #[test]
    fn prometheus_escaping_covers_backslash_quote_newline() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("line1\nline2"), "line1\\nline2");
        let registry = MetricsRegistry::new();
        registry
            .counter("odd_total", &[("path", "a\\b\"c\nd")])
            .inc();
        let text = registry.render_prometheus();
        assert!(
            text.contains("odd_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "{text}"
        );
    }

    /// Hostile label values must survive the full cross-worker path — the
    /// worker's snapshot, its JSON wire round-trip, the server-side merge —
    /// and still render escaped. Escaping only at render time means the
    /// wire format must carry the *raw* value exactly once.
    #[test]
    fn prometheus_escaping_survives_the_snapshot_merge_round_trip() {
        let hostile = "a\\b\"c\nd";
        let worker = MetricsRegistry::new();
        worker.counter("odd_total", &[("path", hostile)]).add(2);
        let wire = worker.snapshot().to_json().to_json();
        let shipped = MetricsSnapshot::from_json(&JsonValue::parse(&wire).expect("wire json"))
            .expect("snapshot parses");

        let mut merged = MetricsRegistry::new().snapshot();
        merged.merge(&shipped);
        merged.merge(&shipped);
        let text = merged.render_prometheus();
        assert!(
            text.contains("odd_total{path=\"a\\\\b\\\"c\\nd\"} 4"),
            "escapes intact and counts summed after a double merge: {text}"
        );
        // The raw value was never double-escaped on the wire.
        assert_eq!(
            escape_label(&escape_label(hostile)),
            "a\\\\\\\\b\\\\\\\"c\\\\nd",
            "double-escaping is distinguishable, so the render above proves single"
        );
    }

    #[test]
    fn prometheus_rendering_groups_series_and_is_cumulative() {
        let registry = MetricsRegistry::new();
        registry.counter("hits_total", &[("worker", "w1")]).add(2);
        registry.counter("hits_total", &[("worker", "w2")]).add(3);
        let histogram = registry.histogram("wait_seconds", &[]);
        histogram.record(2); // 2 µs
        histogram.record(500); // 0.5 ms
        let text = registry.render_prometheus();
        assert_eq!(text.matches("# TYPE hits_total counter").count(), 1);
        assert!(text.contains("hits_total{worker=\"w1\"} 2"));
        assert!(text.contains("hits_total{worker=\"w2\"} 3"));
        assert!(
            text.contains("wait_seconds_bucket{le=\"0.000004\"} 1"),
            "{text}"
        );
        assert!(text.contains("wait_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("wait_seconds_count 2"));
    }

    #[test]
    fn span_records_into_the_histogram_on_drop() {
        let histogram = Histogram::new();
        {
            let span = histogram.span();
            assert!(span.elapsed().as_secs() < 1);
        }
        assert_eq!(histogram.count(), 1);
    }

    #[test]
    fn kind_conflicts_return_detached_handles() {
        let registry = MetricsRegistry::new();
        registry.counter("thing", &[]).add(4);
        let detached = registry.gauge("thing", &[]);
        detached.set(99);
        assert_eq!(registry.snapshot().counter_value("thing", &[]), Some(4));
    }

    #[test]
    fn with_label_tags_every_series() {
        let registry = MetricsRegistry::new();
        registry.counter("records_total", &[]).add(8);
        let tagged = registry.snapshot().with_label("worker", "w1");
        assert_eq!(
            tagged.counter_value("records_total", &[("worker", "w1")]),
            Some(8)
        );
    }
}
