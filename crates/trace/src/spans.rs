//! Structured span events: the distributed-tracing layer of the campaign
//! service.
//!
//! Where [`crate::metrics`] answers "how many / how fast on average", spans
//! answer "where did *this* job's wall-clock go": every interesting interval
//! (an HTTP request, a registry transition, a leased shard, one scenario,
//! one flow phase) becomes a [`SpanEvent`] with a trace id shared by the
//! whole campaign, a parent link, and microsecond start/end timestamps.
//! Reassembled into a [`SpanForest`], the events yield the campaign
//! critical path, per-phase breakdowns and a Chrome trace-event timeline
//! ([`chrome_trace`]) loadable in `chrome://tracing` / Perfetto.
//!
//! # Span schema
//!
//! One JSONL object per span, keys sorted, written through the same
//! crash-repaired [`crate::jsonl`] path as campaign records:
//!
//! | field       | type   | meaning                                             |
//! |-------------|--------|-----------------------------------------------------|
//! | `trace_id`  | string | 16-hex-digit campaign trace id, shared end-to-end   |
//! | `span_id`   | string | 16-hex-digit unique span id (never zero)            |
//! | `parent_id` | string | parent span id, `""` for a root span                |
//! | `name`      | string | what the interval is (`submit`, `lease`, `scenario`, `thermal`, ...) |
//! | `kind`      | string | `client` \| `server` \| `worker` \| `internal`      |
//! | `start_us`  | number | start, µs since the Unix epoch                      |
//! | `end_us`    | number | end, µs since the Unix epoch (`>= start_us`)        |
//! | `attrs`     | object | string key-value attributes (`benchmark`, `policy`, `shard`, `worker`, ...) |
//!
//! # Determinism
//!
//! Ids come from [`SpanIdGen`], a seeded splitmix64 sequence (the same
//! mixer the service uses for retry jitter), or from the stateless
//! [`SpanIdGen::derive`] for ids that must not depend on thread
//! interleaving (a scenario's span id is derived from the trace id and the
//! scenario id, so a re-run after a crash reproduces it exactly). Tests pin
//! exact trace trees by seeding the generator.
//!
//! # Examples
//!
//! ```
//! use tats_trace::spans::{SpanEvent, SpanForest, SpanIdGen, SpanKind};
//!
//! let mut ids = SpanIdGen::seeded(7);
//! let trace = ids.next_id();
//! let root = SpanEvent::new(trace, ids.next_id(), None, "submit", SpanKind::Server, 0, 50);
//! let child = SpanEvent::new(trace, ids.next_id(), Some(root.span_id), "lease", SpanKind::Server, 10, 40);
//! let line = child.to_line();
//! assert_eq!(SpanEvent::parse_line(&line).unwrap(), child);
//!
//! let forest = SpanForest::build(vec![root, child]);
//! assert_eq!(forest.wall_us(), 50);
//! assert_eq!(forest.critical_path().len(), 2);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};
use std::path::Path;
use std::sync::mpsc::{Receiver, Sender};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{self, JsonValue};
use crate::jsonl;

/// Who measured the interval: which side of the wire the span lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// The submitting client (`tats submit`).
    Client,
    /// The campaign server (request handling, registry transitions).
    Server,
    /// A fleet worker (shard, scenario and phase spans).
    Worker,
    /// Library-internal work not attributable to a wire side.
    Internal,
}

impl SpanKind {
    /// The wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Client => "client",
            SpanKind::Server => "server",
            SpanKind::Worker => "worker",
            SpanKind::Internal => "internal",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(text: &str) -> Option<SpanKind> {
        match text {
            "client" => Some(SpanKind::Client),
            "server" => Some(SpanKind::Server),
            "worker" => Some(SpanKind::Worker),
            "internal" => Some(SpanKind::Internal),
            _ => None,
        }
    }
}

/// Formats a span or trace id as the 16-hex-digit wire string.
pub fn id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a 16-hex-digit wire id. Returns `None` for the empty string
/// (the "no parent" marker), zero, or malformed input.
pub fn parse_id(text: &str) -> Option<u64> {
    if text.is_empty() || text.len() > 16 {
        return None;
    }
    match u64::from_str_radix(text, 16) {
        Ok(0) => None,
        Ok(id) => Some(id),
        Err(_) => None,
    }
}

/// Microseconds since the Unix epoch right now — the clock every span in
/// the workspace stamps its start/end with.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|elapsed| elapsed.as_micros() as u64)
        .unwrap_or(0)
}

/// One completed interval of a distributed trace. See the module docs for
/// the JSONL schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Campaign-wide trace id (never zero).
    pub trace_id: u64,
    /// Unique id of this span (never zero).
    pub span_id: u64,
    /// Parent span id; `None` for a root span.
    pub parent_id: Option<u64>,
    /// What the interval is: `submit`, `lease`, `ingest`, `done`, `shard`,
    /// `scenario`, `scheduling`, `thermal`, `floorplan`, `grid`, ...
    pub name: String,
    /// Which side measured it.
    pub kind: SpanKind,
    /// Start, µs since the Unix epoch.
    pub start_us: u64,
    /// End, µs since the Unix epoch (`>= start_us`).
    pub end_us: u64,
    /// String key-value attributes (`benchmark`, `policy`, `shard`, ...).
    pub attrs: BTreeMap<String, String>,
}

impl SpanEvent {
    /// Creates a span with no attributes (add them via [`SpanEvent::attr`]).
    pub fn new(
        trace_id: u64,
        span_id: u64,
        parent_id: Option<u64>,
        name: &str,
        kind: SpanKind,
        start_us: u64,
        end_us: u64,
    ) -> Self {
        SpanEvent {
            trace_id,
            span_id,
            parent_id,
            name: name.to_string(),
            kind,
            start_us,
            end_us: end_us.max(start_us),
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style attribute: returns the span with `key = value` set.
    #[must_use]
    pub fn attr(mut self, key: &str, value: impl Into<String>) -> Self {
        self.attrs.insert(key.to_string(), value.into());
        self
    }

    /// The interval length in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Serialises the span as a [`JsonValue`] object (sorted keys).
    pub fn to_json(&self) -> JsonValue {
        let attrs = self
            .attrs
            .iter()
            .map(|(key, value)| (key.clone(), JsonValue::from(value.as_str())));
        JsonValue::object(vec![
            (
                "trace_id".to_string(),
                JsonValue::from(id_hex(self.trace_id).as_str()),
            ),
            (
                "span_id".to_string(),
                JsonValue::from(id_hex(self.span_id).as_str()),
            ),
            (
                "parent_id".to_string(),
                JsonValue::from(self.parent_id.map(id_hex).unwrap_or_default().as_str()),
            ),
            ("name".to_string(), JsonValue::from(self.name.as_str())),
            ("kind".to_string(), JsonValue::from(self.kind.as_str())),
            (
                "start_us".to_string(),
                JsonValue::Number(self.start_us as f64),
            ),
            ("end_us".to_string(), JsonValue::Number(self.end_us as f64)),
            ("attrs".to_string(), JsonValue::object(attrs)),
        ])
    }

    /// Serialises the span as one JSONL line (no trailing newline).
    ///
    /// Hand-rolled but byte-identical to `self.to_json().to_json()` (the
    /// sorted-key object form) — this runs once per span on the worker's
    /// record-post hot path, where building the [`JsonValue`] tree first
    /// costs ~20 allocations per span.
    pub fn to_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(192 + 24 * self.attrs.len());
        out.push_str("{\"attrs\":{");
        for (index, (key, value)) in self.attrs.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            json::write_json_string(&mut out, key);
            out.push(':');
            json::write_json_string(&mut out, value);
        }
        let _ = write!(out, "}},\"end_us\":{}", self.end_us);
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        json::write_json_string(&mut out, &self.name);
        match self.parent_id {
            // Hex ids never need escaping.
            Some(parent) => {
                let _ = write!(out, ",\"parent_id\":\"{parent:016x}\"");
            }
            None => out.push_str(",\"parent_id\":\"\""),
        }
        let _ = write!(
            out,
            ",\"span_id\":\"{:016x}\",\"start_us\":{},\"trace_id\":\"{:016x}\"}}",
            self.span_id, self.start_us, self.trace_id
        );
        out
    }

    /// Decodes a span from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the missing or malformed
    /// field, in the style of the other wire decoders.
    pub fn from_json(value: &JsonValue) -> Result<SpanEvent, String> {
        let trace_id = parse_id(value.field_str("trace_id")?)
            .ok_or_else(|| "field 'trace_id' must be a nonzero hex id".to_string())?;
        let span_id = parse_id(value.field_str("span_id")?)
            .ok_or_else(|| "field 'span_id' must be a nonzero hex id".to_string())?;
        let parent_text = value.field_str("parent_id")?;
        let parent_id = if parent_text.is_empty() {
            None
        } else {
            Some(
                parse_id(parent_text)
                    .ok_or_else(|| "field 'parent_id' must be a hex id or empty".to_string())?,
            )
        };
        let kind = SpanKind::parse(value.field_str("kind")?)
            .ok_or_else(|| "field 'kind' must be client|server|worker|internal".to_string())?;
        let start_us = value.field_u64("start_us")?;
        let end_us = value.field_u64("end_us")?;
        if end_us < start_us {
            return Err("field 'end_us' must be >= 'start_us'".to_string());
        }
        let mut attrs = BTreeMap::new();
        match value.field("attrs")? {
            JsonValue::Object(map) => {
                for (key, item) in map {
                    let text = item
                        .as_str()
                        .ok_or_else(|| format!("attr '{key}' must be a string"))?;
                    attrs.insert(key.clone(), text.to_string());
                }
            }
            _ => return Err("field 'attrs' must be an object".to_string()),
        }
        Ok(SpanEvent {
            trace_id,
            span_id,
            parent_id,
            name: value.field_str("name")?.to_string(),
            kind,
            start_us,
            end_us,
            attrs,
        })
    }

    /// Decodes a span from one JSONL line.
    ///
    /// Lines in the exact canonical [`SpanEvent::to_line`] layout take a
    /// byte-level fast path (~5x cheaper than the JSON tree parser — this
    /// runs per span on the server's ingest hot path); anything else falls
    /// back to the full parser, so arbitrary-JSON span lines still decode.
    ///
    /// # Errors
    ///
    /// As [`SpanEvent::from_json`], plus JSON parse failures.
    pub fn parse_line(line: &str) -> Result<SpanEvent, String> {
        if let Some(span) = SpanEvent::parse_canonical(line) {
            return Ok(span);
        }
        let value = JsonValue::parse(line).map_err(|e| e.to_string())?;
        SpanEvent::from_json(&value)
    }

    /// The [`SpanEvent::parse_line`] fast path: decodes the exact canonical
    /// layout `to_line` emits (sorted keys, no string escapes). Any
    /// deviation — including semantically invalid spans, which the slow
    /// path rejects with a field-naming error — returns `None`.
    fn parse_canonical(line: &str) -> Option<SpanEvent> {
        let mut attrs = BTreeMap::new();
        let raw = scan_canonical(line, |key, value| {
            attrs.insert(key.to_string(), value.to_string());
        })?;
        Some(SpanEvent {
            trace_id: raw.trace_id,
            span_id: raw.span_id,
            parent_id: raw.parent_id,
            name: raw.name.to_string(),
            kind: raw.kind,
            start_us: raw.start_us,
            end_us: raw.end_us,
            attrs,
        })
    }

    /// Validates a canonical span line without building the event, returning
    /// its `(trace_id, span_id)`. `None` for anything that is not a valid
    /// span in the exact [`SpanEvent::to_line`] layout — the zero-allocation
    /// check the server's ingest hot path runs per piggybacked span line
    /// before storing it verbatim.
    pub fn canonical_ids(line: &str) -> Option<(u64, u64)> {
        scan_canonical(line, |_, _| ()).map(|raw| (raw.trace_id, raw.span_id))
    }

    /// `true` if a JSONL line looks like a span record (has the id fields),
    /// without fully parsing it — how mixed record/span streams are
    /// partitioned.
    pub fn is_span_line(line: &str) -> bool {
        jsonl::line_str_field(line, "span_id").is_some()
            && jsonl::line_str_field(line, "trace_id").is_some()
    }
}

/// A canonical span line's fields, borrowed from the line (attrs are
/// streamed to the `scan_canonical` caller instead).
struct RawSpan<'t> {
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    name: &'t str,
    kind: SpanKind,
    start_us: u64,
    end_us: u64,
}

/// Scans the exact canonical layout [`SpanEvent::to_line`] emits (sorted
/// keys, no string escapes), handing each attr pair to `on_attr` as it
/// passes. Returns `None` on any deviation, including semantic invalidity
/// (zero ids, `end_us < start_us`) — callers that need an error message
/// fall back to the full JSON parser.
fn scan_canonical<'t>(
    line: &'t str,
    mut on_attr: impl FnMut(&'t str, &'t str),
) -> Option<RawSpan<'t>> {
    let mut scan = Scan::new(line);
    scan.expect(b"{\"attrs\":{")?;
    if scan.expect(b"}").is_none() {
        loop {
            let key = scan.plain_string()?;
            scan.expect(b":")?;
            let value = scan.plain_string()?;
            on_attr(key, value);
            if scan.expect(b",").is_some() {
                continue;
            }
            scan.expect(b"}")?;
            break;
        }
    }
    scan.expect(b",\"end_us\":")?;
    let end_us = scan.number()?;
    scan.expect(b",\"kind\":")?;
    let kind = SpanKind::parse(scan.plain_string()?)?;
    scan.expect(b",\"name\":")?;
    let name = scan.plain_string()?;
    scan.expect(b",\"parent_id\":")?;
    let parent_text = scan.plain_string()?;
    let parent_id = if parent_text.is_empty() {
        None
    } else {
        Some(parse_id(parent_text)?)
    };
    scan.expect(b",\"span_id\":")?;
    let span_id = parse_id(scan.plain_string()?)?;
    scan.expect(b",\"start_us\":")?;
    let start_us = scan.number()?;
    scan.expect(b",\"trace_id\":")?;
    let trace_id = parse_id(scan.plain_string()?)?;
    scan.expect(b"}")?;
    if !scan.at_end() || end_us < start_us {
        return None;
    }
    Some(RawSpan {
        trace_id,
        span_id,
        parent_id,
        name,
        kind,
        start_us,
        end_us,
    })
}

/// Byte cursor for canonical-layout scanners ([`scan_canonical`] here, the
/// log-line fast path in [`crate::log`]): every method returns `None` on
/// the first deviation from the canonical layout, sending the caller to
/// the full JSON parser.
pub(crate) struct Scan<'t> {
    text: &'t str,
    bytes: &'t [u8],
    pos: usize,
}

impl<'t> Scan<'t> {
    pub(crate) fn new(line: &'t str) -> Self {
        Scan {
            text: line,
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    /// `true` once the whole line has been consumed.
    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    pub(crate) fn expect(&mut self, token: &[u8]) -> Option<()> {
        if self.bytes[self.pos..].starts_with(token) {
            self.pos += token.len();
            Some(())
        } else {
            None
        }
    }

    /// A quoted string with no escapes (scanning for the closing `"` byte
    /// is UTF-8 safe: 0x22 never occurs in a continuation byte). A
    /// backslash or control character bails to the slow path, which
    /// unescapes properly.
    pub(crate) fn plain_string(&mut self) -> Option<&'t str> {
        self.expect(b"\"")?;
        let start = self.pos;
        while let Some(&byte) = self.bytes.get(self.pos) {
            match byte {
                b'"' => {
                    let content = &self.text[start..self.pos];
                    self.pos += 1;
                    return Some(content);
                }
                b'\\' => return None,
                byte if byte < 0x20 => return None,
                _ => self.pos += 1,
            }
        }
        None
    }

    /// A plain unsigned decimal (the only number shape `to_line` emits).
    pub(crate) fn number(&mut self) -> Option<u64> {
        let start = self.pos;
        let mut value = 0u64;
        while let Some(&byte) = self.bytes.get(self.pos) {
            if !byte.is_ascii_digit() {
                break;
            }
            value = value.checked_mul(10)?.checked_add(u64::from(byte - b'0'))?;
            self.pos += 1;
        }
        (self.pos > start).then_some(value)
    }
}

/// The splitmix64 mixing function — the workspace's standard cheap 64-bit
/// hash (the retry-jitter code uses the same constants).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic trace/span id generator: a seeded splitmix64 sequence.
/// Never yields zero (the wire's "absent" marker).
#[derive(Debug, Clone)]
pub struct SpanIdGen {
    state: u64,
}

impl SpanIdGen {
    /// A generator whose id sequence is a pure function of `seed`.
    pub fn seeded(seed: u64) -> Self {
        SpanIdGen { state: seed }
    }

    /// The next id in the sequence.
    pub fn next_id(&mut self) -> u64 {
        loop {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let id = splitmix64(self.state);
            if id != 0 {
                return id;
            }
        }
    }

    /// A stateless id: a pure function of `(seed, tag)`. Used where the id
    /// must not depend on generation order — e.g. a scenario span id is
    /// `derive(trace_id ^ scenario_id, "scenario")`, identical no matter
    /// which worker thread runs the scenario or whether it re-runs after a
    /// crash.
    pub fn derive(seed: u64, tag: &str) -> u64 {
        let mixed = tag.bytes().fold(splitmix64(seed), |acc, byte| {
            splitmix64(acc ^ u64::from(byte))
        });
        if mixed == 0 {
            1
        } else {
            mixed
        }
    }
}

/// The recording half of a span stream: cheap, clonable, shareable across
/// threads. `record` serialises on the caller and enqueues on an unbounded
/// channel (lock-free on the send path), so the hot path never touches the
/// output file; a [`SpanDrain`] on the owning thread batches the writes.
#[derive(Debug, Clone)]
pub struct SpanSink {
    tx: Sender<String>,
}

impl SpanSink {
    /// Records a completed span. Never fails: if the drain is gone the
    /// span is dropped (tracing must not take down the traced system).
    pub fn record(&self, span: &SpanEvent) {
        let _ = self.tx.send(span.to_line());
    }

    /// Records a pre-serialised span line verbatim (how the server merges
    /// worker-produced spans into its trace log without re-encoding).
    /// Structurally incomplete lines are dropped.
    pub fn record_line(&self, line: &str) {
        if jsonl::is_complete_record(line) {
            let _ = self.tx.send(line.trim().to_string());
        }
    }
}

/// The draining half of a span stream: owns the buffered lines and,
/// optionally, the crash-repaired JSONL file they flush to.
#[derive(Debug)]
pub struct SpanDrain {
    rx: Receiver<String>,
    out: Option<std::fs::File>,
}

impl SpanDrain {
    /// Writes every buffered line to the log file in one batched write
    /// (one flush per call, not per span) and returns how many were
    /// written. A drain with no file just discards the buffer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the log file.
    pub fn flush(&mut self) -> io::Result<usize> {
        let lines = self.drain_lines();
        if lines.is_empty() {
            return Ok(0);
        }
        if let Some(file) = self.out.as_mut() {
            let mut batch = String::new();
            for line in &lines {
                batch.push_str(line);
                batch.push('\n');
            }
            file.write_all(batch.as_bytes())?;
            file.flush()?;
        }
        Ok(lines.len())
    }

    /// Takes every buffered line without writing anywhere — for consumers
    /// that forward spans over the wire instead of to a file.
    pub fn drain_lines(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        while let Ok(line) = self.rx.try_recv() {
            lines.push(line);
        }
        lines
    }
}

/// An in-memory span stream: sink plus drain, no file.
pub fn span_channel() -> (SpanSink, SpanDrain) {
    let (tx, rx) = std::sync::mpsc::channel();
    (SpanSink { tx }, SpanDrain { rx, out: None })
}

/// A span stream backed by a crash-repaired JSONL log at `path` (see
/// [`jsonl::append_repaired`]): a partial line left by a kill -9 mid-write
/// is dropped before appending resumes. Returns the sink, the drain and
/// the number of repaired bytes.
///
/// # Errors
///
/// Propagates I/O errors from the repair and the open.
pub fn span_log(path: &Path) -> io::Result<(SpanSink, SpanDrain, u64)> {
    let (writer, repaired) = jsonl::append_repaired(path)?;
    let (tx, rx) = std::sync::mpsc::channel();
    Ok((
        SpanSink { tx },
        SpanDrain {
            rx,
            out: Some(writer.into_inner()),
        },
        repaired,
    ))
}

/// A parsed span stream reassembled into parent/child trees, ready for
/// critical-path and timeline analysis.
#[derive(Debug)]
pub struct SpanForest {
    spans: Vec<SpanEvent>,
    children: HashMap<u64, Vec<usize>>,
    roots: Vec<usize>,
}

impl SpanForest {
    /// Builds the forest. A span whose parent id is absent from the stream
    /// (e.g. the parent's batch was lost in a crash) is treated as a root,
    /// so analysis degrades gracefully instead of dropping subtrees.
    pub fn build(mut spans: Vec<SpanEvent>) -> SpanForest {
        spans.sort_by(|a, b| {
            (a.start_us, a.end_us, a.span_id).cmp(&(b.start_us, b.end_us, b.span_id))
        });
        let present: HashMap<u64, usize> = spans
            .iter()
            .enumerate()
            .map(|(index, span)| (span.span_id, index))
            .collect();
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut roots = Vec::new();
        for (index, span) in spans.iter().enumerate() {
            match span.parent_id {
                Some(parent) if present.contains_key(&parent) => {
                    children.entry(parent).or_default().push(index);
                }
                _ => roots.push(index),
            }
        }
        SpanForest {
            spans,
            children,
            roots,
        }
    }

    /// Every span, sorted by `(start_us, end_us, span_id)`.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// Number of spans in the forest.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the forest holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The root spans, in start order.
    pub fn roots(&self) -> impl Iterator<Item = &SpanEvent> {
        self.roots.iter().map(|&index| &self.spans[index])
    }

    /// The direct children of a span, in start order.
    pub fn children_of(&self, span_id: u64) -> impl Iterator<Item = &SpanEvent> {
        self.children
            .get(&span_id)
            .map(|indices| indices.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&index| &self.spans[index])
    }

    /// Total wall-clock covered by the forest: latest end minus earliest
    /// start, in µs. Zero when empty.
    pub fn wall_us(&self) -> u64 {
        let start = self.spans.iter().map(|span| span.start_us).min();
        let end = self.spans.iter().map(|span| span.end_us).max();
        match (start, end) {
            (Some(start), Some(end)) => end.saturating_sub(start),
            _ => 0,
        }
    }

    /// The critical path: starting from the latest-ending root, repeatedly
    /// descend into the latest-ending child — the chain of spans that had
    /// to finish for the trace to finish. Ties break on span id so the
    /// path is deterministic.
    pub fn critical_path(&self) -> Vec<&SpanEvent> {
        let mut path = Vec::new();
        let Some(mut current) = self.roots().max_by_key(|span| (span.end_us, span.span_id)) else {
            return path;
        };
        loop {
            path.push(current);
            match self
                .children_of(current.span_id)
                .max_by_key(|span| (span.end_us, span.span_id))
            {
                Some(child) => current = child,
                None => return path,
            }
        }
    }

    /// Sums `duration_us` over spans selected by `filter` — the building
    /// block of per-phase and per-axis breakdowns.
    pub fn total_us_where(&self, mut filter: impl FnMut(&SpanEvent) -> bool) -> u64 {
        self.spans
            .iter()
            .filter(|span| filter(span))
            .map(SpanEvent::duration_us)
            .sum()
    }
}

/// Exports spans as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto "JSON Array Format"): one complete (`"ph":"X"`) event per
/// span, one track (`tid`) per worker — spans carrying a `worker`
/// attribute share that worker's track, client spans get a `client`
/// track, everything else lands on the `service` track — plus
/// `thread_name` metadata events naming the tracks. Timestamps are the
/// spans' absolute microseconds; Perfetto normalises the origin itself.
pub fn chrome_trace(spans: &[SpanEvent]) -> JsonValue {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        (spans[a].start_us, spans[a].span_id).cmp(&(spans[b].start_us, spans[b].span_id))
    });
    let mut tids: BTreeMap<String, usize> = BTreeMap::new();
    let mut track_of = |span: &SpanEvent| -> (String, usize) {
        let track = match span.attrs.get("worker") {
            Some(worker) => format!("worker {worker}"),
            None if span.kind == SpanKind::Client => "client".to_string(),
            None => "service".to_string(),
        };
        let next = tids.len();
        let tid = *tids.entry(track.clone()).or_insert(next);
        (track, tid)
    };
    let mut events = Vec::new();
    let mut named = std::collections::BTreeSet::new();
    for &index in &order {
        let span = &spans[index];
        let (track, tid) = track_of(span);
        if named.insert(tid) {
            events.push(JsonValue::object(vec![
                ("ph".to_string(), JsonValue::from("M")),
                ("name".to_string(), JsonValue::from("thread_name")),
                ("pid".to_string(), JsonValue::from(1usize)),
                ("tid".to_string(), JsonValue::from(tid)),
                (
                    "args".to_string(),
                    JsonValue::object(vec![("name".to_string(), JsonValue::from(track.as_str()))]),
                ),
            ]));
        }
        let mut args: Vec<(String, JsonValue)> = span
            .attrs
            .iter()
            .map(|(key, value)| (key.clone(), JsonValue::from(value.as_str())))
            .collect();
        args.push((
            "trace_id".to_string(),
            JsonValue::from(id_hex(span.trace_id).as_str()),
        ));
        args.push((
            "span_id".to_string(),
            JsonValue::from(id_hex(span.span_id).as_str()),
        ));
        events.push(JsonValue::object(vec![
            ("ph".to_string(), JsonValue::from("X")),
            ("name".to_string(), JsonValue::from(span.name.as_str())),
            ("cat".to_string(), JsonValue::from(span.kind.as_str())),
            ("ts".to_string(), JsonValue::Number(span.start_us as f64)),
            (
                "dur".to_string(),
                JsonValue::Number(span.duration_us() as f64),
            ),
            ("pid".to_string(), JsonValue::from(1usize)),
            ("tid".to_string(), JsonValue::from(tid)),
            ("args".to_string(), JsonValue::object(args)),
        ]));
    }
    JsonValue::object(vec![
        ("displayTimeUnit".to_string(), JsonValue::from("ms")),
        ("traceEvents".to_string(), JsonValue::Array(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: Option<u64>, start: u64, end: u64) -> SpanEvent {
        SpanEvent::new(trace, id, parent, "scenario", SpanKind::Worker, start, end)
    }

    #[test]
    fn ids_format_and_parse() {
        assert_eq!(id_hex(0xAB), "00000000000000ab");
        assert_eq!(parse_id("00000000000000ab"), Some(0xAB));
        assert_eq!(parse_id(""), None);
        assert_eq!(parse_id("0"), None);
        assert_eq!(parse_id("zz"), None);
        assert_eq!(parse_id("11111111111111111"), None); // 17 digits
    }

    #[test]
    fn id_generator_is_deterministic_and_nonzero() {
        let mut a = SpanIdGen::seeded(42);
        let mut b = SpanIdGen::seeded(42);
        let ids: Vec<u64> = (0..100).map(|_| a.next_id()).collect();
        assert!(ids.iter().all(|&id| id != 0));
        assert!((0..100).all(|index| b.next_id() == ids[index]));
        // Distinct within a sequence and across seeds.
        let unique: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        assert_ne!(
            SpanIdGen::seeded(1).next_id(),
            SpanIdGen::seeded(2).next_id()
        );
        // derive is stateless and tag-sensitive.
        assert_eq!(
            SpanIdGen::derive(7, "scenario"),
            SpanIdGen::derive(7, "scenario")
        );
        assert_ne!(
            SpanIdGen::derive(7, "scenario"),
            SpanIdGen::derive(7, "thermal")
        );
        assert_ne!(
            SpanIdGen::derive(7, "scenario"),
            SpanIdGen::derive(8, "scenario")
        );
    }

    #[test]
    fn span_round_trips_through_jsonl() {
        let original = span(0x11, 0x22, Some(0x33), 1_000, 2_500)
            .attr("benchmark", "Bm1")
            .attr("policy", "thermal");
        let line = original.to_line();
        assert!(jsonl::is_complete_record(&line));
        assert!(SpanEvent::is_span_line(&line));
        let parsed = SpanEvent::parse_line(&line).expect("parse");
        assert_eq!(parsed, original);
        // Root spans serialise an empty parent and come back as None.
        let root = span(0x11, 0x44, None, 0, 1);
        let parsed = SpanEvent::parse_line(&root.to_line()).expect("parse root");
        assert_eq!(parsed.parent_id, None);
    }

    #[test]
    fn non_canonical_lines_parse_through_the_slow_path() {
        // The fast scanner only accepts `to_line`'s exact byte layout;
        // anything else — reordered keys, whitespace, escaped attrs —
        // must still parse identically through the JSON tree.
        let canonical = span(0x11, 0x22, Some(0x33), 1_000, 2_500).attr("benchmark", "Bm1");
        let reordered = concat!(
            "{\"trace_id\": \"0000000000000011\", \"span_id\": \"0000000000000022\",",
            " \"parent_id\": \"0000000000000033\", \"name\": \"scenario\",",
            " \"kind\": \"worker\", \"start_us\": 1000, \"end_us\": 2500,",
            " \"attrs\": {\"benchmark\": \"Bm1\"}}"
        );
        assert_eq!(
            SpanEvent::parse_line(reordered).expect("slow path"),
            canonical
        );
        let escaped = span(0x11, 0x22, None, 0, 1).attr("note", "a\"b");
        assert_eq!(
            SpanEvent::parse_line(&escaped.to_line()).expect("escaped"),
            escaped
        );
    }

    #[test]
    fn hand_rolled_line_matches_the_tree_serializer() {
        // `to_line` bypasses the JsonValue tree for speed; it must stay
        // byte-identical to the canonical sorted-key serialization,
        // including string escaping in names and attrs.
        let spans = [
            span(0x11, 0x22, Some(0x33), 1_000, 2_500)
                .attr("benchmark", "Bm1")
                .attr("weird\"key\\", "line\nbreak\tand\r\u{1}"),
            span(u64::MAX, 1, None, 0, 0).attr("", ""),
            SpanEvent::new(1, 2, Some(3), "a \"quoted\" name", SpanKind::Client, 7, 9),
        ];
        for span in spans {
            assert_eq!(span.to_line(), span.to_json().to_json());
        }
    }

    #[test]
    fn malformed_spans_are_rejected_with_the_field_named() {
        let good = span(1, 2, None, 0, 10).to_line();
        for (needle, replacement, field) in [
            (
                "\"span_id\":\"0000000000000002\"",
                "\"span_id\":\"\"",
                "span_id",
            ),
            (
                "\"trace_id\":\"0000000000000001\"",
                "\"trace_id\":\"zz\"",
                "trace_id",
            ),
            ("\"kind\":\"worker\"", "\"kind\":\"alien\"", "kind"),
            ("\"end_us\":10", "\"end_us\":-4", "end_us"),
        ] {
            let bad = good.replace(needle, replacement);
            let error = SpanEvent::parse_line(&bad).expect_err(&bad);
            assert!(error.contains(field), "{error} should mention {field}");
        }
        // end before start is rejected even when both parse.
        let swapped = good.replace("\"start_us\":0", "\"start_us\":99");
        assert!(SpanEvent::parse_line(&swapped).is_err());
        assert!(SpanEvent::parse_line("not json").is_err());
        assert!(!SpanEvent::is_span_line("{\"id\":3}"));
    }

    #[test]
    fn sink_buffers_and_flushes_through_the_crash_repaired_log() {
        let path = std::env::temp_dir().join("tats_spans_sink_test.jsonl");
        let _ = std::fs::remove_file(&path);
        // Simulate a crash mid-write: a partial record on the tail.
        std::fs::write(
            &path,
            format!("{}\n{{\"trace_id\":\"00", span(1, 2, None, 0, 5).to_line()),
        )
        .unwrap();
        let (sink, mut drain, repaired) = span_log(&path).expect("open");
        assert!(repaired > 0);
        let worker = std::thread::spawn({
            let sink = sink.clone();
            move || sink.record(&span(1, 3, Some(2), 1, 4))
        });
        worker.join().unwrap();
        sink.record_line(&span(1, 4, Some(2), 2, 3).to_line());
        sink.record_line("{\"trace_id\":\"partial"); // dropped, not written
        assert_eq!(drain.flush().unwrap(), 2);
        assert_eq!(drain.flush().unwrap(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let spans: Vec<SpanEvent> = text
            .lines()
            .map(|line| SpanEvent::parse_line(line).expect(line))
            .collect();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[2].span_id, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn forest_reconstructs_trees_and_the_critical_path() {
        let trace = 0x7;
        let root = span(trace, 10, None, 0, 100);
        let fast = span(trace, 11, Some(10), 5, 20);
        let slow = span(trace, 12, Some(10), 10, 95);
        let leaf = span(trace, 13, Some(12), 40, 90);
        let forest = SpanForest::build(vec![leaf.clone(), fast, root, slow]);
        assert_eq!(forest.len(), 4);
        assert_eq!(forest.roots().count(), 1);
        assert_eq!(forest.wall_us(), 100);
        let path: Vec<u64> = forest.critical_path().iter().map(|s| s.span_id).collect();
        assert_eq!(path, vec![10, 12, 13]);
        assert_eq!(
            forest
                .children_of(10)
                .map(|s| s.span_id)
                .collect::<Vec<_>>(),
            vec![11, 12]
        );
        // An orphan (parent id unknown) degrades to a root, not a loss.
        let orphan = span(trace, 20, Some(999), 200, 300);
        let forest = SpanForest::build(vec![span(trace, 10, None, 0, 100), orphan]);
        assert_eq!(forest.roots().count(), 2);
        assert_eq!(forest.critical_path()[0].span_id, 20);
        assert_eq!(forest.total_us_where(|s| s.name == "scenario"), 200);
    }

    #[test]
    fn chrome_export_tracks_workers_and_round_trips() {
        let spans = vec![
            span(1, 2, None, 0, 50).attr("worker", "w1"),
            span(1, 3, None, 10, 40).attr("worker", "w2"),
            SpanEvent::new(1, 4, None, "submit", SpanKind::Server, 0, 5),
        ];
        let chrome = chrome_trace(&spans);
        let text = chrome.to_json();
        let parsed = JsonValue::parse(&text).expect("chrome JSON parses");
        let events = parsed.field_array("traceEvents").expect("events");
        // 3 spans + 3 thread_name metadata events (w1, w2, service).
        assert_eq!(events.len(), 6);
        let tracks: Vec<&str> = events
            .iter()
            .filter(|event| event.get("ph").and_then(JsonValue::as_str) == Some("M"))
            .map(|event| event.get("args").unwrap().field_str("name").unwrap())
            .collect();
        // Tracks appear in first-seen order: both start-0 spans sort by
        // span id, so worker w1 (id 2) precedes the server span (id 4).
        assert_eq!(tracks, vec!["worker w1", "service", "worker w2"]);
        let complete: Vec<&JsonValue> = events
            .iter()
            .filter(|event| event.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3);
        assert_eq!(complete[0].field_str("name"), Ok("scenario"));
        assert_eq!(complete[0].field_f64("dur"), Ok(50.0));
        assert_eq!(complete[1].field_str("name"), Ok("submit"));
        assert_eq!(complete[1].field_f64("dur"), Ok(5.0));
        // Distinct tids per track.
        let tids: std::collections::BTreeSet<u64> = complete
            .iter()
            .map(|event| event.field_u64("tid").unwrap())
            .collect();
        assert_eq!(tids.len(), 3);
    }
}
