//! Span-tree properties, pinned over randomised trees.
//!
//! For arbitrary generated span trees (every child's interval nested
//! within its parent, ids unique by construction):
//!
//! * JSONL serialisation round-trips every span exactly (through
//!   `SpanEvent::parse_line` and through a real crash-repaired log file);
//! * `SpanForest::build` reattaches every child to its parent and finds
//!   exactly the generated roots;
//! * the critical path is a root-to-leaf chain of parent links whose last
//!   span ends when the forest ends;
//! * the Chrome trace-event export parses back through `JsonValue::parse`
//!   with one `"X"` event per span.
//!
//! Run with a larger budget via `PROPTEST_CASES=<n>`.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tats_trace::spans::{chrome_trace, SpanEvent, SpanForest, SpanIdGen, SpanKind};
use tats_trace::JsonValue;

/// Generates a random span tree: span 0 is the root; every later span
/// picks an earlier parent and an interval nested inside it. Ids come
/// from a seeded [`SpanIdGen`], so the whole tree is a function of the
/// seed.
fn random_tree(seed: u64, count: usize) -> Vec<SpanEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = SpanIdGen::seeded(seed);
    let trace = ids.next_id();
    let kinds = [
        SpanKind::Client,
        SpanKind::Server,
        SpanKind::Worker,
        SpanKind::Internal,
    ];
    let root_start = rng.gen_range(0u64..1_000_000);
    let root_end = root_start + rng.gen_range(1_000u64..1_000_000);
    let mut spans = vec![SpanEvent::new(
        trace,
        ids.next_id(),
        None,
        "root",
        SpanKind::Server,
        root_start,
        root_end,
    )];
    for index in 1..count {
        let parent = rng.gen_range(0..index);
        let (lo, hi) = (spans[parent].start_us, spans[parent].end_us);
        let start = if hi > lo { rng.gen_range(lo..hi) } else { lo };
        let end = if hi > start {
            rng.gen_range(start..hi + 1)
        } else {
            start
        };
        let name = ["scenario", "thermal", "scheduling", "lease"][rng.gen_range(0..4usize)];
        let mut span = SpanEvent::new(
            trace,
            ids.next_id(),
            Some(spans[parent].span_id),
            name,
            kinds[rng.gen_range(0..kinds.len())],
            start,
            end,
        );
        if rng.gen_range(0..2u32) == 0 {
            span = span
                .attr("worker", format!("w{}", rng.gen_range(0..3u32)))
                .attr("benchmark", "Bm1");
        }
        spans.push(span);
    }
    spans
}

proptest! {
    #[test]
    fn generated_trees_hold_every_span_invariant(seed in 0u64..1_000, count in 1usize..40) {
        let spans = random_tree(seed, count);

        // Ids are unique and nonzero.
        let ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
        prop_assert_eq!(ids.len(), spans.len());
        prop_assert!(!ids.contains(&0));

        // Every child's interval is nested within its parent's.
        let find = |id: u64| spans.iter().find(|s| s.span_id == id).unwrap();
        for span in &spans {
            if let Some(parent) = span.parent_id {
                let parent = find(parent);
                prop_assert!(parent.start_us <= span.start_us);
                prop_assert!(span.end_us <= parent.end_us);
            }
        }

        // JSONL round-trip is exact for every span.
        for span in &spans {
            let parsed = SpanEvent::parse_line(&span.to_line()).expect("round trip");
            prop_assert_eq!(&parsed, span);
        }

        // The forest reattaches every child and finds exactly one root.
        let forest = SpanForest::build(spans.clone());
        prop_assert_eq!(forest.len(), spans.len());
        prop_assert_eq!(forest.roots().count(), 1);
        for span in &spans {
            if let Some(parent) = span.parent_id {
                prop_assert!(forest.children_of(parent).any(|c| c.span_id == span.span_id));
            }
        }

        // The critical path is a parent-linked chain from the root; with
        // nested intervals the root itself carries the forest's latest
        // end, and every hop descends into the latest-ending child.
        let path = forest.critical_path();
        prop_assert!(!path.is_empty());
        prop_assert_eq!(path[0].parent_id, None);
        for pair in path.windows(2) {
            prop_assert_eq!(pair[1].parent_id, Some(pair[0].span_id));
            let latest_child = forest
                .children_of(pair[0].span_id)
                .map(|c| c.end_us)
                .max()
                .unwrap();
            prop_assert_eq!(pair[1].end_us, latest_child);
        }
        let forest_end = spans.iter().map(|s| s.end_us).max().unwrap();
        prop_assert_eq!(path[0].end_us, forest_end);

        // Chrome export parses back with one complete event per span.
        let chrome = chrome_trace(&spans).to_json();
        let parsed = JsonValue::parse(&chrome).expect("chrome JSON");
        let complete = parsed
            .field_array("traceEvents")
            .expect("events")
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .count();
        prop_assert_eq!(complete, spans.len());
    }

    #[test]
    fn span_streams_survive_a_torn_log_tail(seed in 0u64..500) {
        let spans = random_tree(seed, 12);
        let path = std::env::temp_dir().join(format!("tats_span_tree_prop_{seed}.jsonl"));
        let _ = std::fs::remove_file(&path);
        // Write the stream, then simulate a kill -9 mid-write of one more.
        let (sink, mut drain, _) = tats_trace::spans::span_log(&path).expect("open");
        for span in &spans {
            sink.record(span);
        }
        drain.flush().expect("flush");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"{\"trace_id\":\"00000000");
        std::fs::write(&path, &bytes).expect("tear");
        // Reopening repairs the tail; the surviving lines parse exactly.
        let (_, _, repaired) = tats_trace::spans::span_log(&path).expect("reopen");
        prop_assert!(repaired > 0);
        let text = std::fs::read_to_string(&path).expect("reread");
        let recovered: Vec<SpanEvent> = text
            .lines()
            .map(|line| SpanEvent::parse_line(line).expect(line))
            .collect();
        prop_assert_eq!(recovered, spans);
        let _ = std::fs::remove_file(&path);
    }
}
