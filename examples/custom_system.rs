//! Build everything by hand instead of using the paper's benchmarks: a custom
//! task graph (an MPEG-like decoder pipeline), a custom technology library, a
//! custom architecture, and a thermal-aware floorplan for it.
//!
//! ```bash
//! cargo run --release --example custom_system
//! ```

use tats_core::{evaluate_schedule, Asp, Policy};
use tats_floorplan::{CostWeights, Engine, Floorplanner, GaConfig, Module, Net};
use tats_taskgraph::{TaskGraphBuilder, TaskKind};
use tats_techlib::{Architecture, PeClass, TechLibraryBuilder};
use tats_thermal::ThermalConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Task graph: a small decoder pipeline with a 900-unit deadline. ---
    let mut builder = TaskGraphBuilder::new("decoder", 900.0);
    let parse = builder.add_task("parse", TaskKind::Control, 0);
    let vld = builder.add_task("vld", TaskKind::Compute, 1);
    let iq_a = builder.add_task("iq_luma", TaskKind::Dsp, 2);
    let iq_b = builder.add_task("iq_chroma", TaskKind::Dsp, 2);
    let idct_a = builder.add_task("idct_luma", TaskKind::Dsp, 3);
    let idct_b = builder.add_task("idct_chroma", TaskKind::Dsp, 3);
    let mc = builder.add_task("motion_comp", TaskKind::Memory, 4);
    let blend = builder.add_task("blend", TaskKind::Compute, 5);
    let out = builder.add_task("writeback", TaskKind::Memory, 6);
    for (src, dst, bytes) in [
        (parse, vld, 16.0),
        (vld, iq_a, 64.0),
        (vld, iq_b, 32.0),
        (iq_a, idct_a, 64.0),
        (iq_b, idct_b, 32.0),
        (parse, mc, 8.0),
        (idct_a, blend, 64.0),
        (idct_b, blend, 32.0),
        (mc, blend, 64.0),
        (blend, out, 96.0),
    ] {
        builder.add_edge(src, dst, bytes)?;
    }
    let graph = builder.build()?;
    println!("task graph: {graph}");

    // --- Technology library: a RISC core, a DSP and a motion accelerator. ---
    // Columns are per task type (7 types used above).
    let mut lib = TechLibraryBuilder::new(7);
    let risc = lib.add_pe_type(
        "risc",
        PeClass::GppFast,
        6.5,
        6.5,
        50.0,
        0.3,
        vec![60.0, 90.0, 120.0, 140.0, 110.0, 100.0, 70.0],
        vec![3.8, 4.2, 4.6, 4.9, 4.4, 4.3, 3.9],
    )?;
    let dsp = lib.add_pe_type(
        "dsp",
        PeClass::Dsp,
        5.0,
        6.0,
        42.0,
        0.2,
        vec![110.0, 95.0, 55.0, 60.0, 120.0, 90.0, 100.0],
        vec![2.6, 2.4, 2.2, 2.3, 2.8, 2.5, 2.6],
    )?;
    let accel = lib.add_pe_type(
        "motion-accel",
        PeClass::Accelerator,
        4.0,
        4.0,
        55.0,
        0.1,
        vec![200.0, 220.0, 180.0, 190.0, 40.0, 150.0, 160.0],
        vec![1.8, 1.9, 1.7, 1.8, 1.2, 1.6, 1.7],
    )?;
    let library = lib.build()?;
    println!("library   : {library}");

    // --- Architecture: one of each. ---
    let mut architecture = Architecture::new("custom-soc");
    architecture.add_instance(risc);
    architecture.add_instance(dsp);
    architecture.add_instance(accel);

    // --- Thermal-aware floorplan for the three PEs. ---
    let modules = vec![
        Module::from_mm("risc", 6.5, 6.5, 4.2),
        Module::from_mm("dsp", 5.0, 6.0, 2.5),
        Module::from_mm("motion-accel", 4.0, 4.0, 1.4),
    ];
    let nets = vec![
        Net::new(vec![0, 1]),
        Net::new(vec![0, 2]),
        Net::new(vec![1, 2]),
    ];
    let solution = Floorplanner::new(modules)
        .with_nets(nets)
        .with_weights(CostWeights::thermal_aware())
        .with_engine(Engine::Genetic(GaConfig {
            population: 16,
            generations: 25,
            ..GaConfig::default()
        }))
        .run()?;
    println!(
        "floorplan : {} (peak {:.2} C for the estimated powers, {} placements evaluated)",
        solution.floorplan, solution.cost.peak_temperature_c, solution.evaluations
    );

    // --- Schedule with the baseline and the thermal-aware ASP and compare. ---
    for policy in [Policy::Baseline, Policy::ThermalAware] {
        let schedule = Asp::new(&graph, &library, &architecture)?
            .with_policy(policy)
            .with_floorplan(solution.floorplan.clone())
            .schedule()?;
        schedule.validate(&graph, &architecture, &library)?;
        let eval = evaluate_schedule(&schedule, &solution.floorplan, ThermalConfig::default())?;
        println!("\n{policy}:");
        println!("  {eval}");
        for task in graph.task_ids() {
            let a = schedule.assignment(task)?;
            let pe_name = library
                .pe_type(architecture.pe_type_of(a.pe)?)?
                .name()
                .to_string();
            println!(
                "  {:<14} -> {:<12} [{:>6.1}, {:>6.1})",
                graph.task(task).name(),
                pe_name,
                a.start,
                a.end
            );
        }
    }
    Ok(())
}
