//! DVS slack reclamation on top of the thermal-aware schedule.
//!
//! The paper fixes every PE at its nominal voltage; this example shows the
//! natural extension: once the thermal-aware ASP has produced a mapping that
//! beats its deadline, the remaining slack is traded for a lower operating
//! point, which lowers power density (and therefore temperature) further.
//!
//! ```bash
//! cargo run --release --example dvs_slack_reclamation
//! ```

use tats_core::{PlatformFlow, Policy};
use tats_power::{DvfsTable, PowerProfile, ScheduleSimulator, SlackReclaimer};
use tats_taskgraph::Benchmark;
use tats_techlib::profiles;
use tats_thermal::{ThermalConfig, ThermalModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = profiles::standard_library(12)?;
    let flow = PlatformFlow::new(&library)?;

    println!("benchmark | point    | makespan -> scaled | energy saving | transient peak before");
    println!("----------+----------+--------------------+---------------+----------------------");

    for benchmark in Benchmark::ALL {
        let graph = benchmark.task_graph()?;
        let result = flow.run(&graph, Policy::ThermalAware)?;

        // Transient peak of the nominal schedule, for reference.
        let model = ThermalModel::new(&result.floorplan, ThermalConfig::default())?;
        let profile =
            PowerProfile::from_schedule(&result.schedule, &result.architecture, &library)?;
        let nominal_trace = ScheduleSimulator::new(&model).simulate(&profile)?;

        // Reclaim the slack with the standard three-point DVFS table.
        let scaled = SlackReclaimer::new(DvfsTable::standard()).reclaim(&result.schedule)?;

        println!(
            "{:<9} | {:<8} | {:7.1} -> {:7.1} | {:12.1}% | {:8.2} C",
            benchmark.name(),
            scaled.operating_point().name(),
            scaled.nominal_makespan(),
            scaled.makespan(),
            100.0 * scaled.energy_saving_fraction(),
            nominal_trace.peak_c(),
        );
        assert!(
            scaled.meets_deadline(),
            "reclamation must never break the deadline"
        );
    }
    Ok(())
}
