//! Visual and machine-readable reports of one scheduling run.
//!
//! Renders the power-aware and thermal-aware mappings of the same benchmark
//! side by side as ASCII Gantt charts, then emits the thermal-aware schedule
//! as CSV, JSON and TGFF so it can be consumed by external tooling.
//!
//! ```bash
//! cargo run --release --example gantt_report
//! ```

use tats_core::{PlatformFlow, Policy, PowerHeuristic};
use tats_taskgraph::{tgff, Benchmark};
use tats_techlib::profiles;
use tats_trace::{csv, json, GanttChart};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = profiles::standard_library(12)?;
    let graph = Benchmark::Bm1.task_graph()?;
    let flow = PlatformFlow::new(&library)?;

    let power = flow.run(&graph, Policy::PowerAware(PowerHeuristic::MinTaskEnergy))?;
    let thermal = flow.run(&graph, Policy::ThermalAware)?;

    let chart = GanttChart::new().with_width(72)?;
    println!("== power-aware (heuristic 3) ==");
    println!(
        "max temp {:.2} C, avg temp {:.2} C",
        power.evaluation.max_temperature_c, power.evaluation.avg_temperature_c
    );
    println!("{}", chart.render(&power.schedule, Some(&graph))?);

    println!("== thermal-aware ==");
    println!(
        "max temp {:.2} C, avg temp {:.2} C",
        thermal.evaluation.max_temperature_c, thermal.evaluation.avg_temperature_c
    );
    println!("{}", chart.render(&thermal.schedule, Some(&graph))?);

    println!("== thermal-aware schedule as CSV ==");
    println!("{}", csv::schedule_to_csv(&thermal.schedule, Some(&graph))?);

    println!("== thermal-aware schedule as JSON ==");
    println!(
        "{}",
        json::schedule_to_json(&thermal.schedule, Some(&graph)).to_json()
    );

    println!("\n== benchmark graph as TGFF ==");
    println!("{}", tgff::to_tgff(&graph));
    Ok(())
}
