//! Compare the paper's two design flows on every benchmark: the co-synthesis
//! flow (customised architecture + thermal-aware floorplanning, Figure 1.a)
//! against the platform-based flow (four identical PEs, Figure 1.b), under
//! the best power heuristic and the thermal-aware policy.
//!
//! ```bash
//! cargo run --release --example platform_vs_cosynthesis
//! ```

use tats_core::{CoSynthesis, PlatformFlow, Policy, PowerHeuristic, ScheduleEvaluation};
use tats_floorplan::GaConfig;
use tats_taskgraph::Benchmark;
use tats_techlib::profiles;

fn row(label: &str, eval: &ScheduleEvaluation) {
    println!(
        "  {:<26} {:>9.2} {:>9.2} {:>9.2} {:>9.1}",
        label,
        eval.total_average_power,
        eval.max_temperature_c,
        eval.avg_temperature_c,
        eval.makespan
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = profiles::standard_library(10)?;
    let platform = PlatformFlow::new(&library)?;
    let cosynthesis = CoSynthesis::new(&library).with_floorplan_ga(GaConfig {
        population: 12,
        generations: 12,
        ..GaConfig::default()
    });

    for bm in Benchmark::ALL {
        let graph = bm.task_graph()?;
        println!("{bm}");
        println!(
            "  {:<26} {:>9} {:>9} {:>9} {:>9}",
            "flow / policy", "Total Pow", "Max Temp", "Avg Temp", "makespan"
        );

        for (name, policy) in [
            (
                "power-aware (H3)",
                Policy::PowerAware(PowerHeuristic::MinTaskEnergy),
            ),
            ("thermal-aware", Policy::ThermalAware),
        ] {
            let co = cosynthesis.run(&graph, policy)?;
            let pe_names: Vec<&str> = co
                .architecture
                .instances()
                .iter()
                .map(|i| {
                    library
                        .pe_type(i.type_id())
                        .map(|t| t.name())
                        .unwrap_or("?")
                })
                .collect();
            row(&format!("co-synthesis, {name}"), &co.evaluation);
            println!("      selected PEs: {pe_names:?}");

            let pl = platform.run(&graph, policy)?;
            row(&format!("platform, {name}"), &pl.evaluation);
        }
        println!();
    }
    Ok(())
}
