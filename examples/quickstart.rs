//! Quickstart: schedule one of the paper's benchmarks on the platform-based
//! architecture with every policy and print the table metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use tats_core::{PlatformFlow, Policy};
use tats_taskgraph::Benchmark;
use tats_techlib::profiles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The task graph: Bm1/19/19/790 from the paper, generated with a fixed
    //    seed so every run sees exactly the same workload.
    let graph = Benchmark::Bm1.task_graph()?;
    println!("benchmark    : {graph}");

    // 2. The technology library (WCET / WCPC tables) and the platform-based
    //    architecture: four identical fast GPPs on a 2x2 floorplan.
    let library = profiles::standard_library(10)?;
    let flow = PlatformFlow::new(&library)?;
    println!(
        "architecture : {} ({} PE types in the library)",
        flow.architecture(),
        library.pe_type_count()
    );
    println!("floorplan    : {}\n", flow.floorplan());

    // 3. Run the allocation and scheduling procedure under every policy the
    //    paper evaluates and report the three table metrics.
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "policy", "Total Pow", "Max Temp", "Avg Temp", "makespan", "deadline"
    );
    for policy in Policy::ALL {
        let result = flow.run(&graph, policy)?;
        let eval = &result.evaluation;
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.1} {:>9}",
            policy.label(),
            eval.total_average_power,
            eval.max_temperature_c,
            eval.avg_temperature_c,
            eval.makespan,
            if eval.meets_deadline { "met" } else { "MISSED" }
        );
    }

    // 4. Inspect the thermal-aware schedule in more detail.
    let thermal = flow.run(&graph, Policy::ThermalAware)?;
    println!("\nthermal-aware schedule: {}", thermal.schedule);
    for pe in thermal.architecture.pe_ids() {
        let tasks = thermal.schedule.assignments_on(pe).count();
        let busy = thermal.schedule.busy_time(pe);
        println!(
            "  {pe}: {tasks:>2} tasks, busy {busy:>6.1} time units, {:.2} W sustained, {:.2} C",
            thermal.evaluation.per_pe_power[pe.index()],
            thermal.evaluation.temperatures.block(pe.index())?
        );
    }
    Ok(())
}
