//! Lifetime impact of thermal-aware scheduling.
//!
//! The paper's introduction argues that temperature matters because it
//! accelerates wear-out (electromigration, stress migration).  This example
//! closes that loop: it schedules every benchmark with the best power-aware
//! heuristic and with the thermal-aware policy, replays both schedules
//! through the transient thermal model, and converts the resulting
//! temperature traces into mean-time-to-failure estimates.
//!
//! ```bash
//! cargo run --release --example reliability_comparison
//! ```

use tats_core::{PlatformFlow, Policy, PowerHeuristic};
use tats_power::simulate_schedule;
use tats_reliability::ReliabilityAnalyzer;
use tats_taskgraph::Benchmark;
use tats_techlib::profiles;
use tats_thermal::{ThermalConfig, ThermalModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = profiles::standard_library(12)?;
    let flow = PlatformFlow::new(&library)?;
    let analyzer = ReliabilityAnalyzer::new();

    println!("benchmark | policy        | peak temp | worst-PE MTTF | system MTTF");
    println!("----------+---------------+-----------+---------------+------------");

    for benchmark in Benchmark::ALL {
        let graph = benchmark.task_graph()?;
        for policy in [
            Policy::PowerAware(PowerHeuristic::MinTaskEnergy),
            Policy::ThermalAware,
        ] {
            let result = flow.run(&graph, policy)?;
            let model = ThermalModel::new(&result.floorplan, ThermalConfig::default())?;
            let trace =
                simulate_schedule(&result.schedule, &result.architecture, &library, &model)?;
            let system = analyzer.from_trace(&trace)?;
            println!(
                "{:<9} | {:<13} | {:6.2} C | {:10.0} h | {:9.0} h",
                benchmark.name(),
                policy.label(),
                trace.peak_c(),
                system.worst_mttf_hours(),
                system.system_mttf_hours(),
            );
        }
    }
    println!(
        "\nA lower peak temperature translates directly into longer lifetimes via the\n\
         Arrhenius mechanisms; the thermal-aware rows should dominate the power-aware rows."
    );
    Ok(())
}
