//! Thermal deep-dive on one schedule: steady-state block temperatures, the
//! grid-refined temperature map, and the transient response over the schedule
//! period.
//!
//! ```bash
//! cargo run --release --example thermal_profile
//! ```

use tats_core::{layout, Asp, Policy};
use tats_taskgraph::Benchmark;
use tats_techlib::{profiles, PeId};
use tats_thermal::{GridModel, PowerPhase, Temperatures, ThermalConfig, TransientSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = profiles::standard_library(10)?;
    let platform = profiles::platform_architecture(&library)?;
    let floorplan = layout::grid_floorplan(&platform, &library)?;
    let graph = Benchmark::Bm2.task_graph()?;

    let schedule = Asp::new(&graph, &library, &platform)?
        .with_policy(Policy::ThermalAware)
        .with_floorplan(floorplan.clone())
        .schedule()?;
    println!("schedule: {schedule}");

    // Steady-state block temperatures from the compact model.
    let config = ThermalConfig::default();
    let model = tats_thermal::ThermalModel::new(&floorplan, config)?;
    let sustained = schedule.sustained_power_per_pe();
    let steady = model.steady_state(&sustained)?;
    println!("\nsteady state (block compact model):");
    for (i, block) in floorplan.blocks().iter().enumerate() {
        println!(
            "  {:<12} {:>5.2} W -> {:>6.2} C",
            block.name(),
            sustained[i],
            steady.block(i)?
        );
    }
    println!(
        "  max {:.2} C, avg {:.2} C, spread {:.2} C",
        steady.max_c(),
        steady.average_c(),
        steady.spread_c()
    );

    // Grid-refined temperature map (ASCII heat map, hottest = '#').
    let grid = GridModel::new(&floorplan, config, 28, 28)?;
    let grid_temps = grid.steady_state(&sustained)?;
    let (nx, ny) = grid_temps.resolution();
    let (min_t, max_t) = grid_temps
        .cells()
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &t| {
            (lo.min(t), hi.max(t))
        });
    println!("\ngrid model {nx}x{ny} ({min_t:.1} C .. {max_t:.1} C):");
    let shades = [' ', '.', ':', '-', '=', '+', '*', '%', '#'];
    for iy in (0..ny).rev() {
        let mut line = String::from("  ");
        for ix in 0..nx {
            let t = grid_temps.cell(ix, iy)?;
            let level = if max_t > min_t {
                (((t - min_t) / (max_t - min_t)) * (shades.len() - 1) as f64).round() as usize
            } else {
                0
            };
            line.push(shades[level]);
        }
        println!("{line}");
    }

    // Transient response: per-PE power trace derived from the schedule,
    // sampled at a handful of checkpoints across the period.
    println!("\ntransient response (backward Euler):");
    let solver = TransientSolver::new(&model).with_step(0.05);
    let mut state = Temperatures::uniform(floorplan.block_count(), config.ambient_c);
    let makespan = schedule.makespan();
    let checkpoints = 8usize;
    for step in 1..=checkpoints {
        let until = makespan * step as f64 / checkpoints as f64;
        let from = makespan * (step - 1) as f64 / checkpoints as f64;
        // Average per-PE power over this window.
        let mut window_energy = vec![0.0; platform.pe_count()];
        for a in schedule.assignments() {
            let overlap = (a.end.min(until) - a.start.max(from)).max(0.0);
            window_energy[a.pe.index()] += overlap * a.power;
        }
        let window_power: Vec<f64> = window_energy.iter().map(|e| e / (until - from)).collect();
        state = solver.run(&state, &[PowerPhase::new(until - from, window_power)])?;
        println!(
            "  t = {until:>7.1}: max {:>6.2} C, avg {:>6.2} C",
            state.max_c(),
            state.average_c()
        );
    }

    // Which PE ends up hottest, and how busy is it?
    let hottest = steady.hottest_block();
    println!(
        "\nhottest PE is {} with {} assignments and {:.1} busy time units",
        floorplan.block(hottest)?.name(),
        schedule.assignments_on(PeId(hottest)).count(),
        schedule.busy_time(PeId(hottest))
    );
    Ok(())
}
