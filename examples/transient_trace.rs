//! Transient thermal replay of a schedule, with leakage feedback.
//!
//! The scheduler works with steady-state temperatures; this example shows
//! the time-domain picture of one finished schedule: the per-segment power
//! profile, the transient temperature trace (exported as CSV), and the
//! leakage-aware operating point of the busiest segment.
//!
//! ```bash
//! cargo run --release --example transient_trace > trace.csv
//! ```

use tats_core::{PlatformFlow, Policy};
use tats_power::{ArchitectureLeakage, LeakageFeedback, PowerProfile, ScheduleSimulator};
use tats_taskgraph::Benchmark;
use tats_techlib::profiles;
use tats_thermal::{ThermalConfig, ThermalModel};
use tats_trace::csv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = profiles::standard_library(12)?;
    let graph = Benchmark::Bm2.task_graph()?;
    let result = PlatformFlow::new(&library)?.run(&graph, Policy::ThermalAware)?;

    let model = ThermalModel::new(&result.floorplan, ThermalConfig::default())?;
    let profile = PowerProfile::from_schedule(&result.schedule, &result.architecture, &library)?;
    eprintln!(
        "power profile: {} segments, peak {:.2} W, average {:.2} W",
        profile.segment_count(),
        profile.peak_total_power(),
        profile.average_total_power()
    );

    // Transient replay, sampled every 10 schedule time units.
    let trace = ScheduleSimulator::new(&model)
        .with_sample_interval(10.0)
        .simulate(&profile)?;
    eprintln!(
        "transient trace: {} samples, peak {:.2} C, largest per-block swing {:.2} C",
        trace.len(),
        trace.peak_c(),
        trace.max_block_swing_c()
    );

    // Leakage-temperature fixed point at the schedule's sustained power.
    let leakage = ArchitectureLeakage::from_architecture(&result.architecture, &library)?;
    let sustained = result.schedule.sustained_power_per_pe();
    let converged = LeakageFeedback::new(&model, &leakage).solve(&sustained)?;
    eprintln!(
        "leakage feedback: {:.2} W leakage on top of {:.2} W dynamic ({} iterations)",
        converged.total_leakage(),
        sustained.iter().sum::<f64>(),
        converged.iterations
    );

    // The CSV trace goes to stdout so it can be piped into a plotting tool.
    print!("{}", csv::thermal_trace_to_csv(&trace)?);
    Ok(())
}
