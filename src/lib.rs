//! Umbrella crate re-exporting the thermal-aware task scheduling suite.
//!
//! See the individual crates for details:
//! [`tats_core`], [`tats_taskgraph`], [`tats_techlib`], [`tats_thermal`],
//! [`tats_floorplan`], [`tats_power`], [`tats_reliability`], [`tats_trace`],
//! [`tats_engine`].

pub use tats_core as core;
pub use tats_engine as engine;
pub use tats_floorplan as floorplan;
pub use tats_power as power;
pub use tats_reliability as reliability;
pub use tats_taskgraph as taskgraph;
pub use tats_techlib as techlib;
pub use tats_thermal as thermal;
pub use tats_trace as trace;
