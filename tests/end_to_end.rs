//! Cross-crate integration tests: the full pipeline from task-graph
//! generation through the technology library, the ASP, floorplanning and the
//! thermal model, exercised the way the examples and the benchmark harness
//! use it.

use tats_core::{
    evaluate_schedule, layout, Asp, CoSynthesis, PlatformFlow, Policy, PowerHeuristic,
};
use tats_floorplan::{CostWeights, Engine, Floorplanner, GaConfig};
use tats_taskgraph::{Benchmark, GeneratorConfig};
use tats_techlib::{profiles, PeId};
use tats_thermal::{GridModel, ThermalConfig, ThermalModel};

#[test]
fn platform_flow_end_to_end_on_all_benchmarks() {
    let library = profiles::standard_library(10).unwrap();
    let flow = PlatformFlow::new(&library).unwrap();
    for bm in Benchmark::ALL {
        let graph = bm.task_graph().unwrap();
        for policy in Policy::ALL {
            let result = flow.run(&graph, policy).unwrap();
            result
                .schedule
                .validate(&graph, &result.architecture, &library)
                .unwrap();
            assert!(result.evaluation.meets_deadline, "{bm} / {policy}");
            assert!(result.evaluation.max_temperature_c > result.evaluation.avg_temperature_c);
            assert!(result.evaluation.avg_temperature_c > ThermalConfig::default().ambient_c);
            assert_eq!(result.evaluation.per_pe_power.len(), 4);
        }
    }
}

#[test]
fn cosynthesis_flow_end_to_end_on_the_smallest_benchmark() {
    let library = profiles::standard_library(10).unwrap();
    let cosynthesis = CoSynthesis::new(&library).with_floorplan_ga(GaConfig {
        population: 8,
        generations: 5,
        ..GaConfig::default()
    });
    let graph = Benchmark::Bm1.task_graph().unwrap();
    for policy in [
        Policy::Baseline,
        Policy::PowerAware(PowerHeuristic::MinTaskEnergy),
        Policy::ThermalAware,
    ] {
        let result = cosynthesis.run(&graph, policy).unwrap();
        assert!(result.evaluation.meets_deadline, "{policy}");
        assert!(result.architecture.pe_count() >= 2, "{policy}");
        assert_eq!(
            result.floorplan.block_count(),
            result.architecture.pe_count()
        );
        result
            .schedule
            .validate(&graph, &result.architecture, &library)
            .unwrap();
        // The co-synthesis architecture must be cheaper to run (in total
        // sustained power) than the 4-fast-GPP platform on the same workload.
        let platform = PlatformFlow::new(&library)
            .unwrap()
            .run(&graph, policy)
            .unwrap();
        assert!(
            result.evaluation.total_average_power < platform.evaluation.total_average_power,
            "{policy}: co-synthesis should not burn more power than the platform"
        );
    }
}

#[test]
fn scheduler_output_feeds_the_grid_thermal_model() {
    // Block-level and grid-level thermal models must agree on which PE is the
    // hottest when driven by the same schedule.
    let library = profiles::standard_library(10).unwrap();
    let platform = profiles::platform_architecture(&library).unwrap();
    let plan = layout::grid_floorplan(&platform, &library).unwrap();
    let graph = Benchmark::Bm1.task_graph().unwrap();
    let schedule = Asp::new(&graph, &library, &platform)
        .unwrap()
        .with_policy(Policy::Baseline)
        .schedule()
        .unwrap();
    let power = schedule.sustained_power_per_pe();

    let block_model = ThermalModel::new(&plan, ThermalConfig::default()).unwrap();
    let block_temps = block_model.steady_state(&power).unwrap();
    let grid = GridModel::new(&plan, ThermalConfig::default(), 24, 24).unwrap();
    let grid_temps = grid.steady_state(&power).unwrap();

    let block_hottest = block_temps.hottest_block();
    let grid_hottest = grid_temps
        .block_average_c()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    assert_eq!(block_hottest, grid_hottest);
    for i in 0..4 {
        let diff = (block_temps.block(i).unwrap() - grid_temps.block_average_c()[i]).abs();
        assert!(diff < 12.0, "block {i} differs by {diff} C between models");
    }
}

#[test]
fn floorplanner_feeds_the_scheduler_for_arbitrary_architectures() {
    // Architecture -> floorplanner modules -> GA floorplan -> thermal-aware
    // ASP -> evaluation, with a custom-generated workload.
    let library = profiles::standard_library(8).unwrap();
    let graph = GeneratorConfig::new("synthetic", 24, 30, 4_000.0)
        .with_seed(99)
        .with_type_count(8)
        .generate()
        .unwrap();
    let mut architecture = tats_techlib::Architecture::new("mixed");
    for pe_type in library.pe_types().iter().take(4) {
        architecture.add_instance(pe_type.id());
    }

    // Rough per-PE power estimate from a baseline schedule.
    let baseline = Asp::new(&graph, &library, &architecture)
        .unwrap()
        .schedule()
        .unwrap();
    let modules =
        layout::pe_modules(&architecture, &library, &baseline.sustained_power_per_pe()).unwrap();
    let solution = Floorplanner::new(modules)
        .with_weights(CostWeights::thermal_aware())
        .with_engine(Engine::Genetic(GaConfig {
            population: 10,
            generations: 8,
            ..GaConfig::default()
        }))
        .run()
        .unwrap();

    let schedule = Asp::new(&graph, &library, &architecture)
        .unwrap()
        .with_policy(Policy::ThermalAware)
        .with_floorplan(solution.floorplan.clone())
        .schedule()
        .unwrap();
    schedule.validate(&graph, &architecture, &library).unwrap();
    let eval = evaluate_schedule(&schedule, &solution.floorplan, ThermalConfig::default()).unwrap();
    assert!(eval.meets_deadline);
    assert!(eval.max_temperature_c < 150.0);
}

#[test]
fn thermal_aware_platform_spreads_load_at_least_as_well_as_the_baseline() {
    // The busiest-PE energy share under the thermal-aware policy must not
    // exceed the baseline's by more than a small tolerance on any benchmark.
    let library = profiles::standard_library(10).unwrap();
    let platform = profiles::platform_architecture(&library).unwrap();
    for bm in Benchmark::ALL {
        let graph = bm.task_graph().unwrap();
        let share = |policy: Policy| {
            let s = Asp::new(&graph, &library, &platform)
                .unwrap()
                .with_policy(policy)
                .schedule()
                .unwrap();
            let energies: Vec<f64> = (0..4).map(|i| s.busy_energy(PeId(i))).collect();
            let total: f64 = energies.iter().sum();
            energies.iter().cloned().fold(0.0_f64, f64::max) / total
        };
        let baseline = share(Policy::Baseline);
        let thermal = share(Policy::ThermalAware);
        assert!(
            thermal <= baseline + 0.05,
            "{bm}: thermal-aware share {thermal:.3} vs baseline {baseline:.3}"
        );
    }
}

#[test]
fn umbrella_crate_reexports_are_usable() {
    // The root `tats` crate re-exports every sub-crate under stable names.
    let graph = tats::taskgraph::Benchmark::Bm1.task_graph().unwrap();
    let library = tats::techlib::profiles::standard_library(10).unwrap();
    let platform = tats::techlib::profiles::platform_architecture(&library).unwrap();
    let schedule = tats::core::Asp::new(&graph, &library, &platform)
        .unwrap()
        .schedule()
        .unwrap();
    assert!(schedule.meets_deadline());
    let plan = tats::core::layout::grid_floorplan(&platform, &library).unwrap();
    let model =
        tats::thermal::ThermalModel::new(&plan, tats::thermal::ThermalConfig::default()).unwrap();
    let temps = model
        .steady_state(&schedule.sustained_power_per_pe())
        .unwrap();
    assert!(temps.max_c() > 45.0);
}
