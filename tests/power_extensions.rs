//! Integration tests spanning the scheduling core and the power/DVS
//! extension crates.
//!
//! These tests exercise whole pipelines (schedule → power profile →
//! transient thermal replay → DVS / leakage) rather than single modules; the
//! per-module behaviour is covered by the unit tests inside each crate.

use tats_core::{PlatformFlow, Policy, PowerHeuristic};
use tats_power::{
    ArchitectureLeakage, DvfsTable, LeakageFeedback, PowerProfile, ScheduleSimulator,
    SlackReclaimer,
};
use tats_taskgraph::Benchmark;
use tats_techlib::profiles;
use tats_thermal::{ThermalConfig, ThermalModel};

fn platform_result(benchmark: Benchmark, policy: Policy) -> tats_core::PlatformResult {
    let library = profiles::standard_library(12).expect("library");
    PlatformFlow::new(&library)
        .expect("flow")
        .run(&benchmark.task_graph().expect("graph"), policy)
        .expect("schedule")
}

#[test]
fn power_profile_energy_matches_schedule_energy_plus_idle() {
    let library = profiles::standard_library(12).expect("library");
    for benchmark in Benchmark::ALL {
        let result = platform_result(benchmark, Policy::Baseline);
        let profile = PowerProfile::from_schedule(&result.schedule, &result.architecture, &library)
            .expect("profile");
        let busy_energy: f64 = result
            .schedule
            .assignments()
            .iter()
            .map(|a| a.energy())
            .sum();
        // The profile charges every PE its idle power for the whole makespan
        // and adds the task power on top while busy.
        let mut idle_energy = 0.0;
        for instance in result.architecture.instances() {
            let idle = library
                .pe_type(instance.type_id())
                .expect("pe type")
                .idle_power();
            idle_energy += idle * result.schedule.makespan();
        }
        let expected = busy_energy + idle_energy;
        assert!(
            (profile.energy() - expected).abs() < 1e-6 * expected.max(1.0),
            "{benchmark:?}: profile energy {} != busy {} + idle {}",
            profile.energy(),
            busy_energy,
            idle_energy
        );
    }
}

#[test]
fn transient_peak_is_bounded_by_worst_case_steady_state() {
    let library = profiles::standard_library(12).expect("library");
    let result = platform_result(Benchmark::Bm2, Policy::ThermalAware);
    let model = ThermalModel::new(&result.floorplan, ThermalConfig::default()).expect("model");
    let profile = PowerProfile::from_schedule(&result.schedule, &result.architecture, &library)
        .expect("profile");
    let trace = ScheduleSimulator::new(&model)
        .simulate(&profile)
        .expect("trace");

    let mut worst_case = vec![0.0; profile.pe_count()];
    for segment in profile.segments() {
        for (bound, power) in worst_case.iter_mut().zip(&segment.pe_power) {
            *bound = f64::max(*bound, *power);
        }
    }
    let bound = model
        .steady_state(&worst_case)
        .expect("steady state")
        .max_c();
    let ambient = model.config().ambient_c;
    assert!(trace.peak_c() > ambient, "the schedule must heat the die");
    assert!(
        trace.peak_c() <= bound + 1e-6,
        "transient peak {} exceeds worst-case steady bound {}",
        trace.peak_c(),
        bound
    );
}

#[test]
fn dvs_reclamation_preserves_deadlines_across_benchmarks_and_policies() {
    let reclaimer = SlackReclaimer::new(DvfsTable::standard());
    for benchmark in Benchmark::ALL {
        for policy in [
            Policy::Baseline,
            Policy::PowerAware(PowerHeuristic::MinTaskEnergy),
            Policy::ThermalAware,
        ] {
            let result = platform_result(benchmark, policy);
            if !result.schedule.meets_deadline() {
                continue;
            }
            let scaled = reclaimer.reclaim(&result.schedule).expect("reclaim");
            assert!(
                scaled.meets_deadline(),
                "{benchmark:?}/{policy:?}: reclaimed schedule misses its deadline"
            );
            assert!(
                scaled.energy() <= scaled.nominal_energy() + 1e-9,
                "{benchmark:?}/{policy:?}: reclamation increased energy"
            );
        }
    }
}

#[test]
fn leakage_feedback_converges_for_every_benchmark_mapping() {
    let library = profiles::standard_library(12).expect("library");
    for benchmark in Benchmark::ALL {
        let result = platform_result(benchmark, Policy::ThermalAware);
        let model = ThermalModel::new(&result.floorplan, ThermalConfig::default()).expect("model");
        let leakage = ArchitectureLeakage::from_architecture(&result.architecture, &library)
            .expect("leakage");
        let sustained = result.schedule.sustained_power_per_pe();
        let converged = LeakageFeedback::new(&model, &leakage)
            .solve(&sustained)
            .expect("leakage loop converges");
        let leakage_free = model.steady_state(&sustained).expect("steady state");
        assert!(converged.temperatures.max_c() >= leakage_free.max_c() - 1e-9);
        assert!(converged.total_leakage() >= 0.0);
        assert!(converged.iterations <= 100);
    }
}

#[test]
fn dvs_on_thermal_schedule_lowers_steady_temperature() {
    let result = platform_result(Benchmark::Bm1, Policy::ThermalAware);
    let model = ThermalModel::new(&result.floorplan, ThermalConfig::default()).expect("model");

    let nominal_power = result.schedule.sustained_power_per_pe();
    let nominal_temp = model.steady_state(&nominal_power).expect("steady").max_c();

    let scaled = SlackReclaimer::new(DvfsTable::standard())
        .reclaim(&result.schedule)
        .expect("reclaim");
    let scaled_power = scaled.sustained_power_per_pe(result.schedule.pe_count());
    let scaled_temp = model.steady_state(&scaled_power).expect("steady").max_c();

    // Either slack existed and the temperature dropped, or there was no
    // usable slack and the nominal point was kept.
    if scaled.operating_point().is_nominal() {
        assert!((scaled_temp - nominal_temp).abs() < 1e-9);
    } else {
        assert!(scaled_temp < nominal_temp);
    }
}
