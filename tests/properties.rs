//! Workspace-level property tests spanning several crates.

use proptest::prelude::*;
use tats_core::{evaluate_schedule, layout, Asp, Policy};
use tats_taskgraph::GeneratorConfig;
use tats_techlib::{profiles, Architecture, LibraryGenerator, PeId};
use tats_thermal::ThermalConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end pipeline property: for arbitrary workloads, libraries and
    /// architectures, scheduling plus thermal evaluation succeeds, the
    /// schedule passes validation, and the evaluation is physically sane
    /// (temperatures above ambient, max >= avg, energy bookkeeping
    /// consistent).
    #[test]
    fn pipeline_is_total_and_physical(
        tasks in 4usize..30,
        extra_edges in 0usize..20,
        graph_seed in any::<u64>(),
        lib_seed in any::<u64>(),
        pe_count in 2usize..5,
        policy_index in 0usize..Policy::ALL.len(),
    ) {
        let max_edges = tasks * (tasks - 1) / 2;
        let edges = (tasks - 1 + extra_edges).min(max_edges);
        let graph = GeneratorConfig::new("prop", tasks, edges, 1e9)
            .with_seed(graph_seed)
            .with_type_count(6)
            .generate()
            .unwrap();
        let library = LibraryGenerator::new(6).with_seed(lib_seed).generate().unwrap();
        let mut architecture = Architecture::new("prop");
        for i in 0..pe_count {
            let pe_type = library.pe_types()[i % library.pe_type_count()].id();
            architecture.add_instance(pe_type);
        }
        let floorplan = layout::grid_floorplan(&architecture, &library).unwrap();

        let schedule = Asp::new(&graph, &library, &architecture)
            .unwrap()
            .with_policy(Policy::ALL[policy_index])
            .with_floorplan(floorplan.clone())
            .schedule()
            .unwrap();
        prop_assert!(schedule.validate(&graph, &architecture, &library).is_ok());

        let eval = evaluate_schedule(&schedule, &floorplan, ThermalConfig::default()).unwrap();
        prop_assert!(eval.max_temperature_c + 1e-9 >= eval.avg_temperature_c);
        prop_assert!(eval.avg_temperature_c >= ThermalConfig::default().ambient_c - 1e-9);
        prop_assert!(eval.total_average_power >= 0.0);
        prop_assert!(eval.makespan > 0.0);

        // Energy accounting: the sum of assignment energies equals the sum of
        // per-PE busy energies.
        let total_assignment_energy: f64 =
            schedule.assignments().iter().map(|a| a.energy()).sum();
        let total_pe_energy: f64 = (0..architecture.pe_count())
            .map(|i| schedule.busy_energy(PeId(i)))
            .sum();
        prop_assert!((total_assignment_energy - total_pe_energy).abs() < 1e-6);
    }

    /// The baseline schedule's makespan never exceeds the serial execution of
    /// all tasks on the single fastest PE (a trivially valid schedule), and
    /// never beats the critical-path lower bound computed with the fastest
    /// per-task WCETs.
    #[test]
    fn baseline_makespan_is_bounded(
        tasks in 4usize..25,
        extra_edges in 0usize..15,
        graph_seed in any::<u64>(),
    ) {
        let max_edges = tasks * (tasks - 1) / 2;
        let edges = (tasks - 1 + extra_edges).min(max_edges);
        let graph = GeneratorConfig::new("prop", tasks, edges, 1e9)
            .with_seed(graph_seed)
            .with_type_count(10)
            .generate()
            .unwrap();
        let library = profiles::standard_library(10).unwrap();
        let platform = profiles::platform_architecture(&library).unwrap();
        let schedule = Asp::new(&graph, &library, &platform)
            .unwrap()
            .schedule()
            .unwrap();

        let pe_type = platform.instances()[0].type_id();
        let serial: f64 = graph
            .tasks()
            .map(|t| library.wcet(t.type_id(), pe_type).unwrap())
            .sum();
        prop_assert!(schedule.makespan() <= serial + 1e-6);

        // Critical-path lower bound with the fastest WCET per task.
        let fastest: Vec<f64> = graph
            .tasks()
            .map(|t| {
                (0..library.pe_type_count())
                    .map(|p| library.wcet(t.type_id(), tats_techlib::PeTypeId(p)).unwrap())
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let analysis =
            tats_taskgraph::analysis::GraphAnalysis::new(&graph, &fastest).unwrap();
        prop_assert!(schedule.makespan() + 1e-6 >= analysis.makespan_lower_bound());
    }
}
