//! Integration tests for the reporting (`tats-trace`) and reliability
//! (`tats-reliability`) crates driven by real scheduling results.

use tats_core::{PlatformFlow, Policy, PowerHeuristic};
use tats_power::simulate_schedule;
use tats_reliability::ReliabilityAnalyzer;
use tats_taskgraph::{tgff, Benchmark};
use tats_techlib::profiles;
use tats_thermal::{ThermalConfig, ThermalModel};
use tats_trace::{csv, json, GanttChart};

#[test]
fn every_benchmark_schedule_renders_and_exports() {
    let library = profiles::standard_library(12).expect("library");
    let flow = PlatformFlow::new(&library).expect("flow");
    for benchmark in Benchmark::ALL {
        let graph = benchmark.task_graph().expect("graph");
        let result = flow.run(&graph, Policy::ThermalAware).expect("schedule");

        let chart = GanttChart::new()
            .render(&result.schedule, Some(&graph))
            .expect("gantt");
        assert_eq!(
            chart.lines().filter(|line| line.starts_with("PE")).count(),
            result.schedule.pe_count()
        );

        let table = csv::schedule_to_csv(&result.schedule, Some(&graph)).expect("csv");
        assert_eq!(
            table.trim_end().lines().count(),
            result.schedule.task_count() + 1
        );

        let json_text = json::schedule_to_json(&result.schedule, Some(&graph)).to_json();
        assert!(json_text.contains("\"makespan\""));
        assert_eq!(
            json_text.matches("\"task\":").count(),
            result.schedule.task_count()
        );
    }
}

#[test]
fn benchmark_graphs_round_trip_through_tgff() {
    for benchmark in Benchmark::ALL {
        let graph = benchmark.task_graph().expect("graph");
        let text = tgff::to_tgff(&graph);
        let back = tgff::from_tgff(&text).expect("parse");
        assert_eq!(back.task_count(), graph.task_count());
        assert_eq!(back.edge_count(), graph.edge_count());
        assert_eq!(back.deadline(), graph.deadline());
        // The round-tripped graph must schedule identically (same WCETs, so
        // the baseline makespan matches exactly).
        let library = profiles::standard_library(12).expect("library");
        let flow = PlatformFlow::new(&library).expect("flow");
        let original = flow.run(&graph, Policy::Baseline).expect("original");
        let round_tripped = flow.run(&back, Policy::Baseline).expect("round tripped");
        assert!(
            (original.schedule.makespan() - round_tripped.schedule.makespan()).abs() < 1e-9,
            "{benchmark:?}: makespan changed after TGFF round trip"
        );
    }
}

#[test]
fn thermal_aware_mapping_extends_the_worst_pe_lifetime() {
    let library = profiles::standard_library(12).expect("library");
    let flow = PlatformFlow::new(&library).expect("flow");
    let analyzer = ReliabilityAnalyzer::new();

    for benchmark in Benchmark::ALL {
        let graph = benchmark.task_graph().expect("graph");
        let mut steady_worst_mttf = Vec::new();
        for policy in [
            Policy::PowerAware(PowerHeuristic::MinTaskEnergy),
            Policy::ThermalAware,
        ] {
            let result = flow.run(&graph, policy).expect("schedule");

            // Steady-state lifetime from the paper's evaluation temperatures:
            // the worst-PE MTTF is a monotone function of the hottest block,
            // which the thermal-aware policy explicitly targets.
            let steady = analyzer
                .from_steady_temperatures(&result.evaluation.temperatures)
                .expect("steady reliability");
            steady_worst_mttf.push(steady.worst_mttf_hours());

            // Transient lifetime must always be computable and sane.
            let model =
                ThermalModel::new(&result.floorplan, ThermalConfig::default()).expect("model");
            let trace = simulate_schedule(&result.schedule, &result.architecture, &library, &model)
                .expect("trace");
            let transient = analyzer.from_trace(&trace).expect("transient reliability");
            assert!(transient.system_mttf_hours().is_finite());
            assert!(transient.system_mttf_hours() > 0.0);
            assert!(transient.worst_mttf_hours() >= transient.system_mttf_hours());
        }
        // Mirrors the Table 3 shape check (thermal max temp <= power-aware
        // max temp + 0.5 C); 0.5 C translates into a few percent of MTTF.
        assert!(
            steady_worst_mttf[1] >= steady_worst_mttf[0] * 0.90,
            "{benchmark:?}: thermal-aware worst-PE MTTF {:.0} h fell below power-aware {:.0} h",
            steady_worst_mttf[1],
            steady_worst_mttf[0]
        );
    }
}

#[test]
fn csv_and_json_report_the_same_metrics() {
    let library = profiles::standard_library(12).expect("library");
    let flow = PlatformFlow::new(&library).expect("flow");
    let graph = Benchmark::Bm3.task_graph().expect("graph");
    let result = flow.run(&graph, Policy::ThermalAware).expect("schedule");

    let csv_text = csv::evaluation_to_csv("thermal", &result.evaluation);
    let json_text = json::evaluation_to_json(&result.evaluation).to_json();
    // Both artefacts carry the max temperature; parse them back and compare.
    let csv_max: f64 = csv_text
        .lines()
        .nth(1)
        .expect("value row")
        .split(',')
        .nth(2)
        .expect("max temp column")
        .parse()
        .expect("float");
    assert!((csv_max - result.evaluation.max_temperature_c).abs() < 1e-3);
    assert!(json_text.contains("max_temp_c"));
}
