//! Shape checks for the paper's headline results, run with the fast
//! experiment configuration.
//!
//! These tests do not compare absolute numbers against the paper (our
//! technology library and thermal package are synthetic); they check the
//! *qualitative* claims that EXPERIMENTS.md reports quantitatively:
//!
//! * every policy meets the real-time deadline on both flows;
//! * on the platform, the thermal-aware ASP never has a higher peak
//!   temperature than the best power heuristic (Table 3's direction);
//! * on the co-synthesis architecture, the power- and thermal-aware policies
//!   never consume more total power than the performance-only baseline
//!   (Table 1/2's direction);
//! * the platform architecture runs hotter than the co-synthesis architecture
//!   in total power (it has more, faster PEs), mirroring the relationship
//!   between the co-synthesis and platform columns of Table 1.

use tats_core::experiment::{ExperimentConfig, Table1};
use tats_core::{Policy, PowerHeuristic};
use tats_engine::{table1, table2, table3};

fn config() -> ExperimentConfig {
    ExperimentConfig::fast()
}

#[test]
fn table3_shape_thermal_aware_is_not_hotter_than_power_aware() {
    let table = table3(&config()).unwrap();
    assert_eq!(table.rows.len(), 4);
    for row in &table.rows {
        assert!(
            row.thermal_aware.max_temp_c <= row.power_aware.max_temp_c + 0.5,
            "{}: thermal {:.2} C vs power-aware {:.2} C",
            row.benchmark.name(),
            row.thermal_aware.max_temp_c,
            row.power_aware.max_temp_c
        );
    }
    // On average the reduction is positive (the paper reports 9.75 C with its
    // library; our synthetic platform leaves less headroom, see
    // EXPERIMENTS.md).
    assert!(table.mean_max_temp_reduction() >= 0.0);
}

#[test]
fn table2_shape_thermal_and_power_aware_beat_the_baseline_cosynthesis() {
    let cfg = config();
    let t1 = table1(&cfg).unwrap();
    let t2 = table2(&cfg).unwrap();
    let mut power_delta_sum = 0.0;
    for row in &t2.rows {
        let baseline = t1
            .benchmark_rows(row.benchmark)
            .into_iter()
            .find(|r| r.policy == Policy::Baseline)
            .unwrap()
            .cosynthesis;
        // The thermal-aware schedule stays at or below the baseline peak
        // temperature on every customised architecture.
        assert!(
            row.thermal_aware.max_temp_c <= baseline.max_temp_c + 0.5,
            "{}: thermal-aware hotter than baseline",
            row.benchmark.name()
        );
        // The power-aware policy never consumes more total power than the
        // baseline on the same architecture.
        assert!(
            row.power_aware.total_power <= baseline.total_power + 1e-6,
            "{}: power-aware consumes more power than baseline",
            row.benchmark.name()
        );
        power_delta_sum += baseline.max_temp_c - row.power_aware.max_temp_c;
    }
    // On average (over the four benchmarks) the power-aware policy is also at
    // least as cool as the baseline; individual benchmarks may differ by a
    // degree because the spatial mixing of tasks changes.
    assert!(power_delta_sum / t2.rows.len() as f64 >= -0.5);
}

#[test]
fn table1_shape_heuristic3_is_the_best_power_heuristic_overall() {
    let table = table1(&config()).unwrap();
    assert_eq!(table.rows.len(), 16);
    // Heuristic 3 achieves the lowest summed peak temperature across both
    // architectures, which is why the paper carries it into Tables 2 and 3.
    assert_eq!(
        table.best_heuristic_by_max_temp(),
        PowerHeuristic::MinTaskEnergy
    );
    // And it never consumes more total power than heuristics 1/2 on the
    // co-synthesis architecture, per benchmark.
    for bm in tats_taskgraph::Benchmark::ALL {
        let rows = table.benchmark_rows(bm);
        let power_of = |p: Policy| {
            rows.iter()
                .find(|r| r.policy == p)
                .map(|r| r.cosynthesis.total_power)
                .unwrap()
        };
        let h3 = power_of(Policy::PowerAware(PowerHeuristic::MinTaskEnergy));
        let h1 = power_of(Policy::PowerAware(PowerHeuristic::MinTaskPower));
        let h2 = power_of(Policy::PowerAware(
            PowerHeuristic::MinCumulativeAveragePower,
        ));
        assert!(
            h3 <= h1.max(h2) + 1e-6,
            "{bm}: H3 consumes {h3:.2} W, more than the worse of H1/H2 ({:.2} W)",
            h1.max(h2)
        );
    }
}

#[test]
fn platform_total_power_exceeds_cosynthesis_total_power() {
    // The platform instantiates four fast GPPs; the co-synthesis
    // architectures are smaller and mix in efficient PEs, so their total
    // sustained power is lower — the same relationship visible between the
    // co-synthesis and platform columns of our Table 1 (note the paper's
    // platform numbers go the other way because its platform PEs differ).
    let table = table1(&config()).unwrap();
    for row in &table.rows {
        assert!(
            row.cosynthesis.total_power < row.platform.total_power,
            "{} / {}: co-synthesis {:.2} W vs platform {:.2} W",
            row.benchmark.name(),
            row.policy,
            row.cosynthesis.total_power,
            row.platform.total_power
        );
    }
}

#[test]
fn experiment_drivers_are_deterministic() {
    let cfg = config();
    let a = table3(&cfg).unwrap();
    let b = table3(&cfg).unwrap();
    assert_eq!(a, b);
    assert_eq!(Table1::POLICIES.len(), 4);
}
