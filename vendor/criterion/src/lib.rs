//! Vendored stand-in for the subset of the `criterion` API this workspace
//! uses (the build environment has no access to crates.io).
//!
//! It implements wall-clock benchmarking with automatic iteration-count
//! calibration and a plain-text report. Statistical machinery (outlier
//! analysis, plots, HTML reports) is intentionally absent; the numbers are
//! medians over a configurable number of samples, which is plenty to compare
//! a cached against a naive code path.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_target: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, calibrating the iteration count so each
    /// sample lasts long enough to be measurable, and records per-iteration
    /// times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: grow the iteration count until one batch takes >= 5 ms.
        let mut iters: u64 = 1;
        let batch = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 28 {
                break elapsed;
            }
            iters = iters.saturating_mul(4);
        };
        self.samples.push(batch.as_secs_f64() / iters as f64);
        for _ in 1..self.sample_target {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }

    fn median_seconds(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.samples[self.samples.len() / 2]
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Top-level benchmark driver (a heavily simplified `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Matches the real API; configuration flags are ignored by this shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_target: self.default_samples,
        };
        f(&mut bencher);
        let median = bencher.median_seconds();
        println!("{:<60} {:>12}", id.label, format_time(median));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n# {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_target: self.sample_size,
        };
        f(&mut bencher);
        let median = bencher.median_seconds();
        println!(
            "{:<60} {:>12}",
            format!("{}/{}", self.name, id.label),
            format_time(median)
        );
        self
    }

    /// Ends the group (reporting already happened inline).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("lit").label, "lit");
    }

    #[test]
    fn time_formatting_covers_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
