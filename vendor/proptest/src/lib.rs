//! Vendored stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this shim implements
//! randomised property testing with the same surface the test suites were
//! written against:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_compose!`] for derived strategies,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range, tuple, [`collection::vec`] and [`any`] strategies.
//!
//! Unlike the real crate there is no shrinking: a failing case reports the
//! case index and seed so it can be replayed deterministically.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy combinators and the machinery driving each test case.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy drawing from the full value range of `T` (see [`super::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: Standard> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng().gen::<T>()
        }
    }

    /// Strategy produced by [`crate::prop_compose!`]: a closure over the rng.
    pub struct FnStrategy<F>(pub F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Number of elements a [`super::collection::vec`] strategy generates.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl SizeRange {
        pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
            if self.min + 1 >= self.max_exclusive {
                self.min
            } else {
                rng.rng().gen_range(self.min..self.max_exclusive)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max_exclusive: range.end() + 1,
            }
        }
    }

    /// Strategy generating vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Returns a strategy covering the full value range of `T`.
pub fn any<T: rand::Standard>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Per-test configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases, overridable through the `PROPTEST_CASES` environment
    /// variable (like the real crate) so CI can run the same suites with a
    /// larger budget without recompiling.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|value| value.trim().parse().ok())
            .filter(|&cases| cases > 0)
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// The runtime backing the [`proptest!`] macro.
pub mod test_runner {
    use super::{SeedableRng, StdRng};
    use std::fmt;

    /// Deterministic per-case random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: StdRng,
    }

    impl TestRng {
        /// Creates the rng for `(test_name, case_index)`; the pair fully
        /// determines the generated inputs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            seed ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng {
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// The underlying generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Defines property tests: each `fn` runs its body for a number of random
/// cases with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cases ($config).cases; $($rest)*);
    };
    (@with_cases $cases:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = $cases;
                for case in 0..cases {
                    let mut proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut proptest_rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {case}/{cases}: {e}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cases $crate::ProptestConfig::default().cases; $($rest)*);
    };
}

/// Defines a function returning a derived strategy, mirroring proptest's
/// `prop_compose!` (outer parameter list must be empty in this shim).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident()($($arg:pat in $strategy:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(
                move |proptest_rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), proptest_rng);)*
                    $body
                },
            )
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with its inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality variant of [`prop_assert!`]; like the real crate, an optional
/// trailing format string and arguments annotate the failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({left:?} vs {right:?})",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({left:?} vs {right:?}): {}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+)
            )));
        }
    }};
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_compose, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    prop_compose! {
        fn small_even()(half in 0usize..50) -> usize {
            half * 2
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (0u32..5, 1.0f64..2.0),
            items in crate::collection::vec((0usize..4, 0.0f64..10.0), 1..30),
            seed in any::<u64>(),
        ) {
            prop_assert!(pair.0 < 5);
            prop_assert!(!items.is_empty() && items.len() < 30);
            for (a, b) in items {
                prop_assert!(a < 4);
                prop_assert!((0.0..10.0).contains(&b));
            }
            prop_assert_eq!(seed, seed);
        }

        #[test]
        fn composed_strategies_apply_their_body(n in small_even()) {
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn default_case_count_respects_the_environment() {
        // Runs in its own process-global env slot; restore before exiting so
        // parallel default-config tests (which only panic at case 0 anyway)
        // are unaffected.
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(ProptestConfig::default().cases, 7);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::default().cases, 32);
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(ProptestConfig::default().cases, 32);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::default().cases, 32);
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = 0.0f64..1.0;
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
