//! Vendored, dependency-free stand-in for the subset of the `rand` crate API
//! used by this workspace.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the pieces the floorplanner, the task-graph generator and the technology
//! library generator rely on:
//!
//! * [`rngs::StdRng`] — a seedable xoshiro256\*\* generator,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The streams are deterministic for a fixed seed (which is all the callers
//! require) but are **not** bit-compatible with the real `rand` crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value range (the
/// `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply trick: maps the 64-bit stream onto [0, span) with
    // negligible bias for the span sizes used in this workspace.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + unit * (end - start)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* seeded through
    /// SplitMix64, exactly reproducible for a fixed seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(0..7usize);
            assert!(v < 7);
            let f = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
            let g = rng.gen_range(-2.0..=2.0f64);
            assert!((-2.0..=2.0).contains(&g));
            let i = rng.gen_range(0..3);
            assert!((0..3).contains(&i));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
