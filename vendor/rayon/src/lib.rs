//! Vendored stand-in for the subset of the `rayon` API this workspace uses
//! (the build environment has no access to crates.io).
//!
//! Work is distributed over `std::thread::scope` workers pulling indexed
//! items from a shared queue, so results come back in input order and a
//! panicking closure propagates to the caller, just like real rayon. Only
//! the combinators the floorplanner needs are provided: `par_iter`,
//! `into_par_iter`, `par_chunks`, `map` and `collect` into `Vec<T>` or
//! `Result<Vec<T>, E>`.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Maximum number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop();
                match next {
                    Some((index, item)) => {
                        let result = f(item);
                        *slots[index].lock().expect("slot poisoned") = Some(result);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

/// An eager parallel iterator over an already-materialised item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel (lazily — work runs at
    /// [`MapParIter::collect`]).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> MapParIter<T, F> {
        MapParIter {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], awaiting a `collect` to do the work.
pub struct MapParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MapParIter<T, F> {
    /// Runs the map on a worker pool and gathers results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        C::from_ordered_results(run_parallel(self.items, &self.f))
    }
}

/// Collections that can absorb ordered parallel-map results.
pub trait FromParallelIterator<R>: Sized {
    /// Builds the collection from results already in input order.
    fn from_ordered_results(results: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_results(results: Vec<R>) -> Self {
        results
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_results(results: Vec<Result<T, E>>) -> Self {
        results.into_iter().collect()
    }
}

/// Types that can be turned into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item yielded by the iterator.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Types that can be iterated in parallel by shared reference.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by the iterator (a reference).
    type Item: Send;

    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel iteration over contiguous sub-slices.
pub trait ParallelSlice<T: Sync> {
    /// Returns a parallel iterator over `chunk_size`-sized sub-slices (the
    /// final chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size.max(1)).collect(),
        }
    }
}

/// The usual rayon prelude.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes() {
        let v = vec![1, 2, 3];
        let out: Vec<i32> = v.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
        let r: Vec<usize> = (0..5).into_par_iter().map(|i| i * i).collect();
        assert_eq!(r, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn result_collection_short_circuits_to_err() {
        let v: Vec<usize> = (0..100).collect();
        let ok: Result<Vec<usize>, String> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, String> = v
            .par_iter()
            .map(|&x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn par_chunks_covers_all_items() {
        let v: Vec<usize> = (0..103).collect();
        let sums: Vec<usize> = v
            .par_chunks(10)
            .map(|chunk| chunk.iter().sum::<usize>())
            .collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<usize>(), (0..103).sum::<usize>());
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let v: Vec<usize> = (0..64).collect();
        let _: Vec<usize> = v
            .par_iter()
            .map(|&x| {
                assert!(x != 32, "deliberate panic");
                x
            })
            .collect();
    }
}
